"""The byte-capped, version-keyed LRU result cache.

Entries pair a result value with the data version it was computed
under.  :meth:`ResultCache.lookup` returns the value only when the
caller's current version matches; a mismatch deletes the entry and
counts an invalidation — the :class:`~repro.inference.plan.PlanCache`
idiom, which keeps exactly one entry per query shape and makes
invalidation exact without any write-path bookkeeping.

Versions are opaque: the in-process tier keys on the connection's
``data_version`` int, the server tier on the durable
``rdf_serve_state$`` write_version, and the sharded tier on the whole
per-shard version *vector* (a tuple), so a write to any shard
invalidates.  The cache never compares versions for order — only
equality — which is what makes the vector form work unchanged.

Memory is bounded in bytes, not entries, because one unselective query
can return more rows than a thousand point lookups.  Stored values are
sized with a recursive flat estimate (strings, containers, dicts);
eviction is LRU under an RLock so pooled server threads share one
instance safely.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any, Hashable, Iterator

from repro.errors import QueryError

_FALSE_WORDS = {"", "0", "off", "false", "no", "disabled", "none"}
_TRUE_WORDS = {"1", "on", "true", "yes", "enabled"}
_SUFFIXES = {"": 1, "b": 1, "k": 1024, "kb": 1024,
             "m": 1024 ** 2, "mb": 1024 ** 2,
             "g": 1024 ** 3, "gb": 1024 ** 3}

#: Default byte cap: enough for ~64k cached point-lookup result sets,
#: small enough to be invisible next to SQLite's own page cache.
DEFAULT_MAX_BYTES = 64 * 1024 * 1024

#: Flat per-object overhead charged by the size estimator for values
#: it does not descend into (ints, floats, None, bools).
_SCALAR_BYTES = 32


def parse_cache_setting(value) -> tuple[bool, int | None]:
    """``(enabled, max_bytes)`` from a ``--result-cache``-style setting.

    Accepts booleans, ints (0/False disable, 1/True enable with the
    default cap, larger ints are a byte cap), and strings: on/off
    words or a byte cap like ``"67108864"``, ``"64mb"``, ``"512k"``.
    A None cap means :data:`DEFAULT_MAX_BYTES`.
    """
    if value is None or value is False:
        return False, None
    if value is True:
        return True, None
    if isinstance(value, int):
        if value <= 0:
            return False, None
        return True, None if value == 1 else value
    text = str(value).strip().lower()
    if text in _FALSE_WORDS:
        return False, None
    if text in _TRUE_WORDS:
        return True, None
    digits = text.rstrip("bgkm")
    suffix = text[len(digits):]
    if digits.isdigit() and suffix in _SUFFIXES:
        cap = int(digits) * _SUFFIXES[suffix]
        if cap <= 0:
            return False, None
        return True, None if cap == 1 else cap
    raise QueryError(
        f"bad result-cache setting {value!r}: expected an on/off word "
        "or a byte cap such as '64mb'")


def estimate_bytes(value: Any) -> int:
    """A flat, allocator-free estimate of a result value's footprint.

    Counts string content and container slots; ignores interning and
    sharing, so it over-counts repeated terms — the safe direction for
    a cap.  Deliberately not ``sys.getsizeof`` recursion: this runs on
    the store path of every cache miss and must stay cheap.
    """
    stack = [value]
    total = 0
    while stack:
        item = stack.pop()
        if isinstance(item, str):
            total += _SCALAR_BYTES + len(item)
        elif isinstance(item, bytes):
            total += _SCALAR_BYTES + len(item)
        elif isinstance(item, dict):
            total += _SCALAR_BYTES + 8 * len(item)
            stack.extend(item.keys())
            stack.extend(item.values())
        elif isinstance(item, (list, tuple, set, frozenset)):
            total += _SCALAR_BYTES + 8 * len(item)
            stack.extend(item)
        else:
            total += _SCALAR_BYTES
    return total


class _Entry:
    __slots__ = ("version", "value", "nbytes")

    def __init__(self, version: Hashable, value: Any,
                 nbytes: int) -> None:
        self.version = version
        self.value = value
        self.nbytes = nbytes


class ResultCache:
    """A thread-safe byte-capped LRU of versioned query results.

    One instance fronts one store (attached via
    ``store.attach_result_cache``) or one server (shared across the
    pooled readers, keyed on the durable write_version).  Values are
    whatever the tier serves — MatchRow lists in process, pre-encoded
    JSON response bodies on the server — the cache never inspects
    them beyond sizing.
    """

    def __init__(self, max_bytes: int | None = None) -> None:
        if max_bytes is None:
            max_bytes = DEFAULT_MAX_BYTES
        if max_bytes <= 0:
            raise QueryError(
                f"result-cache byte cap must be positive, got "
                f"{max_bytes}")
        self.max_bytes = max_bytes
        self._entries: "OrderedDict[Hashable, _Entry]" = OrderedDict()
        self._bytes = 0
        self._lock = threading.RLock()
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.evictions = 0
        self.invalidations = 0
        self.rejects = 0  #: values larger than the whole cap

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    @property
    def current_bytes(self) -> int:
        with self._lock:
            return self._bytes

    def lookup(self, key: Hashable, version: Hashable) -> Any | None:
        """The cached value for ``key`` at exactly ``version``.

        A version mismatch deletes the entry (counted as an
        invalidation) and reports a miss: the caller recomputes and
        re-stores under the new version, so each shape occupies one
        slot no matter how often the data changes.
        """
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None and entry.version != version:
                self._drop_locked(key, entry)
                self.invalidations += 1
                entry = None
            if entry is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return entry.value

    def would_serve(self, key: Hashable, version: Hashable) -> bool:
        """EXPLAIN peek: is there a fresh entry?  No counters, no LRU
        touch, no invalidation — purely advisory."""
        with self._lock:
            entry = self._entries.get(key)
            return entry is not None and entry.version == version

    def store(self, key: Hashable, version: Hashable, value: Any,
              nbytes: int | None = None) -> bool:
        """Install ``value`` for ``key`` at ``version``; False when the
        value alone exceeds the byte cap (counted as a reject)."""
        if nbytes is None:
            nbytes = estimate_bytes(value)
        with self._lock:
            if nbytes > self.max_bytes:
                self.rejects += 1
                return False
            old = self._entries.get(key)
            if old is not None:
                self._drop_locked(key, old)
            self._entries[key] = _Entry(version, value, nbytes)
            self._bytes += nbytes
            self.stores += 1
            while self._bytes > self.max_bytes and self._entries:
                evicted_key, evicted = next(iter(self._entries.items()))
                self._drop_locked(evicted_key, evicted)
                self.evictions += 1
            return True

    def _drop_locked(self, key: Hashable, entry: _Entry) -> None:
        del self._entries[key]
        self._bytes -= entry.nbytes

    def invalidate(self, key: Hashable) -> bool:
        """Drop one entry by key (the CLI ``cache drop`` surface)."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                return False
            self._drop_locked(key, entry)
            self.invalidations += 1
            return True

    def clear(self) -> int:
        """Drop everything; returns the number of entries dropped."""
        with self._lock:
            dropped = len(self._entries)
            self._entries.clear()
            self._bytes = 0
            return dropped

    def keys(self) -> Iterator[Hashable]:
        with self._lock:
            return iter(list(self._entries))

    def stats(self) -> dict[str, Any]:
        with self._lock:
            total = self.hits + self.misses
            return {
                "entries": len(self._entries),
                "bytes": self._bytes,
                "max_bytes": self.max_bytes,
                "hits": self.hits,
                "misses": self.misses,
                "stores": self.stores,
                "evictions": self.evictions,
                "invalidations": self.invalidations,
                "rejects": self.rejects,
                "hit_rate": round(self.hits / total, 4) if total else None,
            }

"""Versioned query-result caching for SDO_RDF_MATCH.

The serving gap this closes: the paper's workloads are read-heavy with
highly repetitive query shapes (subject lookup, reification DBUri
expansion), yet every HTTP ``/match`` re-ran parsing, planning, and SQL.
:class:`~repro.cache.result_cache.ResultCache` memoizes complete result
sets keyed on the *normalized* query shape plus the data version the
rows were computed under, so a repeated hot read is a dict probe.

Invalidation is exact and free: every write transaction already bumps a
version (``rdf_serve_state$`` write_version on the server, the
connection ``data_version`` in process, the per-shard version vector on
a sharded engine).  A lookup under a newer version drops the entry —
the same idiom as the plan cache, extended with a byte cap because
result sets, unlike plans, can be large.

Tiering: with a replica attached the read path becomes
cache -> replica -> SQL — the cache fronts both, and the version key
composes with the replica's own freshness gate (both derive from the
same write-bumped counters), so no tier can serve a stale row the
other tiers would refuse.

See docs/result_cache.md for the key schema, the coherence argument,
and the batch wire protocol built on top.
"""

from repro.cache.normalize import normalized_key
from repro.cache.result_cache import ResultCache, parse_cache_setting

__all__ = ["ResultCache", "normalized_key", "parse_cache_setting"]

"""Canonical cache keys for SDO_RDF_MATCH queries.

Two textually different queries that must hit one cache entry:

* whitespace — ``( ?s  <urn:p> ?o )`` vs ``(?s <urn:p> ?o)``;
* alias spelling — ``ex:p`` vs ``<urn:example/p>`` under the alias;
* filter keyword case and number form — ``"?a and ?b"`` vs
  ``"?a AND ?b"``, ``1`` vs ``1.0``, ``<>`` vs ``!=``;
* pattern order, when reordering is provably sound.

Rather than regex-scrubbing the text, normalization reuses the real
parsers: patterns canonicalize through ``str(TriplePattern)`` (which
collapses whitespace and expands aliases to full URIs), filters
through a canonical serialization of the parsed
:class:`~repro.inference.filters.FilterExpression` AST (which folds
keyword case, ``<>``/``!=``, and numeric literal spelling).  Anything
the parser rejects raises :class:`~repro.errors.QueryError` exactly as
execution would, so building a key never masks a bad query.

Pattern order: with no LIMIT the result is the same bag of rows under
any pattern permutation (joins are commutative; the planner already
reorders them), so the canonical forms are sorted.  With a LIMIT the
kept subset depends on an unspecified row order, so textual order is
preserved — correctness over hit rate.

Model and rulebase names are lowercased (both registries resolve
case-insensitively) and sorted+deduped.

A bounded memo keyed on the raw ``(query, filter, aliases)`` text
skips re-parsing for hot repeated shapes — the same trick as the
match path's ``_PARSE_CACHE``; entries never go stale because parse
output depends only on the key.
"""

from __future__ import annotations

import threading
from typing import Sequence

from repro.inference.filters import FilterExpression, parse_filter
from repro.inference.patterns import parse_pattern_list
from repro.rdf.namespaces import AliasSet

_MEMO: dict[tuple, tuple] = {}
_MEMO_CAP = 512
_MEMO_LOCK = threading.Lock()


def normalized_key(query: str, models: Sequence[str],
                   rulebases: Sequence[str] = (),
                   aliases: AliasSet | None = None,
                   filter: str | None = None,
                   order_by: str | None = None,
                   limit: int | None = None) -> tuple:
    """The canonical, hashable cache key of one match query.

    Raises QueryError for anything the match parsers would reject.
    The alias set is folded *into* the pattern strings (aliases expand
    to full URIs), so the key has no alias component: the same query
    spelled with different alias tables still lands on one entry when
    the expansions agree.
    """
    patterns, canonical_filter = _canonical_parts(
        query, filter, aliases)
    if limit is None:
        patterns = tuple(sorted(patterns))
    return (
        patterns,
        tuple(sorted({name.lower() for name in models})),
        tuple(sorted({name.lower() for name in rulebases})),
        canonical_filter,
        order_by.lstrip("?") if order_by is not None else None,
        limit,
    )


def _canonical_parts(query: str, filter: str | None,
                     aliases: AliasSet | None
                     ) -> tuple[tuple[str, ...], str | None]:
    aliases = aliases or AliasSet()
    memo_key = (query, filter, tuple(sorted(
        (alias.namespace_id, alias.namespace_val)
        for alias in aliases)))
    with _MEMO_LOCK:
        cached = _MEMO.get(memo_key)
    if cached is not None:
        return cached
    patterns = tuple(
        str(pattern) for pattern in parse_pattern_list(query, aliases))
    canonical_filter = None
    if filter is not None and filter.strip():
        canonical_filter = canonical_filter_text(parse_filter(filter))
    parts = (patterns, canonical_filter)
    with _MEMO_LOCK:
        if len(_MEMO) >= _MEMO_CAP:
            _MEMO.pop(next(iter(_MEMO)))
        _MEMO[memo_key] = parts
    return parts


def canonical_filter_text(expression: FilterExpression) -> str:
    """One canonical spelling of a parsed filter.

    Serialized from the AST, so every lexical variation that parses to
    the same expression — keyword case, whitespace, ``<>`` vs ``!=``,
    ``1`` vs ``1.0``, bare-word vs ``?``-prefixed variables — collapses
    to the same string.
    """
    return " OR ".join(
        " AND ".join(
            f"{_operand(clause.left)} "
            f"{'!=' if clause.op == '<>' else clause.op} "
            f"{_operand(clause.right)}"
            for clause in conjunct)
        for conjunct in expression.disjuncts)


def _operand(value) -> str:
    if isinstance(value, float):
        return repr(value)
    if isinstance(value, str):
        escaped = value.replace("\\", "\\\\").replace('"', '\\"')
        return f'"{escaped}"'
    # _Var — both ``?name`` and Oracle bare-word column style.
    return f"?{value.name}"

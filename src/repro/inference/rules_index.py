"""Rules indexes: pre-computed inferred triples, kept fresh.

"A rules index pre-computes triples that can be inferred from applying
the rulebases" (paper section 6.1).  ``CREATE_RULES_INDEX(index_name,
models, rulebases)`` forward-chains the union of the named models'
triples under the named rulebases to fixpoint and materialises every
*new* triple in the ``rdf_inferred$`` table, keyed by index name and
stored as VALUE_IDs — the inferred rows join with ``rdf_link$`` rows
seamlessly at query time.

Beyond the paper's build-once semantics, every index carries a
**maintenance policy** (``maintain=``):

``manual`` (default)
    writes leave the index stale; queries through a stale manual index
    raise :class:`~repro.errors.StaleRulesIndexError` instead of
    silently answering from outdated entailments.

``incremental``
    writes to covered models propagate through :meth:`apply_delta` —
    semi-naïve evaluation for inserts, delete-and-rederive (DRed) for
    deletes — inside the same transaction as the base write, touching
    O(affected derivations) instead of re-running the closure.

``rebuild``
    writes trigger a full rebuild inside the write transaction (simple,
    correct, slow — the baseline the benchmark compares against).

Incremental maintenance relies on two pieces of persistent metadata:

* ``rdf_infer_support$`` — per-inferred-triple support counts: the
  number of distinct derivations (rule, antecedent instantiation,
  consequent position) producing the triple from the current closure;
* per-model write versions (``rdf_model_version$``) recorded in the
  catalog at build time — the staleness key (triple counts cannot see a
  balanced delete+insert; versions can, and they survive restarts).

The built-in ``RDFS`` rulebase name resolves to
:func:`repro.inference.rdfs_rules.rdfs_rules`; every other name is
looked up through the :class:`repro.inference.rulebase.RulebaseManager`.
"""

from __future__ import annotations

import json
import threading
from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Iterator, Sequence

from repro.core.schema import LINK_TABLE
from repro.db.connection import quote_identifier
from repro.errors import ModelNotFoundError, QueryError, RulesIndexError
from repro.inference.patterns import unify
from repro.inference.rdfs_rules import RDFS_RULEBASE_NAME, rdfs_rules
from repro.inference.rulebase import Rule, RulebaseManager, match_patterns
from repro.rdf.graph import Graph
from repro.rdf.ntriples import parse_ntriples, serialize_ntriples
from repro.rdf.terms import URI
from repro.rdf.triple import Triple

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.models import ModelInfo
    from repro.core.store import RDFStore

INDEX_CATALOG = "rdf_rules_index$"
INFERRED_TABLE = "rdf_inferred$"
SUPPORT_TABLE = "rdf_infer_support$"

#: The maintenance policies accepted by ``create_rules_index``.
MAINTENANCE_POLICIES = ("manual", "incremental", "rebuild")

#: Fixpoint guard: forward chaining aborts past this many rounds, which
#: only a pathological recursive rulebase can reach.
MAX_ROUNDS = 1000


@dataclass(frozen=True)
class RulesIndex:
    """One catalog row: an index over (models, rulebases)."""

    index_name: str
    model_names: tuple[str, ...]
    rulebase_names: tuple[str, ...]
    inferred_count: int
    maintain: str = "manual"

    def covers(self, model_names: Iterable[str],
               rulebase_names: Iterable[str]) -> bool:
        """True when this index was built over supersets of the given
        models and rulebases (Oracle picks any covering index)."""
        return (set(m.lower() for m in model_names)
                <= set(self.model_names)
                and set(r.upper() for r in rulebase_names)
                <= set(r.upper() for r in self.rulebase_names))


@dataclass(frozen=True)
class Derivation:
    """How one inferred triple came to be: the rule and the
    instantiated antecedent triples of one of its derivations."""

    rule_name: str
    antecedents: tuple[Triple, ...]


@dataclass(frozen=True)
class DeltaStats:
    """Outcome of one :meth:`RulesIndexManager.apply_delta` call."""

    index_name: str
    added_base: int
    removed_base: int
    new_inferred: int
    removed_inferred: int
    rederived: int
    support_updates: int


def forward_closure(base: Graph, rules: list[Rule],
                    max_rounds: int = MAX_ROUNDS,
                    provenance: dict[Triple, Derivation] | None = None
                    ) -> Graph:
    """Forward-chain ``rules`` over ``base`` to fixpoint.

    Returns the graph of *inferred* triples only (the closure minus the
    base).  Naive evaluation with a growing working graph; each round
    applies every rule to the current closure and stops when a round
    adds nothing.

    Pass a dict as ``provenance`` to record, for every inferred triple,
    the :class:`Derivation` that first produced it.
    """
    working = Graph(base)
    inferred = Graph()
    for _round in range(max_rounds):
        added = 0
        for rule in rules:
            for triple, antecedents in list(rule.apply_traced(working)):
                if working.add(triple):
                    inferred.add(triple)
                    added += 1
                    if provenance is not None:
                        provenance[triple] = Derivation(
                            rule.rule_name, antecedents)
        if not added:
            return inferred
    raise RulesIndexError(
        f"forward chaining did not converge in {max_rounds} rounds")


def count_support(closure: Graph, inferred: Graph,
                  rules: list[Rule]) -> dict[Triple, int]:
    """Exact support counts over a complete closure.

    ``closure`` is the full graph (base plus inferred); a derivation is
    one (rule, antecedent bindings, consequent position) whose
    antecedents all lie in the closure and whose consequent is an
    inferred (non-base) triple.  This is the from-scratch oracle that
    incremental maintenance must agree with.
    """
    support: dict[Triple, int] = {}
    for rule in rules:
        for bindings in match_patterns(closure, list(rule.antecedents)):
            if rule.filter is not None and not rule.filter.evaluate(
                    bindings):
                continue
            for consequent in rule.consequents:
                try:
                    triple = consequent.substitute(bindings)
                except QueryError:
                    continue
                if triple in inferred:
                    support[triple] = support.get(triple, 0) + 1
    return support


class _IndexState:
    """In-memory closure of one index, cached between delta applies.

    ``token`` is the catalog's ``built_versions`` JSON at the time the
    state was loaded; every apply re-reads the catalog and reloads on
    mismatch, which makes the cache safe under transaction rollbacks
    (a rolled-back apply leaves the catalog token behind the state's).
    """

    __slots__ = ("token", "closure", "inferred", "support", "rules")

    def __init__(self, token: str | None, closure: Graph, inferred: Graph,
                 support: dict[Triple, int], rules: list[Rule]) -> None:
        self.token = token
        self.closure = closure      # base ∪ inferred
        self.inferred = inferred    # inferred subset
        self.support = support
        self.rules = rules


class RulesIndexManager:
    """CREATE_RULES_INDEX / lookup / drop / incremental maintenance."""

    def __init__(self, store: "RDFStore") -> None:
        self._store = store
        self._db = store.database
        self._rulebases = RulebaseManager(self._db)
        self._states: dict[str, _IndexState] = {}
        self._maint_lock = threading.RLock()
        self._ensure_tables()

    @property
    def rulebases(self) -> RulebaseManager:
        return self._rulebases

    def _ensure_tables(self) -> None:
        if self._db.read_only:
            # Pooled readers cannot (and must not) run DDL; the writer
            # created the tables, or there are no rules indexes at all.
            return
        self._db.execute(
            f"CREATE TABLE IF NOT EXISTS {quote_identifier(INDEX_CATALOG)} ("
            " index_name TEXT PRIMARY KEY,"
            " model_names TEXT NOT NULL,"
            " rulebase_names TEXT NOT NULL,"
            " inferred_count INTEGER NOT NULL DEFAULT 0,"
            " source_triple_count INTEGER NOT NULL DEFAULT 0,"
            " maintain TEXT NOT NULL DEFAULT 'manual',"
            " built_versions TEXT,"
            " built_data_version INTEGER)")
        self._migrate_catalog()
        self._db.execute(
            f"CREATE TABLE IF NOT EXISTS {quote_identifier(INFERRED_TABLE)} ("
            " index_name TEXT NOT NULL,"
            " s_id INTEGER NOT NULL,"
            " p_id INTEGER NOT NULL,"
            " o_id INTEGER NOT NULL,"
            " rule_name TEXT,"
            " antecedents TEXT,"
            " PRIMARY KEY (index_name, s_id, p_id, o_id))")
        self._db.execute(
            f"CREATE TABLE IF NOT EXISTS {quote_identifier(SUPPORT_TABLE)} ("
            " index_name TEXT NOT NULL,"
            " s_id INTEGER NOT NULL,"
            " p_id INTEGER NOT NULL,"
            " o_id INTEGER NOT NULL,"
            " support INTEGER NOT NULL,"
            " PRIMARY KEY (index_name, s_id, p_id, o_id))")

    def _migrate_catalog(self) -> None:
        """Add the maintenance columns to a pre-existing catalog."""
        existing = {row["name"] for row in self._db.query_all(
            f"PRAGMA table_info({quote_identifier(INDEX_CATALOG)})")}
        for column, definition in (
                ("maintain", "TEXT NOT NULL DEFAULT 'manual'"),
                ("built_versions", "TEXT"),
                ("built_data_version", "INTEGER")):
            if column not in existing:
                self._db.execute(
                    f"ALTER TABLE {quote_identifier(INDEX_CATALOG)} "
                    f"ADD COLUMN {column} {definition}")

    def _catalog_ready(self) -> bool:
        return self._db.table_exists(INDEX_CATALOG)

    # ------------------------------------------------------------------
    # creation
    # ------------------------------------------------------------------

    def create_rules_index(self, index_name: str,
                           model_names: Iterable[str],
                           rulebase_names: Iterable[str],
                           maintain: str = "manual") -> RulesIndex:
        """``SDO_RDF_INFERENCE.CREATE_RULES_INDEX(name, models, rbs)``.

        ``maintain`` picks the maintenance policy: ``manual`` (stale
        manual indexes refuse queries), ``incremental`` (writes
        propagate deltas), or ``rebuild`` (writes trigger rebuilds).
        """
        if maintain not in MAINTENANCE_POLICIES:
            raise RulesIndexError(
                f"unknown maintenance policy {maintain!r}; pick one of "
                f"{', '.join(MAINTENANCE_POLICIES)}")
        name = index_name.lower()
        if self.exists(name):
            raise RulesIndexError(
                f"rules index {index_name!r} already exists")
        models = tuple(m.lower() for m in model_names)
        rulebases = tuple(rulebase_names)
        with self._db.transaction():
            state, count, source = self._build(name, models, rulebases)
            token = self._versions_token(models)
            state.token = token
            self._db.execute(
                f"INSERT INTO {quote_identifier(INDEX_CATALOG)} "
                "(index_name, model_names, rulebase_names,"
                " inferred_count, source_triple_count, maintain,"
                " built_versions, built_data_version)"
                " VALUES (?, ?, ?, ?, ?, ?, ?, ?)",
                (name, ",".join(models), ",".join(rulebases), count,
                 source, maintain, token, self._db.data_version))
        self._states[name] = state
        self._store.invalidate_rules_maintenance()
        self._db.bump_data_version()
        return self.get(name)

    def _build(self, name: str, models: tuple[str, ...],
               rulebases: tuple[str, ...]
               ) -> tuple[_IndexState, int, int]:
        """Run the closure and materialise it; returns the in-memory
        state plus (inferred, source-triple-count)."""
        observer = self._db.observer
        with observer.span("rules_index.build", index=name,
                           models=",".join(models),
                           rulebases=",".join(rulebases)) as span:
            rules = self._resolve_rules(rulebases)
            base = self._load_base(models)
            provenance: dict[Triple, Derivation] = {}
            with observer.span("rules_index.closure",
                               rules=len(rules)) as closure_span:
                inferred = forward_closure(base, rules,
                                           provenance=provenance)
                closure_span.set("inferred", len(inferred))
            closure = Graph(base)
            for triple in inferred:
                closure.add(triple)
            with observer.span("rules_index.count_support"):
                support = count_support(closure, inferred, rules)
            with observer.span("rules_index.materialize"):
                count = self._materialize(name, inferred, provenance,
                                          support)
            span.set("inferred", count)
            if observer.enabled:
                observer.counter("rules_index.builds").inc()
                observer.counter("rules_index.inferred_triples").inc(
                    count)
            state = _IndexState(None, closure, inferred, support, rules)
            return state, count, self._source_count(models)

    def _load_base(self, models: Iterable[str]) -> Graph:
        """The union of the models' triples, resolved batch-wise."""
        observer = self._db.observer
        base = Graph()
        with observer.span("rules_index.load_base") as span:
            for model_name in models:
                info = self._store.models.get(model_name)
                rows = self._db.query_all(
                    f'SELECT start_node_id, p_value_id, end_node_id '
                    f'FROM "{LINK_TABLE}" WHERE model_id = ?',
                    (info.model_id,))
                wanted = set()
                for row in rows:
                    wanted.update((row[0], row[1], row[2]))
                terms = self._store.values.get_terms(wanted)
                for row in rows:
                    predicate = terms[row[1]]
                    assert isinstance(predicate, URI)
                    base.add(Triple(terms[row[0]], predicate,
                                    terms[row[2]]))
            span.set("base_triples", len(base))
        return base

    def _source_count(self, models: Iterable[str]) -> int:
        return sum(
            self._store.links.count(
                self._store.models.get(model_name).model_id)
            for model_name in models)

    def _versions_token(self, models: Iterable[str]) -> str:
        """The current per-model write versions as a canonical JSON."""
        return json.dumps(self._current_versions(models), sort_keys=True)

    def _current_versions(self, models: Iterable[str]) -> dict[str, int]:
        infos = [self._store.models.get(name) for name in models]
        by_id = self._store.links.model_versions(
            [info.model_id for info in infos])
        return {info.model_name: by_id[info.model_id] for info in infos}

    # ------------------------------------------------------------------
    # staleness
    # ------------------------------------------------------------------

    def is_stale(self, index_name: str) -> bool:
        """True when the underlying models changed since the index was
        built (Oracle marks such indexes invalid until rebuilt).

        Staleness is keyed off the per-model write versions recorded at
        build time — a balanced delete+insert leaves the triple count
        unchanged but still moves the version, so the old count-based
        check's false-fresh case cannot happen.
        """
        index = self.get(index_name)
        row = self._db.query_one(
            f"SELECT * FROM {quote_identifier(INDEX_CATALOG)} "
            "WHERE index_name = ?", (index.index_name,))
        built_token = (row["built_versions"]
                       if "built_versions" in row.keys() else None)
        if built_token is None:
            # Pre-migration row: fall back to the (weaker) count check.
            return int(row["source_triple_count"]) != \
                self._source_count(index.model_names)
        built = {name: int(version)
                 for name, version in json.loads(built_token).items()}
        try:
            current = self._current_versions(index.model_names)
        except ModelNotFoundError:
            return True  # a covered model was dropped
        return current != built

    def maintain(self, index_name: str) -> bool:
        """Bring an index up to date; returns True when work was done.

        A fresh index is left alone; a stale one is rebuilt (there is no
        recorded delta to replay — incremental indexes only go stale
        through paths that bypass the write hook, e.g. DROP model).
        """
        if not self.is_stale(index_name):
            return False
        self.rebuild(index_name)
        return True

    def rebuild(self, index_name: str) -> RulesIndex:
        """Re-run the closure over the current model contents."""
        index = self.get(index_name)
        name = index.index_name
        with self._maint_lock:
            self._states.pop(name, None)
            with self._db.transaction():
                self._db.execute(
                    f"DELETE FROM {quote_identifier(INFERRED_TABLE)} "
                    "WHERE index_name = ?", (name,))
                self._db.execute(
                    f"DELETE FROM {quote_identifier(SUPPORT_TABLE)} "
                    "WHERE index_name = ?", (name,))
                state, count, source = self._build(name,
                                                   index.model_names,
                                                   index.rulebase_names)
                token = self._versions_token(index.model_names)
                state.token = token
                self._db.execute(
                    f"UPDATE {quote_identifier(INDEX_CATALOG)} "
                    "SET inferred_count = ?, source_triple_count = ?, "
                    "built_versions = ?, built_data_version = ? "
                    "WHERE index_name = ?",
                    (count, source, token, self._db.data_version, name))
            self._states[name] = state
        self._db.bump_data_version()
        return self.get(index_name)

    def set_maintenance(self, index_name: str, maintain: str) -> RulesIndex:
        """Switch an existing index's maintenance policy.

        Switching a *stale* index to an automatic policy rebuilds it
        first: incremental deltas are only sound relative to a fresh
        baseline, and an auto index is otherwise presumed servable.
        """
        if maintain not in MAINTENANCE_POLICIES:
            raise RulesIndexError(
                f"unknown maintenance policy {maintain!r}; pick one of "
                f"{', '.join(MAINTENANCE_POLICIES)}")
        index = self.get(index_name)
        if maintain != "manual" and self.is_stale(index.index_name):
            self.rebuild(index.index_name)
        self._db.execute(
            f"UPDATE {quote_identifier(INDEX_CATALOG)} "
            "SET maintain = ? WHERE index_name = ?",
            (maintain, index.index_name))
        self._store.invalidate_rules_maintenance()
        return self.get(index_name)

    def auto_maintained(self) -> list[RulesIndex]:
        """The indexes whose policy applies maintenance at write time."""
        if not self._catalog_ready():
            return []
        return [self._index_from_row(row) for row in self._db.query_all(
            f"SELECT * FROM {quote_identifier(INDEX_CATALOG)} "
            "WHERE maintain != 'manual'")]

    # ------------------------------------------------------------------
    # incremental maintenance
    # ------------------------------------------------------------------

    def apply_delta(self, index_name: str,
                    added: Iterable[Triple] = (),
                    removed: Iterable[Triple] = (),
                    source_model: "ModelInfo | None" = None
                    ) -> DeltaStats:
        """Propagate a base-triple delta through the index.

        ``added``/``removed`` are the triples whose link rows were
        actually created in / deleted from the covered models (COST-only
        duplicates excluded); the base tables must already reflect the
        change (the write-path hook calls this inside the same
        transaction, right after the ``rdf_link$`` mutation).  Inserts
        propagate semi-naïvely — every new derivation is anchored at a
        delta triple — and deletes run delete-and-rederive (DRed), which
        stays correct under the cyclic support that recursive rules
        (e.g. RDFS transitivity) create.  Support counts and derivation
        provenance are maintained exactly.

        Correctness assumes the index was consistent with the base
        *before* this delta — the inherent contract of differential
        maintenance.  ``source_model`` names the model the write went
        to; it lets a cold-started manager reconstruct the pre-write
        state exactly when the same triple also lives in other covered
        models.

        Runs inside the caller's transaction scope when one is open, so
        a failed base write rolls the maintenance back with it — the
        index is never left half-applied.
        """
        index = self.get(index_name)
        observer = self._db.observer
        with self._maint_lock:
            with observer.span("rules_index.apply_delta",
                               index=index.index_name) as span:
                try:
                    with self._db.transaction():
                        stats = self._apply_delta_locked(
                            index, list(added), list(removed),
                            source_model)
                except BaseException:
                    # The state was mutated in place under the old
                    # token; a mid-apply failure rolls the tables back
                    # but not the memory — drop it so the next use
                    # reloads from the (rolled-back) tables.
                    self._states.pop(index.index_name, None)
                    raise
                span.set("added_base", stats.added_base)
                span.set("removed_base", stats.removed_base)
                span.set("new_inferred", stats.new_inferred)
                span.set("removed_inferred", stats.removed_inferred)
                span.set("rederived", stats.rederived)
                if observer.enabled:
                    observer.counter("rules_index.delta_applied").inc()
                    observer.counter(
                        "rules_index.delta_added_triples").inc(
                        stats.added_base)
                    observer.counter(
                        "rules_index.delta_removed_triples").inc(
                        stats.removed_base)
                    observer.counter(
                        "rules_index.rederive_triples").inc(
                        stats.rederived)
        self._db.bump_data_version()
        return stats

    def _apply_delta_locked(self, index: RulesIndex,
                            added: list[Triple],
                            removed: list[Triple],
                            source_model: "ModelInfo | None" = None
                            ) -> DeltaStats:
        state, warm = self._state_for(index)
        models = [self._store.models.get(name)
                  for name in index.model_names]
        if not warm:
            # A cold load inside the write transaction already sees the
            # delta in the base tables; rewind it so the state matches
            # what the index was built against.
            self._rewind_state(state, models, added, removed,
                               source_model)
        closure, inferred, support = (state.closure, state.inferred,
                                      state.support)
        rules = state.rules

        # Effective deltas on the *union* of the covered models: the
        # caller reports per-model writes, but a triple only joins the
        # union when no covered model held it before, and only leaves
        # when no covered model holds it still.
        eff_added: list[Triple] = []
        for triple in dict.fromkeys(added):
            in_base = triple in closure and triple not in inferred
            if not in_base and self._present_in_models(triple, models):
                eff_added.append(triple)
        eff_removed: list[Triple] = []
        for triple in dict.fromkeys(removed):
            in_base = triple in closure and triple not in inferred
            if in_base and not self._present_in_models(triple, models):
                eff_removed.append(triple)

        # ---- delete phase: DRed ---------------------------------------
        # 1. Overdelete: every inferred triple with any derivation
        #    touching a deleted (or overdeleted) triple, propagated
        #    against the still-intact old closure.
        over: set[Triple] = set()
        frontier: list[Triple] = list(eff_removed)
        while frontier:
            next_frontier: list[Triple] = []
            for gone in frontier:
                for _ri, rule, bindings in self._anchored_matches(
                        rules, closure, gone):
                    for consequent in rule.consequents:
                        try:
                            triple = consequent.substitute(bindings)
                        except QueryError:
                            continue
                        if triple in inferred and triple not in over:
                            over.add(triple)
                            next_frontier.append(triple)
            frontier = next_frontier

        for triple in eff_removed:
            closure.discard(triple)
        for triple in over:
            closure.discard(triple)
            inferred.discard(triple)

        # 2. Rederive: overdeleted triples (and removed base triples)
        #    that still have a derivation within the surviving closure
        #    come back; restores cascade to fixpoint.
        candidates = set(over) | set(eff_removed)
        restored: dict[Triple, Derivation] = {}
        changed = True
        while changed and candidates:
            changed = False
            for triple in list(candidates):
                derivation = self._find_derivation(triple, closure, rules)
                if derivation is not None:
                    closure.add(triple)
                    inferred.add(triple)
                    restored[triple] = derivation
                    candidates.discard(triple)
                    changed = True

        # 3. Exact support for the restored triples, against the
        #    closure-after-delete.  Survivors keep every derivation
        #    (any derivation through a deleted triple would have
        #    overdeleted them), so their counts stand.
        for triple in restored:
            support[triple] = self._count_derivations(triple, closure,
                                                      rules)
        for triple in over:
            if triple not in restored:
                support.pop(triple, None)

        # ---- insert phase: semi-naïve propagation ---------------------
        dropped_to_base: set[Triple] = set()
        for triple in eff_added:
            if triple in inferred:
                # An inferred triple asserted as a base fact: the row
                # leaves the index (the base tables now answer for it).
                inferred.discard(triple)
                support.pop(triple, None)
                dropped_to_base.add(triple)
                restored.pop(triple, None)

        new_inferred: dict[Triple, Derivation] = {}
        support_changed: set[Triple] = set()
        seen_derivations: set[tuple] = set()
        queue: deque[Triple] = deque()
        for triple in eff_added:
            if triple in closure:
                # Was already present as an inferred triple: the closure
                # is unchanged, only the row's classification moved
                # (handled above) — anchoring it would double-count
                # derivations that were already counted.
                continue
            closure.add(triple)
            queue.append(triple)
        while queue:
            anchor = queue.popleft()
            # Materialise before mutating: the loop body grows the
            # closure the generator is matching against.  Derivations
            # through triples added mid-anchor are still found — every
            # new triple is enqueued and anchored in its own turn.
            for rule_index, rule, bindings in list(
                    self._anchored_matches(rules, closure, anchor)):
                antecedents = tuple(
                    pattern.substitute(bindings)
                    for pattern in rule.antecedents)
                key = (rule_index, antecedents)
                if key in seen_derivations:
                    continue
                seen_derivations.add(key)
                for consequent in rule.consequents:
                    try:
                        triple = consequent.substitute(bindings)
                    except QueryError:
                        continue
                    if triple in inferred:
                        support[triple] = support.get(triple, 0) + 1
                        support_changed.add(triple)
                    elif triple in closure:
                        continue  # a base fact needs no support row
                    else:
                        closure.add(triple)
                        inferred.add(triple)
                        support[triple] = 1
                        new_inferred[triple] = Derivation(rule.rule_name,
                                                          antecedents)
                        queue.append(triple)

        # ---- write the diff -------------------------------------------
        deletes = (over - set(restored)) | dropped_to_base
        inserts: dict[Triple, Derivation] = {}
        for triple, derivation in restored.items():
            inserts[triple] = derivation
        inserts.update(new_inferred)
        deletes -= set(inserts)
        support_updates = {
            triple: support[triple] for triple in support_changed
            if triple in inferred and triple not in inserts}
        self._write_delta(index, deletes, inserts, support_updates,
                          support)
        token = self._versions_token(index.model_names)
        self._db.execute(
            f"UPDATE {quote_identifier(INDEX_CATALOG)} "
            "SET inferred_count = ?, source_triple_count = ?, "
            "built_versions = ?, built_data_version = ? "
            "WHERE index_name = ?",
            (len(inferred), self._source_count(index.model_names),
             token, self._db.data_version, index.index_name))
        state.token = token
        return DeltaStats(
            index_name=index.index_name,
            added_base=len(eff_added), removed_base=len(eff_removed),
            new_inferred=len(new_inferred),
            removed_inferred=len(deletes),
            rederived=len(restored),
            support_updates=len(support_updates))

    def _write_delta(self, index: RulesIndex, deletes: set[Triple],
                     inserts: dict[Triple, Derivation],
                     support_updates: dict[Triple, int],
                     support: dict[Triple, int]) -> None:
        values = self._store.values
        name = index.index_name
        delete_rows = []
        for triple in deletes:
            ids = [values.find_id(term) for term in triple]
            if None in ids:
                continue  # never materialised; nothing to delete
            delete_rows.append((name, *ids))
        if delete_rows:
            for table in (INFERRED_TABLE, SUPPORT_TABLE):
                self._db.executemany(
                    f"DELETE FROM {quote_identifier(table)} "
                    "WHERE index_name = ? AND s_id = ? AND p_id = ? "
                    "AND o_id = ?", delete_rows)
        inferred_rows = []
        support_rows = []
        for triple, derivation in inserts.items():
            ids = tuple(values.lookup_or_insert(term) for term in triple)
            inferred_rows.append(
                (name, *ids, derivation.rule_name,
                 serialize_ntriples(derivation.antecedents)))
            support_rows.append((name, *ids, support.get(triple, 1)))
        for triple, count in support_updates.items():
            ids = tuple(values.lookup_or_insert(term) for term in triple)
            support_rows.append((name, *ids, count))
        if inferred_rows:
            self._db.executemany(
                f"INSERT OR REPLACE INTO "
                f"{quote_identifier(INFERRED_TABLE)} "
                "VALUES (?, ?, ?, ?, ?, ?)", inferred_rows)
        if support_rows:
            self._db.executemany(
                f"INSERT OR REPLACE INTO "
                f"{quote_identifier(SUPPORT_TABLE)} "
                "VALUES (?, ?, ?, ?, ?)", support_rows)

    # -- delta-engine helpers ------------------------------------------

    def _rewind_state(self, state: "_IndexState",
                      models: "list[ModelInfo]",
                      added: list[Triple], removed: list[Triple],
                      source_model: "ModelInfo | None") -> None:
        """Undo a pending base delta in a cold-loaded state.

        The closure was just read from the post-write base tables, but
        ``apply_delta`` propagates from the pre-write state the index
        was built against.  Added triples leave the closure again —
        unless they are classified as inferred (the pre-state already
        derived them), or, when the writing model is known, another
        covered model still asserts them (the union held them before
        the write too).  Removed triples rejoin it.
        """
        others = None
        if source_model is not None:
            others = [info for info in models
                      if info.model_id != source_model.model_id]
        for triple in dict.fromkeys(added):
            if triple in state.inferred:
                continue
            if triple not in state.closure:
                continue
            if others and self._present_in_models(triple, others):
                continue
            state.closure.discard(triple)
        for triple in dict.fromkeys(removed):
            if triple not in state.closure:
                state.closure.add(triple)

    def _present_in_models(self, triple: Triple,
                           models: "list[ModelInfo]") -> bool:
        """Does any covered model currently hold ``triple``?"""
        values = self._store.values
        ids = [values.find_id(term) for term in triple]
        if None in ids:
            return False
        subject_id, predicate_id, object_id = ids
        return any(
            self._store.links.find(info.model_id, subject_id,
                                   predicate_id, object_id) is not None
            for info in models)

    @staticmethod
    def _anchored_matches(rules: list[Rule], graph: Graph,
                          anchor: Triple
                          ) -> Iterator[tuple[int, Rule, dict]]:
        """Every rule firing with some antecedent matching ``anchor``
        and the remaining antecedents satisfied in ``graph``."""
        for rule_index, rule in enumerate(rules):
            for position, antecedent in enumerate(rule.antecedents):
                seed = unify(antecedent, anchor)
                if seed is None:
                    continue
                others = [pattern for i, pattern
                          in enumerate(rule.antecedents) if i != position]
                for bindings in match_patterns(graph, others, seed):
                    if rule.filter is not None and \
                            not rule.filter.evaluate(bindings):
                        continue
                    yield rule_index, rule, bindings

    @staticmethod
    def _find_derivation(triple: Triple, graph: Graph,
                         rules: list[Rule]) -> Derivation | None:
        """One derivation of ``triple`` from ``graph``, or None.

        ``triple`` itself must not be in ``graph`` (DRed removes the
        candidate before asking, which rules out self-support)."""
        for rule in rules:
            for consequent in rule.consequents:
                seed = unify(consequent, triple)
                if seed is None:
                    continue
                for bindings in match_patterns(
                        graph, list(rule.antecedents), seed):
                    if rule.filter is not None and \
                            not rule.filter.evaluate(bindings):
                        continue
                    return Derivation(
                        rule.rule_name,
                        tuple(pattern.substitute(bindings)
                              for pattern in rule.antecedents))
        return None

    @staticmethod
    def _count_derivations(triple: Triple, graph: Graph,
                           rules: list[Rule]) -> int:
        """Exact number of derivations of ``triple`` from ``graph``."""
        count = 0
        for rule in rules:
            for consequent in rule.consequents:
                seed = unify(consequent, triple)
                if seed is None:
                    continue
                for bindings in match_patterns(
                        graph, list(rule.antecedents), seed):
                    if rule.filter is not None and \
                            not rule.filter.evaluate(bindings):
                        continue
                    count += 1
        return count

    # -- cached state ---------------------------------------------------

    def _state_for(self, index: RulesIndex) -> tuple[_IndexState, bool]:
        """The in-memory closure, revalidated against the catalog.

        Returns ``(state, warm)``; ``warm`` means the state was cached
        and matches the catalog, i.e. it reflects the base *as of the
        last build/apply*.  A cold load reads the current tables — when
        a delta is being applied, that read happens inside the write
        transaction and therefore already contains the delta, which the
        caller must rewind before propagating.

        A fresh catalog read per call makes the cache rollback-safe:
        if a previous apply's transaction rolled back after mutating
        the cached state, its token no longer matches the catalog and
        the state reloads from the tables.
        """
        row = self._db.query_one(
            f"SELECT built_versions FROM "
            f"{quote_identifier(INDEX_CATALOG)} WHERE index_name = ?",
            (index.index_name,))
        token = row["built_versions"] if row is not None else None
        state = self._states.get(index.index_name)
        if state is not None and token is not None \
                and state.token == token:
            return state, True
        state = self._load_state(index)
        state.token = token
        self._states[index.index_name] = state
        return state, False

    def _load_state(self, index: RulesIndex) -> _IndexState:
        observer = self._db.observer
        with observer.span("rules_index.load_state",
                           index=index.index_name):
            rules = self._resolve_rules(index.rulebase_names)
            base = self._load_base(index.model_names)
            rows = self._db.query_all(
                f"SELECT i.s_id, i.p_id, i.o_id, s.support AS support "
                f"FROM {quote_identifier(INFERRED_TABLE)} i "
                f"LEFT JOIN {quote_identifier(SUPPORT_TABLE)} s "
                "ON s.index_name = i.index_name AND s.s_id = i.s_id "
                "AND s.p_id = i.p_id AND s.o_id = i.o_id "
                "WHERE i.index_name = ?", (index.index_name,))
            wanted = set()
            for row in rows:
                wanted.update((row[0], row[1], row[2]))
            terms = self._store.values.get_terms(wanted)
            closure = Graph(base)
            inferred = Graph()
            support: dict[Triple, int] = {}
            missing_support = False
            for row in rows:
                predicate = terms[row[1]]
                assert isinstance(predicate, URI)
                triple = Triple(terms[row[0]], predicate, terms[row[2]])
                closure.add(triple)
                inferred.add(triple)
                if row["support"] is None:
                    missing_support = True
                else:
                    support[triple] = int(row["support"])
            if missing_support:
                # Index built before support tracking existed: recount
                # from scratch once and persist, so deltas stay exact.
                support = count_support(closure, inferred, rules)
                self._persist_support(index.index_name, support)
            return _IndexState(None, closure, inferred, support, rules)

    def _persist_support(self, index_name: str,
                         support: dict[Triple, int]) -> None:
        values = self._store.values
        rows = [(index_name,
                 *(values.lookup_or_insert(term) for term in triple),
                 count) for triple, count in support.items()]
        self._db.executemany(
            f"INSERT OR REPLACE INTO {quote_identifier(SUPPORT_TABLE)} "
            "VALUES (?, ?, ?, ?, ?)", rows)

    def _resolve_rules(self, rulebase_names: tuple[str, ...]) -> list[Rule]:
        rules: list[Rule] = []
        for rulebase_name in rulebase_names:
            if rulebase_name.upper() == RDFS_RULEBASE_NAME:
                rules.extend(rdfs_rules())
            else:
                rules.extend(self._rulebases.rules(rulebase_name))
        return rules

    def _materialize(self, index_name: str, inferred: Graph,
                     provenance: dict[Triple, Derivation] | None = None,
                     support: dict[Triple, int] | None = None) -> int:
        values = self._store.values
        rows = []
        support_rows = []
        for triple in inferred:
            derivation = (provenance or {}).get(triple)
            rule_name = None
            antecedents_text = None
            if derivation is not None:
                rule_name = derivation.rule_name
                antecedents_text = serialize_ntriples(
                    derivation.antecedents)
            ids = (values.lookup_or_insert(triple.subject),
                   values.lookup_or_insert(triple.predicate),
                   values.lookup_or_insert(triple.object))
            rows.append((index_name, *ids, rule_name, antecedents_text))
            if support is not None:
                support_rows.append(
                    (index_name, *ids, support.get(triple, 0)))
        self._db.executemany(
            f"INSERT OR IGNORE INTO {quote_identifier(INFERRED_TABLE)} "
            "VALUES (?, ?, ?, ?, ?, ?)", rows)
        if support_rows:
            self._db.executemany(
                f"INSERT OR REPLACE INTO "
                f"{quote_identifier(SUPPORT_TABLE)} "
                "VALUES (?, ?, ?, ?, ?)", support_rows)
        return len(rows)

    # ------------------------------------------------------------------
    # explanations
    # ------------------------------------------------------------------

    def explain(self, index_name: str,
                triple: Triple) -> Derivation | None:
        """Why is ``triple`` in the rules index?

        Returns the recorded :class:`Derivation` (rule name plus the
        instantiated antecedents of one derivation), or None when the
        triple is not an inferred triple of this index.
        """
        values = self._store.values
        ids = [values.find_id(term) for term in triple]
        if None in ids:
            return None
        row = self._db.query_one(
            f"SELECT rule_name, antecedents FROM "
            f"{quote_identifier(INFERRED_TABLE)} "
            "WHERE index_name = ? AND s_id = ? AND p_id = ? "
            "AND o_id = ?", (index_name.lower(), *ids))
        if row is None or row["rule_name"] is None:
            return None
        antecedents = tuple(parse_ntriples(row["antecedents"]))
        return Derivation(row["rule_name"], antecedents)

    def explain_tree(self, index_name: str, triple: Triple,
                     max_depth: int = 20) -> list[tuple[int, Triple,
                                                        str | None]]:
        """A depth-annotated proof tree for an inferred triple.

        Each entry is (depth, triple, rule_name); rule_name is None for
        base facts.  Antecedents that are themselves inferred are
        expanded recursively up to ``max_depth``.
        """
        tree: list[tuple[int, Triple, str | None]] = []
        self._explain_into(index_name, triple, 0, max_depth, tree,
                           seen=set())
        return tree

    def _explain_into(self, index_name: str, triple: Triple, depth: int,
                      max_depth: int, tree: list, seen: set) -> None:
        derivation = self.explain(index_name, triple)
        rule_name = None if derivation is None else derivation.rule_name
        tree.append((depth, triple, rule_name))
        if derivation is None or depth >= max_depth or triple in seen:
            return
        seen.add(triple)
        for antecedent in derivation.antecedents:
            self._explain_into(index_name, antecedent, depth + 1,
                               max_depth, tree, seen)

    # ------------------------------------------------------------------
    # lookup / maintenance
    # ------------------------------------------------------------------

    def exists(self, index_name: str) -> bool:
        if not self._catalog_ready():
            return False
        return self._db.query_one(
            f"SELECT 1 FROM {quote_identifier(INDEX_CATALOG)} "
            "WHERE index_name = ?", (index_name.lower(),)) is not None

    def get(self, index_name: str) -> RulesIndex:
        row = None
        if self._catalog_ready():
            row = self._db.query_one(
                f"SELECT * FROM {quote_identifier(INDEX_CATALOG)} "
                "WHERE index_name = ?", (index_name.lower(),))
        if row is None:
            raise RulesIndexError(
                f"rules index {index_name!r} does not exist")
        return self._index_from_row(row)

    def list_indexes(self) -> list[RulesIndex]:
        """Every catalog row (CLI ``rules-index status`` backend)."""
        if not self._catalog_ready():
            return []
        return [self._index_from_row(row) for row in self._db.query_all(
            f"SELECT * FROM {quote_identifier(INDEX_CATALOG)} "
            "ORDER BY index_name")]

    def drop_rules_index(self, index_name: str) -> None:
        name = index_name.lower()
        self.get(name)
        self._db.execute(
            f"DELETE FROM {quote_identifier(INFERRED_TABLE)} "
            "WHERE index_name = ?", (name,))
        self._db.execute(
            f"DELETE FROM {quote_identifier(SUPPORT_TABLE)} "
            "WHERE index_name = ?", (name,))
        self._db.execute(
            f"DELETE FROM {quote_identifier(INDEX_CATALOG)} "
            "WHERE index_name = ?", (name,))
        self._states.pop(name, None)
        self._store.invalidate_rules_maintenance()
        self._db.bump_data_version()

    def find_covering(self, model_names: Iterable[str],
                      rulebase_names: Iterable[str]) -> RulesIndex | None:
        """An existing index covering the given models and rulebases."""
        if not self._catalog_ready():
            return None
        for row in self._db.query_all(
                f"SELECT * FROM {quote_identifier(INDEX_CATALOG)}"):
            index = self._index_from_row(row)
            if index.covers(model_names, rulebase_names):
                return index
        return None

    def inferred_triples(self, index_name: str) -> Iterator[Triple]:
        """The materialised inferred triples of an index."""
        values = self._store.values
        rows = self._db.query_all(
            f"SELECT s_id, p_id, o_id FROM "
            f"{quote_identifier(INFERRED_TABLE)} "
            "WHERE index_name = ?", (index_name.lower(),))
        wanted = set()
        for row in rows:
            wanted.update((row[0], row[1], row[2]))
        terms = values.get_terms(wanted)
        for row in rows:
            predicate = terms[row[1]]
            assert isinstance(predicate, URI)
            yield Triple(terms[row[0]], predicate, terms[row[2]])

    def support_counts(self, index_name: str) -> dict[Triple, int]:
        """The materialised support counts of an index."""
        values = self._store.values
        rows = self._db.query_all(
            f"SELECT s_id, p_id, o_id, support FROM "
            f"{quote_identifier(SUPPORT_TABLE)} "
            "WHERE index_name = ?", (index_name.lower(),))
        wanted = set()
        for row in rows:
            wanted.update((row[0], row[1], row[2]))
        terms = values.get_terms(wanted)
        counts: dict[Triple, int] = {}
        for row in rows:
            predicate = terms[row[1]]
            assert isinstance(predicate, URI)
            counts[Triple(terms[row[0]], predicate,
                          terms[row[2]])] = int(row["support"])
        return counts

    @staticmethod
    def _index_from_row(row) -> RulesIndex:
        maintain = (row["maintain"]
                    if "maintain" in row.keys() else "manual")
        return RulesIndex(
            index_name=row["index_name"],
            model_names=tuple(row["model_names"].split(",")),
            rulebase_names=tuple(row["rulebase_names"].split(",")),
            inferred_count=int(row["inferred_count"]),
            maintain=maintain or "manual")

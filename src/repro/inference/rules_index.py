"""Rules indexes: pre-computed inferred triples.

"A rules index pre-computes triples that can be inferred from applying
the rulebases" (paper section 6.1).  ``CREATE_RULES_INDEX(index_name,
models, rulebases)`` forward-chains the union of the named models'
triples under the named rulebases to fixpoint and materialises every
*new* triple in the ``rdf_inferred$`` table, keyed by index name and
stored as VALUE_IDs — the inferred rows join with ``rdf_link$`` rows
seamlessly at query time.

The built-in ``RDFS`` rulebase name resolves to
:func:`repro.inference.rdfs_rules.rdfs_rules`; every other name is
looked up through the :class:`repro.inference.rulebase.RulebaseManager`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Iterator

from repro.db.connection import quote_identifier
from repro.errors import RulesIndexError
from repro.inference.rdfs_rules import RDFS_RULEBASE_NAME, rdfs_rules
from repro.inference.rulebase import Rule, RulebaseManager
from repro.rdf.graph import Graph
from repro.rdf.ntriples import parse_ntriples, serialize_ntriples
from repro.rdf.terms import URI
from repro.rdf.triple import Triple

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.store import RDFStore

INDEX_CATALOG = "rdf_rules_index$"
INFERRED_TABLE = "rdf_inferred$"

#: Fixpoint guard: forward chaining aborts past this many rounds, which
#: only a pathological recursive rulebase can reach.
MAX_ROUNDS = 1000


@dataclass(frozen=True)
class RulesIndex:
    """One catalog row: an index over (models, rulebases)."""

    index_name: str
    model_names: tuple[str, ...]
    rulebase_names: tuple[str, ...]
    inferred_count: int

    def covers(self, model_names: Iterable[str],
               rulebase_names: Iterable[str]) -> bool:
        """True when this index was built over supersets of the given
        models and rulebases (Oracle picks any covering index)."""
        return (set(m.lower() for m in model_names)
                <= set(self.model_names)
                and set(r.upper() for r in rulebase_names)
                <= set(r.upper() for r in self.rulebase_names))


@dataclass(frozen=True)
class Derivation:
    """How one inferred triple came to be: the rule and the
    instantiated antecedent triples of its first derivation."""

    rule_name: str
    antecedents: tuple[Triple, ...]


def forward_closure(base: Graph, rules: list[Rule],
                    max_rounds: int = MAX_ROUNDS,
                    provenance: dict[Triple, Derivation] | None = None
                    ) -> Graph:
    """Forward-chain ``rules`` over ``base`` to fixpoint.

    Returns the graph of *inferred* triples only (the closure minus the
    base).  Naive evaluation with a growing working graph; each round
    applies every rule to the current closure and stops when a round
    adds nothing.

    Pass a dict as ``provenance`` to record, for every inferred triple,
    the :class:`Derivation` that first produced it.
    """
    working = Graph(base)
    inferred = Graph()
    for _round in range(max_rounds):
        added = 0
        for rule in rules:
            for triple, antecedents in list(rule.apply_traced(working)):
                if working.add(triple):
                    inferred.add(triple)
                    added += 1
                    if provenance is not None:
                        provenance[triple] = Derivation(
                            rule.rule_name, antecedents)
        if not added:
            return inferred
    raise RulesIndexError(
        f"forward chaining did not converge in {max_rounds} rounds")


class RulesIndexManager:
    """CREATE_RULES_INDEX / lookup / drop."""

    def __init__(self, store: "RDFStore") -> None:
        self._store = store
        self._db = store.database
        self._rulebases = RulebaseManager(self._db)
        self._ensure_tables()

    @property
    def rulebases(self) -> RulebaseManager:
        return self._rulebases

    def _ensure_tables(self) -> None:
        self._db.execute(
            f"CREATE TABLE IF NOT EXISTS {quote_identifier(INDEX_CATALOG)} ("
            " index_name TEXT PRIMARY KEY,"
            " model_names TEXT NOT NULL,"
            " rulebase_names TEXT NOT NULL,"
            " inferred_count INTEGER NOT NULL DEFAULT 0,"
            " source_triple_count INTEGER NOT NULL DEFAULT 0)")
        self._db.execute(
            f"CREATE TABLE IF NOT EXISTS {quote_identifier(INFERRED_TABLE)} ("
            " index_name TEXT NOT NULL,"
            " s_id INTEGER NOT NULL,"
            " p_id INTEGER NOT NULL,"
            " o_id INTEGER NOT NULL,"
            " rule_name TEXT,"
            " antecedents TEXT,"
            " PRIMARY KEY (index_name, s_id, p_id, o_id))")

    # ------------------------------------------------------------------
    # creation
    # ------------------------------------------------------------------

    def create_rules_index(self, index_name: str,
                           model_names: Iterable[str],
                           rulebase_names: Iterable[str]) -> RulesIndex:
        """``SDO_RDF_INFERENCE.CREATE_RULES_INDEX(name, models, rbs)``."""
        name = index_name.lower()
        if self.exists(name):
            raise RulesIndexError(
                f"rules index {index_name!r} already exists")
        models = tuple(m.lower() for m in model_names)
        rulebases = tuple(rulebase_names)
        count, source = self._build(name, models, rulebases)
        self._db.execute(
            f"INSERT INTO {quote_identifier(INDEX_CATALOG)} "
            "VALUES (?, ?, ?, ?, ?)",
            (name, ",".join(models), ",".join(rulebases), count, source))
        self._db.bump_data_version()
        return RulesIndex(name, models, rulebases, count)

    def _build(self, name: str, models: tuple[str, ...],
               rulebases: tuple[str, ...]) -> tuple[int, int]:
        """Run the closure and materialise it; returns (inferred,
        source-triple-count)."""
        observer = self._db.observer
        with observer.span("rules_index.build", index=name,
                           models=",".join(models),
                           rulebases=",".join(rulebases)) as span:
            rules = self._resolve_rules(rulebases)
            base = Graph()
            with observer.span("rules_index.load_base") as load_span:
                for model_name in models:
                    base.update(
                        self._store.iter_model_triples(model_name))
                load_span.set("base_triples", len(base))
            provenance: dict[Triple, Derivation] = {}
            with observer.span("rules_index.closure",
                               rules=len(rules)) as closure_span:
                inferred = forward_closure(base, rules,
                                           provenance=provenance)
                closure_span.set("inferred", len(inferred))
            with observer.span("rules_index.materialize"):
                count = self._materialize(name, inferred, provenance)
            span.set("inferred", count)
            if observer.enabled:
                observer.counter("rules_index.builds").inc()
                observer.counter("rules_index.inferred_triples").inc(
                    count)
            return count, self._source_count(models)

    def _source_count(self, models: Iterable[str]) -> int:
        return sum(
            self._store.links.count(
                self._store.models.get(model_name).model_id)
            for model_name in models)

    def is_stale(self, index_name: str) -> bool:
        """True when the underlying models changed since the index was
        built (Oracle marks such indexes invalid until rebuilt)."""
        index = self.get(index_name)
        row = self._db.query_one(
            f"SELECT source_triple_count FROM "
            f"{quote_identifier(INDEX_CATALOG)} WHERE index_name = ?",
            (index.index_name,))
        return int(row["source_triple_count"]) != \
            self._source_count(index.model_names)

    def rebuild(self, index_name: str) -> RulesIndex:
        """Re-run the closure over the current model contents."""
        index = self.get(index_name)
        with self._db.transaction():
            self._db.execute(
                f"DELETE FROM {quote_identifier(INFERRED_TABLE)} "
                "WHERE index_name = ?", (index.index_name,))
            count, source = self._build(index.index_name,
                                        index.model_names,
                                        index.rulebase_names)
            self._db.execute(
                f"UPDATE {quote_identifier(INDEX_CATALOG)} "
                "SET inferred_count = ?, source_triple_count = ? "
                "WHERE index_name = ?",
                (count, source, index.index_name))
        self._db.bump_data_version()
        return self.get(index_name)

    def _resolve_rules(self, rulebase_names: tuple[str, ...]) -> list[Rule]:
        rules: list[Rule] = []
        for rulebase_name in rulebase_names:
            if rulebase_name.upper() == RDFS_RULEBASE_NAME:
                rules.extend(rdfs_rules())
            else:
                rules.extend(self._rulebases.rules(rulebase_name))
        return rules

    def _materialize(self, index_name: str, inferred: Graph,
                     provenance: dict[Triple, Derivation] | None = None
                     ) -> int:
        values = self._store.values
        rows = []
        for triple in inferred:
            derivation = (provenance or {}).get(triple)
            rule_name = None
            antecedents_text = None
            if derivation is not None:
                rule_name = derivation.rule_name
                antecedents_text = serialize_ntriples(
                    derivation.antecedents)
            rows.append((index_name,
                         values.lookup_or_insert(triple.subject),
                         values.lookup_or_insert(triple.predicate),
                         values.lookup_or_insert(triple.object),
                         rule_name, antecedents_text))
        self._db.executemany(
            f"INSERT OR IGNORE INTO {quote_identifier(INFERRED_TABLE)} "
            "VALUES (?, ?, ?, ?, ?, ?)", rows)
        return len(rows)

    # ------------------------------------------------------------------
    # explanations
    # ------------------------------------------------------------------

    def explain(self, index_name: str,
                triple: Triple) -> Derivation | None:
        """Why is ``triple`` in the rules index?

        Returns the recorded :class:`Derivation` (rule name plus the
        instantiated antecedents of its first derivation), or None when
        the triple is not an inferred triple of this index.
        """
        values = self._store.values
        ids = [values.find_id(term) for term in triple]
        if None in ids:
            return None
        row = self._db.query_one(
            f"SELECT rule_name, antecedents FROM "
            f"{quote_identifier(INFERRED_TABLE)} "
            "WHERE index_name = ? AND s_id = ? AND p_id = ? "
            "AND o_id = ?", (index_name.lower(), *ids))
        if row is None or row["rule_name"] is None:
            return None
        antecedents = tuple(parse_ntriples(row["antecedents"]))
        return Derivation(row["rule_name"], antecedents)

    def explain_tree(self, index_name: str, triple: Triple,
                     max_depth: int = 20) -> list[tuple[int, Triple,
                                                        str | None]]:
        """A depth-annotated proof tree for an inferred triple.

        Each entry is (depth, triple, rule_name); rule_name is None for
        base facts.  Antecedents that are themselves inferred are
        expanded recursively up to ``max_depth``.
        """
        tree: list[tuple[int, Triple, str | None]] = []
        self._explain_into(index_name, triple, 0, max_depth, tree,
                           seen=set())
        return tree

    def _explain_into(self, index_name: str, triple: Triple, depth: int,
                      max_depth: int, tree: list, seen: set) -> None:
        derivation = self.explain(index_name, triple)
        rule_name = None if derivation is None else derivation.rule_name
        tree.append((depth, triple, rule_name))
        if derivation is None or depth >= max_depth or triple in seen:
            return
        seen.add(triple)
        for antecedent in derivation.antecedents:
            self._explain_into(index_name, antecedent, depth + 1,
                               max_depth, tree, seen)

    # ------------------------------------------------------------------
    # lookup / maintenance
    # ------------------------------------------------------------------

    def exists(self, index_name: str) -> bool:
        return self._db.query_one(
            f"SELECT 1 FROM {quote_identifier(INDEX_CATALOG)} "
            "WHERE index_name = ?", (index_name.lower(),)) is not None

    def get(self, index_name: str) -> RulesIndex:
        row = self._db.query_one(
            f"SELECT * FROM {quote_identifier(INDEX_CATALOG)} "
            "WHERE index_name = ?", (index_name.lower(),))
        if row is None:
            raise RulesIndexError(
                f"rules index {index_name!r} does not exist")
        return self._index_from_row(row)

    def drop_rules_index(self, index_name: str) -> None:
        name = index_name.lower()
        self.get(name)
        self._db.execute(
            f"DELETE FROM {quote_identifier(INFERRED_TABLE)} "
            "WHERE index_name = ?", (name,))
        self._db.execute(
            f"DELETE FROM {quote_identifier(INDEX_CATALOG)} "
            "WHERE index_name = ?", (name,))
        self._db.bump_data_version()

    def find_covering(self, model_names: Iterable[str],
                      rulebase_names: Iterable[str]) -> RulesIndex | None:
        """An existing index covering the given models and rulebases."""
        for row in self._db.query_all(
                f"SELECT * FROM {quote_identifier(INDEX_CATALOG)}"):
            index = self._index_from_row(row)
            if index.covers(model_names, rulebase_names):
                return index
        return None

    def inferred_triples(self, index_name: str) -> Iterator[Triple]:
        """The materialised inferred triples of an index."""
        values = self._store.values
        for row in self._db.execute(
                f"SELECT s_id, p_id, o_id FROM "
                f"{quote_identifier(INFERRED_TABLE)} "
                "WHERE index_name = ?", (index_name.lower(),)):
            subject = values.get_term(row["s_id"])
            predicate = values.get_term(row["p_id"])
            obj = values.get_term(row["o_id"])
            assert isinstance(predicate, URI)
            yield Triple(subject, predicate, obj)

    @staticmethod
    def _index_from_row(row) -> RulesIndex:
        return RulesIndex(
            index_name=row["index_name"],
            model_names=tuple(row["model_names"].split(",")),
            rulebase_names=tuple(row["rulebase_names"].split(",")),
            inferred_count=int(row["inferred_count"]))

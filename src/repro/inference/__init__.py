"""Query and inference: rulebases, rules indexes, and SDO_RDF_MATCH.

Mirrors the paper's section 6 and the ``SDO_RDF_INFERENCE`` PL/SQL
package:

* :mod:`repro.inference.patterns` — the SPARQL-like triple-pattern
  language shared by queries and rules (``'(?x gov:terrorAction
  "bombing")'``);
* :mod:`repro.inference.rulebase` — ``CREATE_RULEBASE`` and the
  ``rdfr_<rulebase>`` rule tables;
* :mod:`repro.inference.rdfs_rules` — the Oracle-supplied RDFS rulebase
  (W3C RDFS entailment rules);
* :mod:`repro.inference.rules_index` — ``CREATE_RULES_INDEX``:
  pre-computing inferrable triples by forward chaining to fixpoint;
* :mod:`repro.inference.match` — the ``SDO_RDF_MATCH`` table function;
* :mod:`repro.inference.sdo_rdf_inference` — the package facade.
"""

from repro.inference.patterns import (
    TriplePattern,
    Variable,
    parse_pattern_list,
)
from repro.inference.rulebase import Rule, Rulebase, RulebaseManager
from repro.inference.rdfs_rules import RDFS_RULEBASE_NAME, rdfs_rules
from repro.inference.rules_index import RulesIndex, RulesIndexManager
from repro.inference.match import (
    MatchExplanation,
    MatchRow,
    ask,
    sdo_rdf_match,
)
from repro.inference.plan import PlanCache, QueryPlan, build_plan
from repro.inference.stats import MatchStatistics
from repro.inference.sdo_rdf_inference import SDO_RDF_INFERENCE

__all__ = [
    "MatchExplanation",
    "MatchRow",
    "MatchStatistics",
    "PlanCache",
    "QueryPlan",
    "RDFS_RULEBASE_NAME",
    "Rule",
    "Rulebase",
    "RulebaseManager",
    "RulesIndex",
    "RulesIndexManager",
    "SDO_RDF_INFERENCE",
    "TriplePattern",
    "Variable",
    "ask",
    "build_plan",
    "parse_pattern_list",
    "rdfs_rules",
    "sdo_rdf_match",
]

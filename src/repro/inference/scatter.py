"""Scatter-gather SDO_RDF_MATCH over a sharded store.

``sdo_rdf_match`` compiles a whole pattern list into one SQL statement
— which assumes all of ``rdf_link$`` is in one file.  On a
:class:`~repro.core.sharded.ShardedRDFStore` that join can span shards
(each pattern's matches live wherever their *subjects* hash), so the
evaluation splits:

1. **Route.**  A pattern whose subject is a constant touches exactly
   ``{shard(model, subject) for model in models}``; a variable-subject
   pattern touches every shard.  When the union of every pattern's
   targets is a single shard, the *whole* query — filter, ORDER BY,
   LIMIT pushdown and all — is delegated to that one shard's read
   session and runs exactly like the single-file engine.  This is the
   paper's sweet spot: subject-anchored queries (member functions,
   reification lookups) stay single-shard.

2. **Scatter.**  Otherwise each (pattern, shard) pair compiles to a
   *single-pattern* subplan via the ordinary
   :func:`~repro.inference.plan.build_plan`, cached in that shard's own
   plan cache under a ``("scatter", pattern, models)`` key.  Each
   shard's caches are keyed on that shard's ``data_version`` — the
   per-shard data-version *vector* is what keeps plans, statistics,
   and term caches coherent without any cross-shard bookkeeping.

3. **Gather.**  Subplan rows are resolved to terms *on their own
   shard* (VALUE_IDs are shard-local — they must never cross a shard
   boundary) and merged in Python: hash joins over shared variables,
   smallest binding set first; the filter evaluated on full term
   bindings; ORDER BY re-sorted and LIMIT re-applied at the end, since
   per-shard pushdown of either would be wrong across shards.

Duplicate semantics mirror the single-file planner: within one model a
single pattern cannot produce duplicate bindings (triples are unique),
so only multi-model queries dedup — exactly when the single-file SQL
would have used ``DISTINCT``.

**Not supported** (raises :class:`~repro.errors.QueryError`):
rulebases — an inference closure computed per partition is not the
closure of the union, so entailed queries need the single-file engine
— and ``explain=True`` on queries that actually scatter (the fast
single-shard path explains fine).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

from repro.errors import QueryError
from repro.inference.filters import parse_filter
from repro.inference.match import (
    MatchRow,
    _check_filter_variables,
    sdo_rdf_match,
)
from repro.inference.patterns import TriplePattern, Variable, \
    parse_pattern_list
from repro.inference.plan import build_plan
from repro.rdf.namespaces import AliasSet
from repro.rdf.terms import RDFTerm

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.sharded import ShardedRDFStore
    from repro.core.store import RDFStore

#: A binding set: variable name -> resolved term.
Binding = dict


def scatter_match(engine: "ShardedRDFStore", query: str,
                  models: Sequence[str],
                  rulebases: Sequence[str] = (),
                  aliases: AliasSet | None = None,
                  filter: str | None = None,
                  order_by: str | None = None,
                  limit: int | None = None,
                  explain: bool = False,
                  optimize: bool = True):
    """Evaluate SDO_RDF_MATCH on a sharded store (see module doc)."""
    if not models:
        raise QueryError("SDO_RDF_MATCH requires at least one model")
    if limit is not None and limit < 0:
        raise QueryError(f"limit must be >= 0, got {limit}")
    if rulebases:
        raise QueryError(
            "rulebases are not supported on a sharded store: an "
            "inference closure computed per partition is not the "
            "closure of the union; use a single-file store for "
            "entailed queries (documented in docs/sharding.md)")
    aliases = aliases or AliasSet()
    if order_by is not None:
        order_by = order_by.lstrip("?")
    patterns = parse_pattern_list(query, aliases)
    filter_expression = parse_filter(filter) if filter else None
    _check_filter_variables(filter_expression, patterns, filter)
    if order_by is not None:
        bound = set().union(*(p.variables() for p in patterns))
        if order_by not in bound:
            raise QueryError(
                f"order_by variable {order_by!r} is not bound by the "
                "query")

    # ---- route each pattern to its target shards ----
    model_names = list(models)
    targets: list[list[int]] = []
    for pattern in patterns:
        subject = pattern.subject
        if isinstance(subject, Variable):
            shards = set(engine.router.all_shards())
        else:
            shards = engine.router.shards_for_models(
                model_names, subject.lexical)
        targets.append(sorted(shards))

    union = set().union(*targets)
    if len(union) == 1:
        # Fast path: the whole query is answerable by one shard —
        # delegate to the ordinary single-file evaluator with full
        # filter/ORDER BY/LIMIT pushdown (and working explain).
        (shard,) = union
        with engine.shard_session(shard) as session:
            result = sdo_rdf_match(
                session, query, model_names, rulebases=(),
                aliases=aliases, filter=filter, order_by=order_by,
                limit=limit, explain=explain, optimize=optimize)
        if explain:
            # The shard session is a plain single-file store, so the
            # inner explain says "sql"; the query was still routed by
            # the sharded engine.
            result.engine = "scatter"
        return result

    if explain:
        raise QueryError(
            "explain is not supported for queries that scatter "
            "across shards; anchor the query on a constant subject "
            "(single-shard fast path) or explain against a "
            "single-file store")

    # ---- scatter: one single-pattern subplan per (pattern, shard) ----
    dedup_pattern = len(model_names) > 1

    def run(task: tuple[int, int]):
        index, shard = task
        with engine.shard_session(shard) as session:
            return _pattern_bindings(session, patterns[index],
                                     model_names, optimize)

    tasks = [(index, shard)
             for index, shard_list in enumerate(targets)
             for shard in shard_list]
    outcomes = list(engine.executor.map(run, tasks))

    per_pattern: list[list[Binding] | bool] = []
    for index, pattern in enumerate(patterns):
        shard_results = [outcome for task, outcome
                         in zip(tasks, outcomes) if task[0] == index]
        if not pattern.variables():
            # Ground pattern: an existence test — true on any shard.
            per_pattern.append(any(shard_results))
            continue
        merged: list[Binding] = []
        if dedup_pattern:
            seen: set[frozenset] = set()
            for chunk in shard_results:
                for binding in chunk:
                    key = frozenset(binding.items())
                    if key not in seen:
                        seen.add(key)
                        merged.append(binding)
        else:
            for chunk in shard_results:
                merged.extend(chunk)
        per_pattern.append(merged)

    # ---- gather: existence gates, then hash joins ----
    for pattern, result in zip(patterns, per_pattern):
        if not pattern.variables() and result is False:
            return []
    joinable = [(patterns[i].variables(), result)
                for i, result in enumerate(per_pattern)
                if patterns[i].variables()]
    if not joinable:
        # Every pattern ground and present: one empty-binding row,
        # exactly what the single-file existence SQL produces.
        rows = [MatchRow({})]
        return rows[:limit] if limit is not None else rows

    # Smallest binding set first keeps every intermediate join small.
    joinable.sort(key=lambda entry: len(entry[1]))
    bound_vars, bindings = joinable[0]
    bound_vars = set(bound_vars)
    for next_vars, next_bindings in joinable[1:]:
        bindings = _hash_join(bindings, bound_vars, next_bindings,
                              set(next_vars))
        bound_vars |= next_vars
        if not bindings:
            return []

    if filter_expression is not None:
        bindings = [binding for binding in bindings
                    if filter_expression.evaluate(binding)]
    rows = [MatchRow(binding) for binding in bindings]
    if order_by is not None:
        rows.sort(key=lambda row: row[order_by])
    if limit is not None:
        rows = rows[:limit]
    return rows


def _pattern_bindings(session: "RDFStore", pattern: TriplePattern,
                      models: list[str], optimize: bool):
    """One pattern on one shard: rows resolved to term bindings.

    Ground patterns return a bare existence bool.  Plans are cached in
    the *shard's* plan cache keyed on the shard's own ``data_version``
    (the pool's acquire-time snoop bumps it when the shard's writer —
    or anyone else — commits), so each shard invalidates independently:
    that per-shard version vector is the cache key of the whole
    scattered query.
    """
    key = ("scatter", str(pattern), tuple(models), optimize)
    plan = None
    if optimize:
        plan = session.plan_cache.lookup(
            key, session.database.data_version)
    if plan is None:
        plan = build_plan(session, [pattern], models, (),
                          optimize=optimize)
        if optimize:
            session.plan_cache.store(key, plan)
    ground = not pattern.variables()
    if plan.sql is None:
        # A constant term this shard has never dict-encoded: with
        # replicated-on-demand rdf_value$ that simply means no match
        # *here* — other shards answer for themselves.
        return False if ground else []
    fetched = session.database.query_all(plan.sql, plan.params)
    if ground:
        return bool(fetched)
    projection = plan.projection
    wanted = {raw[i] for raw in fetched for i in projection.values()}
    terms = session.values.get_terms(wanted)
    return [{name: terms[raw[i]] for name, i in projection.items()}
            for raw in fetched]


def _hash_join(left: list[Binding], left_vars: set[str],
               right: list[Binding], right_vars: set[str]
               ) -> list[Binding]:
    """Join two binding sets on their shared variables.

    Disjoint variable sets degrade to the cartesian product — the same
    cross join the single-file SQL emits for unconnected patterns.
    Join keys are resolved :class:`~repro.rdf.terms.RDFTerm` objects,
    never VALUE_IDs: ids are shard-local and equal terms on different
    shards carry different ids.
    """
    if not left or not right:
        return []
    shared = tuple(sorted(left_vars & right_vars))
    if not shared:
        return [{**a, **b} for a in left for b in right]
    table: dict[tuple[RDFTerm, ...], list[Binding]] = {}
    for binding in left:
        table.setdefault(
            tuple(binding[name] for name in shared), []).append(binding)
    joined: list[Binding] = []
    for binding in right:
        key = tuple(binding[name] for name in shared)
        for match in table.get(key, ()):
            joined.append({**match, **binding})
    return joined

"""Logical query plans for SDO_RDF_MATCH.

The match path is a staged compilation pipeline; this module is the
middle of it:

1. :func:`build_plan` turns parsed triple patterns into a
   :class:`QueryPlan` — the logical IR.  Constants are resolved to
   VALUE_IDs (an unknown constant makes the plan *impossible*:
   nothing can match), estimates come from
   :class:`~repro.inference.stats.MatchStatistics`, and a greedy
   reorder places the most selective pattern first, preferring
   join-connected patterns over cross products.
2. SQL generation emits the triples-dataset subquery **once** as a
   CTE (``WITH dataset AS NOT MATERIALIZED (...)``) instead of
   inlining it per pattern, pushes translatable filter comparisons,
   ORDER BY, and LIMIT down into SQL, and skips ``DISTINCT`` when the
   dataset provably has no duplicate triples (single model, no
   rulebases).
3. :class:`PlanCache` keeps compiled plans keyed by the full query
   shape and the database's ``data_version``, so a repeated query
   skips parsing, statistics, and SQL generation entirely — and any
   data change invalidates every cached plan at once.

Filter pushdown is deliberately conservative: only comparisons whose
SQL evaluation is *provably identical* to the Python evaluator in
:mod:`repro.inference.filters` are translated.  That means one side a
variable, the other a non-numeric string constant (numeric-looking
operands trigger Python float coercion that SQL text comparison would
not reproduce), with ``LIKE`` rewritten to the case-sensitive ``GLOB``.
Untranslatable clauses stay in the *residual* filter, evaluated in
Python after the SQL rows come back; a pushed clause is always a
necessary condition of the full filter, so pushing part of it is safe.
Lexical forms are compared via ``COALESCE(long_value, value_name)`` so
long literals compare by their full text, exactly like the Python side.
"""

from __future__ import annotations

import sqlite3
import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Sequence

from repro.core.schema import LINK_TABLE
from repro.errors import RulesIndexError, StaleRulesIndexError
from repro.inference.filters import Comparison, FilterExpression, _Var
from repro.inference.patterns import TriplePattern, Variable
from repro.inference.rules_index import INFERRED_TABLE

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.store import RDFStore

#: ``NOT MATERIALIZED`` forces SQLite to treat the dataset CTE as a
#: view, so constants push into each reference and the access-path
#: indexes stay usable (3.35+ materializes multi-reference CTEs by
#: default, which would turn every join into a dataset scan).
_NOT_MATERIALIZED = ("NOT MATERIALIZED "
                     if sqlite3.sqlite_version_info >= (3, 35, 0) else "")

#: Operator flips for constant-on-the-left comparisons.
_FLIPPED_OPS = {"=": "=", "!=": "!=", "<>": "<>",
                "<": ">", "<=": ">=", ">": "<", ">=": "<="}


# ----------------------------------------------------------------------
# logical IR
# ----------------------------------------------------------------------

@dataclass
class PlannedPattern:
    """One triple pattern, annotated by the planner."""

    source_index: int            #: position in the query text (0-based)
    pattern: TriplePattern
    constants: dict[str, int]    #: position (s/p/o) -> VALUE_ID
    estimate: float | None = None       #: estimated matching rows
    constant_counts: dict[str, int] = field(default_factory=dict)
    alias: str = ""              #: SQL alias, assigned in join order

    def as_dict(self) -> dict[str, Any]:
        entry: dict[str, Any] = {
            "pattern": str(self.pattern),
            "source_index": self.source_index,
            "alias": self.alias,
        }
        if self.estimate is not None:
            entry["estimated_rows"] = round(self.estimate, 3)
            entry["constant_counts"] = dict(self.constant_counts)
        return entry


@dataclass
class QueryPlan:
    """A fully compiled SDO_RDF_MATCH query.

    ``sql`` is None for *impossible* plans (a constant with no
    VALUE_ID); everything needed at execution time — parameters,
    projection, the residual Python filter, which of ORDER BY / LIMIT
    already happened in SQL — is carried here so a cache hit can skip
    every earlier pipeline stage.
    """

    sql: str | None
    params: tuple
    projection: dict[str, int]
    join_order: tuple[PlannedPattern, ...]
    reordered: bool
    dataset_size: int | None
    distinct: bool
    pushed_filter: str | None
    residual_filter: FilterExpression | None
    order_by_pushed: bool
    limit_pushed: bool
    impossible_reason: str | None
    data_version: int
    optimized: bool
    order_by: str | None = None   #: the requested sort variable
    limit: int | None = None      #: the requested row cap

    @property
    def pattern_count(self) -> int:
        return len(self.join_order)

    def as_dict(self) -> dict[str, Any]:
        """The JSON-ready EXPLAIN payload."""
        return {
            "optimized": self.optimized,
            "impossible": self.impossible_reason,
            "dataset_size": self.dataset_size,
            "join_order": [step.as_dict() for step in self.join_order],
            "reordered": self.reordered,
            "distinct": self.distinct,
            "pushed_filter": self.pushed_filter,
            "residual_filter": self.residual_filter is not None,
            "order_by": self.order_by,
            "order_by_pushed": self.order_by_pushed,
            "limit": self.limit,
            "limit_pushed": self.limit_pushed,
            "sql": self.sql,
        }


# ----------------------------------------------------------------------
# plan cache
# ----------------------------------------------------------------------

def plan_key(query: str, models: Sequence[str],
             rulebases: Sequence[str], aliases,
             filter_text: str | None, order_by: str | None,
             limit: int | None) -> tuple:
    """The cache key of one query shape.

    Built from raw inputs only (no parsing), so a cache hit can skip
    the parse stage entirely.
    """
    alias_fingerprint = tuple(sorted(
        (alias.namespace_id, alias.namespace_val) for alias in aliases))
    return (query, tuple(models), tuple(rulebases), alias_fingerprint,
            filter_text, order_by, limit)


class PlanCache:
    """A keyed LRU cache of :class:`QueryPlan` objects.

    Entries carry the ``data_version`` they were planned under; a
    lookup against a newer version drops the entry (statistics, and
    possibly constant VALUE_IDs, are stale).  One instance lives on
    the :class:`~repro.core.store.RDFStore` (``store.plan_cache``).

    Thread-safe: the OrderedDict LRU bookkeeping (``move_to_end``,
    eviction) and the hit/miss counters run under an RLock, so pooled
    server readers can share a store without corrupting the cache.
    """

    def __init__(self, capacity: int = 256) -> None:
        self._capacity = capacity
        self._plans: OrderedDict[tuple, QueryPlan] = OrderedDict()
        self._lock = threading.RLock()
        self.hits = 0
        self.misses = 0
        self.invalidations = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._plans)

    def lookup(self, key: tuple, data_version: int) -> QueryPlan | None:
        """The cached plan for ``key``, or None (counted as a miss)."""
        with self._lock:
            plan = self._plans.get(key)
            if plan is not None and plan.data_version != data_version:
                del self._plans[key]
                self.invalidations += 1
                plan = None
            if plan is None:
                self.misses += 1
                return None
            self._plans.move_to_end(key)
            self.hits += 1
            return plan

    def store(self, key: tuple, plan: QueryPlan) -> None:
        with self._lock:
            self._plans[key] = plan
            self._plans.move_to_end(key)
            while len(self._plans) > self._capacity:
                self._plans.popitem(last=False)

    def clear(self) -> None:
        with self._lock:
            self._plans.clear()

    def stats(self) -> dict[str, int]:
        with self._lock:
            return {"entries": len(self._plans), "hits": self.hits,
                    "misses": self.misses,
                    "invalidations": self.invalidations}


# ----------------------------------------------------------------------
# replica shape classification
# ----------------------------------------------------------------------

def classify_replica_shape(patterns: Sequence[TriplePattern]
                           ) -> str | None:
    """The in-memory-replica-eligible shape of a query, or None.

    The replica (:mod:`repro.replica`) holds per-predicate SO/OS
    arrays, so it serves exactly two shapes:

    * ``"single"`` — one triple pattern, any anchoring (a variable
      predicate walks every partition);
    * ``"star"`` — several patterns sharing one subject (the same
      variable or the same constant), every predicate constant, so
      each pattern is an anchored lookup once the subject is bound.

    Anything else — chains, cross products, variable predicates in a
    join — compiles to SQL as before.
    """
    if len(patterns) == 1:
        return "single"
    anchor = patterns[0].subject
    for pattern in patterns:
        if isinstance(pattern.predicate, Variable):
            return None
        if pattern.subject != anchor:
            return None
    return "star"


# ----------------------------------------------------------------------
# filter pushdown
# ----------------------------------------------------------------------

def _parses_as_number(text: str) -> bool:
    try:
        float(text)
    except ValueError:
        return False
    return True


def _like_to_glob(pattern: str) -> str:
    """Rewrite a SQL-LIKE pattern as a GLOB pattern.

    The Python evaluator's LIKE is case-sensitive with ``%``/``_``
    wildcards; SQLite's LIKE is case-insensitive, but GLOB is
    case-sensitive with ``*``/``?`` wildcards and ``[...]`` classes —
    so GLOB is the exact translation once the wildcards are mapped
    and GLOB's own metacharacters are escaped as classes.
    """
    out: list[str] = []
    for ch in pattern:
        if ch == "%":
            out.append("*")
        elif ch == "_":
            out.append("?")
        elif ch in "*?[":
            out.append(f"[{ch}]")
        else:
            out.append(ch)
    return "".join(out)


def _translate_clause(clause: Comparison) -> tuple[str, str, str] | None:
    """Translate one comparison to ``(variable, sql_op, constant)``.

    Returns None when the clause cannot be proven equivalent in SQL:
    variable-to-variable and constant-to-constant comparisons, parsed
    numbers, and numeric-looking strings (both trigger Python float
    coercion with different semantics than SQL text comparison).
    """
    left, op, right = clause.left, clause.op, clause.right
    if isinstance(left, _Var) and isinstance(right, str):
        variable, constant, sql_op = left.name, right, op
    elif isinstance(right, _Var) and isinstance(left, str):
        if op == "LIKE":  # "pattern" LIKE ?x has a variable pattern
            return None
        variable, constant, sql_op = right.name, left, _FLIPPED_OPS[op]
    else:
        return None
    if _parses_as_number(constant):
        return None
    if sql_op == "LIKE":
        return variable, "GLOB", _like_to_glob(constant)
    return variable, sql_op, constant


def _translate_filter(expression: FilterExpression
                      ) -> tuple[list[list[tuple[str, str, str]]],
                                 bool] | None:
    """Translate the pushable part of a filter.

    Returns ``(disjuncts, complete)`` where each disjunct is the list
    of translated clauses of one conjunct, or None when nothing useful
    can be pushed.  ``complete`` is True when *every* clause
    translated — only then can the Python-side filter be dropped.
    Pushing a subset of a conjunct's clauses is sound (a weaker,
    necessary condition); a disjunct with no translated clause makes
    the whole OR unpushable.
    """
    disjuncts: list[list[tuple[str, str, str]]] = []
    complete = True
    for conjunct in expression.disjuncts:
        translated = []
        for clause in conjunct:
            item = _translate_clause(clause)
            if item is None:
                complete = False
            else:
                translated.append(item)
        if not translated:
            return None
        disjuncts.append(translated)
    return disjuncts, complete


# ----------------------------------------------------------------------
# join ordering
# ----------------------------------------------------------------------

def _greedy_order(steps: list[PlannedPattern]) -> list[PlannedPattern]:
    """Most-selective-first greedy order, avoiding cross products.

    The first pattern is the one with the smallest estimate; each
    subsequent pick considers only patterns sharing a variable with
    the already-chosen set (join-connected) unless none is — ties
    break on textual position, keeping the order deterministic.
    """
    remaining = list(steps)
    chosen: list[PlannedPattern] = []
    bound: set[str] = set()
    while remaining:
        if chosen:
            connected = [step for step in remaining
                         if step.pattern.variables() & bound]
            pool = connected or remaining
        else:
            pool = remaining
        best = min(pool, key=lambda step: (step.estimate or 0.0,
                                           step.source_index))
        chosen.append(best)
        remaining.remove(best)
        bound |= best.pattern.variables()
    return chosen


# ----------------------------------------------------------------------
# plan building + SQL generation
# ----------------------------------------------------------------------

def _dataset_sql(store: "RDFStore", model_ids: Sequence[int],
                 index_name: str | None) -> tuple[str, list]:
    """The (sql, params) of the triples-dataset subquery."""
    placeholders = ", ".join("?" for _ in model_ids)
    sql = (f'SELECT start_node_id AS s, p_value_id AS p, '
           f'end_node_id AS o FROM "{LINK_TABLE}" '
           f"WHERE model_id IN ({placeholders})")
    params: list = list(model_ids)
    if index_name is not None:
        sql += (f' UNION SELECT s_id AS s, p_id AS p, o_id AS o '
                f'FROM "{INFERRED_TABLE}" WHERE index_name = ?')
        params.append(index_name)
    return sql, params


def resolve_rules_index(store: "RDFStore", models: Sequence[str],
                        rulebases: Sequence[str]) -> str | None:
    """The covering rules index name, or None without rulebases.

    Raises :class:`~repro.errors.RulesIndexError` when rulebases are
    given but no index covers them, mirroring Oracle's requirement to
    run CREATE_RULES_INDEX first.

    A stale index is never used silently: a ``manual`` index raises
    :class:`~repro.errors.StaleRulesIndexError`, while an auto-policy
    index (``incremental``/``rebuild`` — stale only through paths that
    bypass the write hook, e.g. a crash before commit) is rebuilt in
    place when the store is writable and refused when it is not.
    """
    if not rulebases:
        return None
    manager = store.rules_indexes
    index = manager.find_covering(models, rulebases)
    if index is None:
        raise RulesIndexError(
            "no rules index covers models "
            f"{list(models)} with rulebases {list(rulebases)}; "
            "run CREATE_RULES_INDEX first")
    if manager.is_stale(index.index_name):
        if index.maintain == "manual" or store.database.read_only:
            raise StaleRulesIndexError(index.index_name)
        manager.rebuild(index.index_name)
    return index.index_name


def build_plan(store: "RDFStore", patterns: list[TriplePattern],
               models: Sequence[str], rulebases: Sequence[str],
               filter_expression: FilterExpression | None = None,
               order_by: str | None = None,
               limit: int | None = None,
               optimize: bool = True) -> QueryPlan:
    """Compile patterns into a :class:`QueryPlan`.

    With ``optimize=False`` the plan reproduces the naive pipeline:
    textual pattern order, the dataset subquery inlined per pattern,
    unconditional DISTINCT, and no pushdown — the reference baseline
    for the property tests and the benchmark's before/after snapshot.
    """
    data_version = store.database.data_version
    model_ids = [store.models.get(name).model_id for name in models]
    index_name = resolve_rules_index(store, models, rulebases)

    def _plan(**overrides: Any) -> QueryPlan:
        base: dict[str, Any] = dict(
            sql=None, params=(), projection={}, join_order=(),
            reordered=False, dataset_size=None, distinct=True,
            pushed_filter=None, residual_filter=filter_expression,
            order_by_pushed=False, limit_pushed=False,
            impossible_reason=None, data_version=data_version,
            optimized=optimize, order_by=order_by, limit=limit)
        base.update(overrides)
        return QueryPlan(**base)

    # ---- stage 1: logical nodes, constants resolved to VALUE_IDs ----
    steps: list[PlannedPattern] = []
    for source_index, pattern in enumerate(patterns):
        constants: dict[str, int] = {}
        for position, component in zip("spo", pattern.components()):
            if isinstance(component, Variable):
                continue
            value_id = store.values.find_id(component)
            if value_id is None:
                return _plan(
                    join_order=tuple(steps),
                    impossible_reason=f"constant {component} has no "
                    "VALUE_ID (nothing can match)")
            constants[position] = value_id
        steps.append(PlannedPattern(source_index, pattern, constants))

    # ---- stage 2: statistics and join order ----
    dataset_size: int | None = None
    if optimize:
        statistics = store.match_statistics
        dataset_size = statistics.dataset_size(model_ids, index_name)
        for step in steps:
            step.estimate, step.constant_counts = \
                statistics.estimate_rows(model_ids, step.constants,
                                         index_name)
        ordered = _greedy_order(steps)
    else:
        ordered = steps
    reordered = [step.source_index for step in ordered] != \
        [step.source_index for step in steps]
    for join_position, step in enumerate(ordered):
        step.alias = f"t{join_position}"

    # ---- stage 3: SQL generation ----
    dataset_sql, dataset_params = _dataset_sql(store, model_ids,
                                               index_name)
    params: list = []
    if optimize:
        from_items = [f"dataset {step.alias}" for step in ordered]
    else:
        from_items = [f"({dataset_sql}) {step.alias}"
                      for step in ordered]
        for _ in ordered:
            params.extend(dataset_params)

    select_columns: list[str] = []
    projection: dict[str, int] = {}
    where_clauses: list[str] = []
    first_occurrence: dict[str, str] = {}
    for step in ordered:
        for column, component in zip("spo", step.pattern.components()):
            qualified = f"{step.alias}.{column}"
            if isinstance(component, Variable):
                name = component.name
                if name in first_occurrence:
                    where_clauses.append(
                        f"{qualified} = {first_occurrence[name]}")
                else:
                    first_occurrence[name] = qualified
                    projection[name] = len(select_columns)
                    select_columns.append(
                        f"{qualified} AS c{len(select_columns)}")
            else:
                where_clauses.append(f"{qualified} = ?")
                params.append(step.constants[column])

    # Lexical access for pushed filters and ORDER BY: one rdf_value$
    # join per variable (value_id is its primary key, so the join can
    # never duplicate rows).
    value_aliases: dict[str, str] = {}

    def lexical_of(variable: str) -> str:
        alias = value_aliases.get(variable)
        if alias is None:
            alias = f"v{len(value_aliases)}"
            value_aliases[variable] = alias
            from_items.append(f'"rdf_value$" {alias}')
            where_clauses.append(
                f"{alias}.value_id = {first_occurrence[variable]}")
        return f"COALESCE({alias}.long_value, {alias}.value_name)"

    pushed_filter: str | None = None
    residual = filter_expression
    if optimize and filter_expression is not None:
        translated = _translate_filter(filter_expression)
        if translated is not None:
            disjuncts, complete = translated
            fragments = []
            for conjunct in disjuncts:
                parts = []
                for variable, sql_op, constant in conjunct:
                    parts.append(f"{lexical_of(variable)} {sql_op} ?")
                    params.append(constant)
                fragments.append("(" + " AND ".join(parts) + ")")
            pushed_filter = " OR ".join(fragments)
            where_clauses.append(f"({pushed_filter})")
            if complete:
                residual = None

    order_by_pushed = False
    order_clause = ""
    if optimize and order_by is not None and order_by in projection:
        order_column = f"o{len(select_columns)}"
        select_columns.append(
            f"{lexical_of(order_by)} AS {order_column}")
        order_clause = f" ORDER BY {order_column}"
        order_by_pushed = True

    # DISTINCT is only needed when the dataset itself can repeat a
    # triple: several models, or base triples UNIONed with inferred
    # ones.  A single model's rdf_link$ rows are unique on (s, p, o),
    # and every variable is projected, so the join cannot duplicate.
    distinct = (not optimize) or len(model_ids) > 1 \
        or index_name is not None

    existence_only = not projection
    limit_pushed = False
    sql_limit: int | None = None
    if existence_only:
        select_columns = select_columns or ["1"]
        if optimize:
            # All result rows are identical; one is enough to decide.
            sql_limit = 1
            if residual is None and limit is not None:
                sql_limit = min(limit, 1)
                limit_pushed = True
    elif optimize and residual is None and limit is not None:
        sql_limit = limit
        limit_pushed = True

    sql = f"SELECT {'DISTINCT ' if distinct else ''}" \
        f"{', '.join(select_columns)} FROM {', '.join(from_items)}"
    if where_clauses:
        sql += " WHERE " + " AND ".join(where_clauses)
    sql += order_clause
    if sql_limit is not None:
        sql += f" LIMIT {sql_limit}"
    if optimize:
        sql = (f"WITH dataset AS {_NOT_MATERIALIZED}({dataset_sql}) "
               + sql)
        params = dataset_params + params

    return _plan(sql=sql, params=tuple(params), projection=projection,
                 join_order=tuple(ordered), reordered=reordered,
                 dataset_size=dataset_size, distinct=distinct,
                 pushed_filter=pushed_filter, residual_filter=residual,
                 order_by_pushed=order_by_pushed,
                 limit_pushed=limit_pushed)

"""Rulebases: user-defined inference rules.

``SDO_RDF_INFERENCE.CREATE_RULEBASE('intel_rb')`` creates a rulebase;
its rules live in the table ``rdfr_intel_rb`` with the columns of the
paper's Figure 8 insert::

    INSERT INTO mdsys.rdfr_intel_rb VALUES (
        'intel_rule',
        '(?x gov:terrorAction "bombing")',   -- antecedents
        null,                                 -- filter
        '(gov:files gov:terrorSuspect ?x)',   -- consequents
        SDO_RDF_ALIASES(SDO_RDF_ALIAS('gov', 'http://www.us.gov#')))

A :class:`Rule` is the parsed form: antecedent patterns, an optional
filter over the bindings, and consequent patterns.  Applying a rule to a
graph yields the consequent instantiations of every antecedent match
that passes the filter.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterator

from repro.db.connection import quote_identifier
from repro.errors import QueryError, RulebaseError, RulebaseNotFoundError
from repro.inference.filters import FilterExpression, parse_filter
from repro.inference.patterns import (
    TriplePattern,
    Variable,
    parse_pattern_list,
)
from repro.rdf.graph import Graph
from repro.rdf.namespaces import Alias, AliasSet
from repro.rdf.terms import RDFTerm
from repro.rdf.triple import Triple

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.db.connection import Database

RULEBASE_CATALOG = "rdf_rulebase$"


@dataclass(frozen=True)
class Rule:
    """One parsed inference rule."""

    rule_name: str
    antecedents: tuple[TriplePattern, ...]
    filter: FilterExpression | None
    consequents: tuple[TriplePattern, ...]

    @classmethod
    def parse(cls, rule_name: str, antecedents: str, filter_text: str | None,
              consequents: str, aliases: AliasSet | None = None) -> "Rule":
        """Parse the textual rule columns into a Rule."""
        aliases = aliases or AliasSet()
        antecedent_patterns = tuple(
            parse_pattern_list(antecedents, aliases))
        consequent_patterns = tuple(
            parse_pattern_list(consequents, aliases))
        bound = set().union(
            *(p.variables() for p in antecedent_patterns))
        for pattern in consequent_patterns:
            unbound = pattern.variables() - bound
            if unbound:
                raise RulebaseError(
                    f"rule {rule_name!r}: consequent variables "
                    f"{sorted(unbound)} not bound by any antecedent")
        filter_expression = (parse_filter(filter_text)
                             if filter_text else None)
        return cls(rule_name, antecedent_patterns, filter_expression,
                   consequent_patterns)

    def apply(self, graph: Graph) -> Iterator[Triple]:
        """All consequent triples derivable from ``graph`` in one step.

        Consequent instantiations that would be malformed RDF (e.g. a
        literal in subject position, which rdfs3 can produce) are
        silently dropped, per RDF abstract syntax.
        """
        for triple, _antecedents in self.apply_traced(graph):
            yield triple

    def apply_traced(self, graph: Graph
                     ) -> Iterator[tuple[Triple, tuple[Triple, ...]]]:
        """Like :meth:`apply`, but each derivation carries the
        instantiated antecedent triples that produced it — the raw
        material for explanations (see
        :meth:`repro.inference.rules_index.RulesIndexManager.explain`).
        """
        for bindings in match_patterns(graph, list(self.antecedents)):
            if self.filter is not None and not self.filter.evaluate(
                    bindings):
                continue
            antecedent_triples = tuple(
                pattern.substitute(bindings)
                for pattern in self.antecedents)
            for consequent in self.consequents:
                try:
                    yield (consequent.substitute(bindings),
                           antecedent_triples)
                except QueryError:
                    continue


def match_patterns(graph: Graph, patterns: list[TriplePattern],
                   bindings: dict[str, RDFTerm] | None = None
                   ) -> Iterator[dict[str, RDFTerm]]:
    """All variable bindings satisfying a conjunction of patterns.

    Backtracking join over the in-memory graph; each step narrows using
    whatever components are already bound.
    """
    if bindings is None:
        bindings = {}
    if not patterns:
        yield dict(bindings)
        return
    head, *tail = patterns
    subject = _resolve(head.subject, bindings)
    predicate = _resolve(head.predicate, bindings)
    obj = _resolve(head.object, bindings)
    for triple in graph.match(subject, predicate, obj):
        extended = _extend(bindings, head, triple)
        if extended is None:
            continue
        yield from match_patterns(graph, tail, extended)


def _resolve(component, bindings: dict[str, RDFTerm]):
    """A pattern component as a concrete term, or None (wildcard)."""
    if isinstance(component, Variable):
        return bindings.get(component.name)
    return component


def _extend(bindings: dict[str, RDFTerm], pattern: TriplePattern,
            triple: Triple) -> dict[str, RDFTerm] | None:
    """Bindings extended with this pattern/triple match; None on clash."""
    extended = dict(bindings)
    for component, term in zip(pattern.components(), triple):
        if not isinstance(component, Variable):
            continue
        existing = extended.get(component.name)
        if existing is None:
            extended[component.name] = term
        elif existing != term:
            return None
    return extended


@dataclass(frozen=True)
class Rulebase:
    """A named rulebase and its rule table."""

    rulebase_name: str

    @property
    def table_name(self) -> str:
        return f"rdfr_{self.rulebase_name}"


class RulebaseManager:
    """CREATE_RULEBASE / rule CRUD over ``rdfr_<rb>`` tables."""

    def __init__(self, database: "Database") -> None:
        self._db = database
        # Pooled server readers attach read-only: the catalog must
        # already exist (the writer created it) and DDL would be
        # rejected by the write guard.
        if not database.read_only:
            self._db.execute(
                f"CREATE TABLE IF NOT EXISTS "
                f"{quote_identifier(RULEBASE_CATALOG)} ("
                " rulebase_name TEXT PRIMARY KEY)")

    def create_rulebase(self, rulebase_name: str) -> Rulebase:
        """``SDO_RDF_INFERENCE.CREATE_RULEBASE(name)``."""
        name = rulebase_name.lower()
        if self.exists(name):
            raise RulebaseError(f"rulebase {rulebase_name!r} already exists")
        rulebase = Rulebase(name)
        self._db.execute(
            f"INSERT INTO {quote_identifier(RULEBASE_CATALOG)} VALUES (?)",
            (name,))
        self._db.execute(
            f"CREATE TABLE {quote_identifier(rulebase.table_name)} ("
            " rule_name TEXT PRIMARY KEY,"
            " antecedents TEXT NOT NULL,"
            " filter TEXT,"
            " consequents TEXT NOT NULL,"
            " aliases TEXT)")
        return rulebase

    def drop_rulebase(self, rulebase_name: str) -> None:
        name = rulebase_name.lower()
        rulebase = self.get(name)
        self._db.drop_table(rulebase.table_name)
        self._db.execute(
            f"DELETE FROM {quote_identifier(RULEBASE_CATALOG)} "
            "WHERE rulebase_name = ?", (name,))

    def exists(self, rulebase_name: str) -> bool:
        if not self._db.table_exists(RULEBASE_CATALOG):
            return False  # read-only open of a database with no rules
        return self._db.query_one(
            f"SELECT 1 FROM {quote_identifier(RULEBASE_CATALOG)} "
            "WHERE rulebase_name = ?", (rulebase_name.lower(),)) is not None

    def get(self, rulebase_name: str) -> Rulebase:
        name = rulebase_name.lower()
        if not self.exists(name):
            raise RulebaseNotFoundError(rulebase_name)
        return Rulebase(name)

    # ------------------------------------------------------------------
    # rules
    # ------------------------------------------------------------------

    def insert_rule(self, rulebase_name: str, rule_name: str,
                    antecedents: str, filter_text: str | None,
                    consequents: str,
                    aliases: AliasSet | None = None) -> Rule:
        """The Figure 8 ``INSERT INTO mdsys.rdfr_<rb> VALUES (...)``.

        The rule is parsed eagerly so syntax errors surface at insert
        time, then stored in the rule table.
        """
        rulebase = self.get(rulebase_name)
        rule = Rule.parse(rule_name, antecedents, filter_text, consequents,
                          aliases)
        self._db.execute(
            f"INSERT INTO {quote_identifier(rulebase.table_name)} "
            "VALUES (?, ?, ?, ?, ?)",
            (rule_name, antecedents, filter_text, consequents,
             _serialize_aliases(aliases)))
        self._db.observer.counter("rulebase.rules_inserted").inc()
        return rule

    def delete_rule(self, rulebase_name: str, rule_name: str) -> None:
        rulebase = self.get(rulebase_name)
        cursor = self._db.execute(
            f"DELETE FROM {quote_identifier(rulebase.table_name)} "
            "WHERE rule_name = ?", (rule_name,))
        if cursor.rowcount == 0:
            raise RulebaseError(
                f"no rule {rule_name!r} in rulebase {rulebase_name!r}")

    def rules(self, rulebase_name: str) -> list[Rule]:
        """All parsed rules of a rulebase."""
        rulebase = self.get(rulebase_name)
        parsed: list[Rule] = []
        with self._db.observer.span("rulebase.load_rules",
                                    rulebase=rulebase.rulebase_name
                                    ) as span:
            for row in self._db.query_all(
                    f"SELECT * FROM "
                    f"{quote_identifier(rulebase.table_name)} "
                    "ORDER BY rule_name"):
                parsed.append(Rule.parse(
                    row["rule_name"], row["antecedents"], row["filter"],
                    row["consequents"],
                    _deserialize_aliases(row["aliases"])))
            span.set("rules", len(parsed))
        return parsed


def _serialize_aliases(aliases: AliasSet | None) -> str | None:
    if aliases is None or len(aliases) == 0:
        return None
    return json.dumps([[a.namespace_id, a.namespace_val] for a in aliases])


def _deserialize_aliases(payload: str | None) -> AliasSet | None:
    if payload is None:
        return None
    return AliasSet(Alias(prefix, namespace)
                    for prefix, namespace in json.loads(payload))

"""The triple-pattern language of SDO_RDF_MATCH and rulebases.

The paper's queries and rules write graph patterns as parenthesised
triples with ``?var`` variables::

    (gov:files gov:terrorSuspect ?name)
    (?x gov:terrorAction "bombing") (?x rdf:type gov:Person)

A pattern component is a variable, a URI / prefixed name, or a literal.
Prefixed names are expanded through the supplied
:class:`repro.rdf.namespaces.AliasSet`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Union

from repro.errors import QueryError
from repro.rdf.namespaces import AliasSet
from repro.rdf.terms import RDFTerm, TermError, parse_term_text
from repro.rdf.triple import Triple


@dataclass(frozen=True, slots=True)
class Variable:
    """A query variable ``?name``."""

    name: str

    def __post_init__(self) -> None:
        if not self.name or not self.name.replace("_", "").isalnum():
            raise QueryError(f"illegal variable name {self.name!r}")

    def __str__(self) -> str:
        return f"?{self.name}"


PatternComponent = Union[Variable, RDFTerm]


@dataclass(frozen=True, slots=True)
class TriplePattern:
    """One parenthesised triple pattern."""

    subject: PatternComponent
    predicate: PatternComponent
    object: PatternComponent

    def components(self) -> Iterator[PatternComponent]:
        yield self.subject
        yield self.predicate
        yield self.object

    def variables(self) -> set[str]:
        """Names of the variables this pattern binds."""
        return {component.name for component in self.components()
                if isinstance(component, Variable)}

    def is_ground(self) -> bool:
        """True when the pattern has no variables."""
        return not self.variables()

    def substitute(self, bindings: dict[str, RDFTerm]) -> Triple:
        """Instantiate the pattern under ``bindings`` into a triple.

        All variables must be bound; raises QueryError otherwise.
        """
        resolved = []
        for component in self.components():
            if isinstance(component, Variable):
                term = bindings.get(component.name)
                if term is None:
                    raise QueryError(
                        f"unbound variable {component} in consequent")
                resolved.append(term)
            else:
                resolved.append(component)
        subject, predicate, obj = resolved
        try:
            return Triple(subject, predicate, obj)  # type: ignore[arg-type]
        except TermError as exc:
            raise QueryError(str(exc)) from exc

    def __str__(self) -> str:
        return f"({self.subject} {self.predicate} {self.object})"


def unify(pattern: TriplePattern, triple: Triple,
          bindings: dict[str, RDFTerm] | None = None
          ) -> dict[str, RDFTerm] | None:
    """Bindings making ``pattern`` match ``triple``, or None.

    Starts from ``bindings`` (not mutated) and extends it; returns None
    on a constant mismatch or a variable clash.  The workhorse of the
    incremental rules-index engine: anchoring a rule antecedent at a
    delta triple, and anchoring a consequent at a triple to re-derive.
    """
    result = dict(bindings) if bindings else {}
    for component, term in zip(pattern.components(), triple):
        if isinstance(component, Variable):
            existing = result.get(component.name)
            if existing is None:
                result[component.name] = term
            elif existing != term:
                return None
        elif component != term:
            return None
    return result


def parse_pattern_list(text: str,
                       aliases: AliasSet | None = None
                       ) -> list[TriplePattern]:
    """Parse a whitespace-separated list of parenthesised patterns."""
    if aliases is None:
        aliases = AliasSet()
    groups = _split_groups(text)
    if not groups:
        raise QueryError(f"no triple patterns in {text!r}")
    return [_parse_group(group, aliases) for group in groups]


def _split_groups(text: str) -> list[str]:
    """Split ``(a b c) (d e f)`` into the parenthesised groups."""
    groups: list[str] = []
    depth = 0
    start = -1
    in_string = False
    for index, ch in enumerate(text):
        if in_string:
            if ch == '"' and text[index - 1] != "\\":
                in_string = False
            continue
        if ch == '"':
            in_string = True
        elif ch == "(":
            if depth == 0:
                start = index
            depth += 1
        elif ch == ")":
            depth -= 1
            if depth < 0:
                raise QueryError(f"unbalanced ')' in {text!r}")
            if depth == 0:
                groups.append(text[start + 1:index])
        elif depth == 0 and not ch.isspace():
            raise QueryError(
                f"unexpected {ch!r} outside parentheses in {text!r}")
    if depth != 0:
        raise QueryError(f"unbalanced '(' in {text!r}")
    return groups


def _parse_group(group: str, aliases: AliasSet) -> TriplePattern:
    tokens = _tokenize(group)
    if len(tokens) != 3:
        raise QueryError(
            f"a triple pattern needs 3 components, got {len(tokens)} "
            f"in ({group})")
    subject, predicate, obj = (
        _parse_component(token, aliases) for token in tokens)
    return TriplePattern(subject, predicate, obj)


def _tokenize(group: str) -> list[str]:
    """Whitespace tokenizer that keeps quoted literals whole."""
    tokens: list[str] = []
    current: list[str] = []
    in_string = False
    for ch in group:
        if in_string:
            current.append(ch)
            if ch == '"' and (len(current) < 2 or current[-2] != "\\"):
                in_string = False
            continue
        if ch == '"':
            current.append(ch)
            in_string = True
        elif ch.isspace():
            if current:
                tokens.append("".join(current))
                current = []
        else:
            current.append(ch)
    if in_string:
        raise QueryError(f"unterminated literal in ({group})")
    if current:
        tokens.append("".join(current))
    return tokens


def _parse_component(token: str, aliases: AliasSet) -> PatternComponent:
    if token.startswith("?"):
        return Variable(token[1:])
    expanded = aliases.expand(token)
    try:
        return parse_term_text(expanded)
    except TermError as exc:
        raise QueryError(
            f"bad pattern component {token!r}: {exc}") from exc

"""SDO_RDF_MATCH: the SQL-based RDF querying scheme.

The paper's table function (section 6.1)::

    SDO_RDF_MATCH(query, models, rulebases, aliases, filter)
        RETURN ANYDATASET

``query`` is a list of triple patterns; ``models`` the graphs to search;
``rulebases`` the inference rules whose pre-computed rules index extends
the data; ``aliases`` the namespace abbreviations; ``filter`` a
predicate over the variables.  The result is a table whose columns are
the query variables.

Evaluation follows the Chong et al. scheme the paper cites: each triple
pattern becomes a self-join over the triples dataset, executed as one
SQL statement against ``rdf_link$`` (UNION the ``rdf_inferred$`` rows of
a covering rules index when rulebases are given).  Joins happen on
VALUE_IDs; lexical forms are resolved only for the final projection.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

from repro.core.schema import LINK_TABLE
from repro.errors import QueryError, RulesIndexError
from repro.inference.filters import FilterExpression, parse_filter
from repro.inference.patterns import (
    TriplePattern,
    Variable,
    parse_pattern_list,
)
from repro.inference.rules_index import INFERRED_TABLE, RulesIndexManager
from repro.obs.metrics import DEFAULT_COUNT_BUCKETS as _COUNT_BUCKETS
from repro.rdf.namespaces import AliasSet
from repro.rdf.terms import RDFTerm

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.store import RDFStore


class MatchRow:
    """One result row: variable name -> value.

    Supports both mapping access (``row["name"]``) and attribute access
    (``row.name``), mirroring the SQL column style of the paper's
    Figure 8 (``a.name``).  Values are lexical strings; the full terms
    are available via :meth:`term`.
    """

    def __init__(self, terms: dict[str, RDFTerm]) -> None:
        self._terms = terms

    def term(self, name: str) -> RDFTerm:
        """The bound RDF term for a variable."""
        return self._terms[name]

    def __getitem__(self, name: str) -> str:
        return self._terms[name].lexical

    def __getattr__(self, name: str) -> str:
        if name.startswith("_"):
            raise AttributeError(name)
        try:
            return self._terms[name].lexical
        except KeyError:
            raise AttributeError(name) from None

    def keys(self) -> list[str]:
        return list(self._terms)

    def as_dict(self) -> dict[str, str]:
        return {name: term.lexical for name, term in self._terms.items()}

    def __eq__(self, other: object) -> bool:
        if isinstance(other, MatchRow):
            return self._terms == other._terms
        if isinstance(other, dict):
            return self.as_dict() == other
        return NotImplemented

    def __hash__(self) -> int:
        return hash(frozenset(self._terms.items()))

    def __repr__(self) -> str:
        inner = ", ".join(f"{k}={v.lexical!r}"
                          for k, v in self._terms.items())
        return f"MatchRow({inner})"


def sdo_rdf_match(store: "RDFStore", query: str,
                  models: Sequence[str],
                  rulebases: Sequence[str] = (),
                  aliases: AliasSet | None = None,
                  filter: str | None = None,
                  order_by: str | None = None,
                  limit: int | None = None) -> list[MatchRow]:
    """Evaluate an SDO_RDF_MATCH query.

    :param store: the RDF store.
    :param query: the triple-pattern list, e.g.
        ``'(gov:files gov:terrorSuspect ?name)'``.
    :param models: model names to search (``SDO_RDF_MODELS``).
    :param rulebases: rulebase names (``SDO_RDF_RULEBASES``); requires a
        covering rules index to have been created, as in Oracle.
    :param aliases: namespace aliases (``SDO_RDF_ALIASES``).
    :param filter: optional filter predicate over the variables.
    :param order_by: optional variable name (with or without the
        leading ``?``) to sort the rows by, lexically — the Python
        convenience for the ORDER BY the paper wraps around the table
        function in SQL.
    :param limit: optional maximum number of rows, applied after
        filtering and ordering.
    """
    if not models:
        raise QueryError("SDO_RDF_MATCH requires at least one model")
    if limit is not None and limit < 0:
        raise QueryError(f"limit must be >= 0, got {limit}")
    observer = store.observer
    with observer.span("match.execute", models=",".join(models),
                       query=query) as span:
        aliases = aliases or AliasSet()
        patterns = parse_pattern_list(query, aliases)
        filter_expression = parse_filter(filter) if filter else None
        _check_filter_variables(filter_expression, patterns, filter)
        bound = set().union(*(p.variables() for p in patterns))
        if order_by is not None:
            order_by = order_by.lstrip("?")
            if order_by not in bound:
                raise QueryError(
                    f"order_by variable {order_by!r} is not bound by the "
                    "query")
        with observer.span("match.compile", patterns=len(patterns)):
            compiled = _compile(store, patterns, models, rulebases)
        if observer.enabled:
            observer.counter("match.queries").inc()
            observer.metrics.histogram(
                "match.patterns", "triple patterns per query",
                buckets=range(1, 17)).observe(len(patterns))
        if compiled is None:
            # A constant with no VALUE_ID: nothing can match.
            span.set("rows", 0)
            span.set("short_circuit", "unknown-constant")
            return []
        sql, params, projection = compiled
        rows: list[MatchRow] = []
        fetched = 0
        with observer.span("match.sql") as sql_span:
            for row in store.database.execute(sql, params):
                fetched += 1
                terms = {name: store.values.get_term(row[index])
                         for name, index in projection.items()}
                match_row = MatchRow(terms)
                if filter_expression is not None and \
                        not filter_expression.evaluate(
                            dict(match_row._terms)):
                    continue
                rows.append(match_row)
            sql_span.set("fetched", fetched)
        if order_by is not None:
            rows.sort(key=lambda match_row: match_row[order_by])
        if limit is not None:
            rows = rows[:limit]
        span.set("rows", len(rows))
        if observer.enabled:
            observer.metrics.histogram(
                "match.rows", "result rows per query",
                buckets=_COUNT_BUCKETS).observe(len(rows))
        return rows


def ask(store: "RDFStore", query: str, models: Sequence[str],
        rulebases: Sequence[str] = (),
        aliases: AliasSet | None = None) -> bool:
    """Existence form: does the (possibly ground) pattern match at all?"""
    return bool(sdo_rdf_match(store, query, models, rulebases=rulebases,
                              aliases=aliases))


def _check_filter_variables(filter_expression: FilterExpression | None,
                            patterns: list[TriplePattern],
                            filter_text: str | None) -> None:
    if filter_expression is None:
        return
    bound = set().union(*(p.variables() for p in patterns))
    unknown = filter_expression.variables() - bound
    if unknown:
        raise QueryError(
            f"filter {filter_text!r} references unbound variables "
            f"{sorted(unknown)}")


def _dataset_sql(store: "RDFStore", models: Sequence[str],
                 rulebases: Sequence[str]) -> tuple[str, list]:
    """The (sql, params) of the triples dataset subquery."""
    model_ids = [store.models.get(name).model_id for name in models]
    placeholders = ", ".join("?" for _ in model_ids)
    sql = (f'SELECT start_node_id AS s, p_value_id AS p, '
           f'end_node_id AS o FROM "{LINK_TABLE}" '
           f"WHERE model_id IN ({placeholders})")
    params: list = list(model_ids)
    if rulebases:
        index = RulesIndexManager(store).find_covering(models, rulebases)
        if index is None:
            raise RulesIndexError(
                "no rules index covers models "
                f"{list(models)} with rulebases {list(rulebases)}; "
                "run CREATE_RULES_INDEX first")
        sql += (f' UNION SELECT s_id AS s, p_id AS p, o_id AS o '
                f'FROM "{INFERRED_TABLE}" WHERE index_name = ?')
        params.append(index.index_name)
    return sql, params


def _compile(store: "RDFStore", patterns: list[TriplePattern],
             models: Sequence[str], rulebases: Sequence[str]
             ) -> tuple[str, list, dict[str, int]] | None:
    """Compile patterns into one self-join SQL statement.

    Returns (sql, params, projection) where ``projection`` maps variable
    names to result-column indexes — or None when a constant component
    has no VALUE_ID, in which case nothing can match.
    """
    dataset_sql, dataset_params = _dataset_sql(store, models, rulebases)
    select_columns: list[str] = []
    projection: dict[str, int] = {}
    joins: list[str] = []
    where_clauses: list[str] = []
    params: list = []
    first_occurrence: dict[str, str] = {}
    constant_conditions: list[tuple[str, int]] = []
    for index, pattern in enumerate(patterns):
        alias = f"t{index}"
        joins.append(f"({dataset_sql}) {alias}")
        params.extend(dataset_params)
        for column, component in zip(("s", "p", "o"),
                                     pattern.components()):
            qualified = f"{alias}.{column}"
            if isinstance(component, Variable):
                name = component.name
                if name in first_occurrence:
                    where_clauses.append(
                        f"{qualified} = {first_occurrence[name]}")
                else:
                    first_occurrence[name] = qualified
                    projection[name] = len(select_columns)
                    select_columns.append(qualified)
            else:
                value_id = store.values.find_id(component)
                if value_id is None:
                    return None
                constant_conditions.append((qualified, value_id))
    for qualified, value_id in constant_conditions:
        where_clauses.append(f"{qualified} = ?")
        params.append(value_id)
    if not select_columns:
        # Fully ground query: pure existence check.
        select_columns = ["1"]
    sql = (f"SELECT DISTINCT {', '.join(select_columns)} FROM "
           + ", ".join(joins))
    if where_clauses:
        sql += " WHERE " + " AND ".join(where_clauses)
    return sql, params, projection

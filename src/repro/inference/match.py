"""SDO_RDF_MATCH: the SQL-based RDF querying scheme.

The paper's table function (section 6.1)::

    SDO_RDF_MATCH(query, models, rulebases, aliases, filter)
        RETURN ANYDATASET

``query`` is a list of triple patterns; ``models`` the graphs to search;
``rulebases`` the inference rules whose pre-computed rules index extends
the data; ``aliases`` the namespace abbreviations; ``filter`` a
predicate over the variables.  The result is a table whose columns are
the query variables.

Evaluation follows the Chong et al. scheme the paper cites: each triple
pattern becomes a self-join over the triples dataset, executed as one
SQL statement against ``rdf_link$`` (UNION the ``rdf_inferred$`` rows of
a covering rules index when rulebases are given).  Joins happen on
VALUE_IDs; lexical forms are resolved only for the final projection.

Compilation is staged (see :mod:`repro.inference.plan`):

1. parse patterns and filter;
2. build the logical :class:`~repro.inference.plan.QueryPlan` —
   constants resolved to VALUE_IDs, joins reordered most-selective
   first using :mod:`repro.inference.stats`, filter/ORDER BY/LIMIT
   pushed into the generated SQL where provably equivalent;
3. cache the plan in ``store.plan_cache`` keyed on the raw query
   shape, so a repeated query skips stages 1-2 entirely (any data
   change bumps ``data_version`` and invalidates cached plans);
4. execute, resolving result VALUE_IDs to terms in batches.

``explain=True`` returns the :class:`MatchExplanation` for the query
instead of executing it; ``optimize=False`` reproduces the legacy
textual-order compile (no statistics, no pushdown, no caching) as a
reference baseline.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Sequence

from repro.errors import QueryError
from repro.inference.filters import FilterExpression, parse_filter
from repro.inference.patterns import TriplePattern, parse_pattern_list
from repro.inference.plan import (
    QueryPlan,
    build_plan,
    classify_replica_shape,
    plan_key,
)
from repro.obs.metrics import DEFAULT_COUNT_BUCKETS as _COUNT_BUCKETS
from repro.obs.reqctx import current_trace
from repro.rdf.namespaces import AliasSet
from repro.rdf.terms import RDFTerm

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.store import RDFStore

#: Parsed-query cache for the replica fast path.  The SQL pipeline's
#: plan cache already skips parsing on a hit; the replica path must
#: not re-pay it on every query.  Keyed on raw text (like plan_key)
#: and holding only immutable parse artefacts — the pattern tuple,
#: the filter AST, the bound-variable set — so entries are shared
#: safely across stores and threads.  Bounded FIFO: parse results
#: never go stale, so eviction order is a non-issue.
_PARSE_CACHE: dict[tuple, tuple] = {}
_PARSE_CACHE_CAP = 256


class MatchRow:
    """One result row: variable name -> value.

    Supports both mapping access (``row["name"]``) and attribute access
    (``row.name``), mirroring the SQL column style of the paper's
    Figure 8 (``a.name``).  Values are lexical strings; the full terms
    are available via :meth:`term`.
    """

    def __init__(self, terms: dict[str, RDFTerm]) -> None:
        self._terms = terms

    def term(self, name: str) -> RDFTerm:
        """The bound RDF term for a variable."""
        return self._terms[name]

    def __getitem__(self, name: str) -> str:
        return self._terms[name].lexical

    def __getattr__(self, name: str) -> str:
        if name.startswith("_"):
            raise AttributeError(name)
        try:
            return self._terms[name].lexical
        except KeyError:
            raise AttributeError(name) from None

    def keys(self) -> list[str]:
        return list(self._terms)

    def as_dict(self) -> dict[str, str]:
        return {name: term.lexical for name, term in self._terms.items()}

    def __eq__(self, other: object) -> bool:
        if isinstance(other, MatchRow):
            return self._terms == other._terms
        if isinstance(other, dict):
            return self.as_dict() == other
        return NotImplemented

    def __hash__(self) -> int:
        return hash(frozenset(self._terms.items()))

    def __repr__(self) -> str:
        inner = ", ".join(f"{k}={v.lexical!r}"
                          for k, v in self._terms.items())
        return f"MatchRow({inner})"


class MatchExplanation:
    """The EXPLAIN surface of one SDO_RDF_MATCH query.

    Returned by ``sdo_rdf_match(..., explain=True)`` instead of rows:
    the chosen join order with selectivity estimates, what was pushed
    into SQL, the generated statement, whether the plan came from the
    cache, and which engine would serve the query (``sql``, the
    result ``cache``, the in-memory ``replica``, or the sharded
    ``scatter`` merge).
    """

    def __init__(self, query: str, models: tuple[str, ...],
                 rulebases: tuple[str, ...], cache: str,
                 plan: QueryPlan, engine: str = "sql") -> None:
        self.query = query
        self.models = models
        self.rulebases = rulebases
        self.cache = cache  #: "hit", "miss", or "bypass" (optimize off)
        self.plan = plan
        self.engine = engine  #: "sql", "cache", "replica", or "scatter"

    def as_dict(self) -> dict[str, Any]:
        return {
            "query": self.query,
            "models": list(self.models),
            "rulebases": list(self.rulebases),
            "engine": self.engine,
            "plan_cache": self.cache,
            "plan": self.plan.as_dict(),
        }

    def render(self) -> str:
        """Human-readable EXPLAIN text (the ``repro explain`` output)."""
        plan = self.plan
        lines = [
            "SDO_RDF_MATCH plan",
            f"  query:           {self.query}",
            f"  models:          {', '.join(self.models)}",
        ]
        if self.rulebases:
            lines.append(f"  rulebases:       "
                         f"{', '.join(self.rulebases)}")
        lines.append(f"  engine:          {self.engine}")
        lines.append(f"  plan cache:      {self.cache}")
        if plan.impossible_reason is not None:
            lines.append(f"  impossible:      {plan.impossible_reason}")
            return "\n".join(lines)
        if plan.dataset_size is not None:
            lines.append(f"  dataset size:    {plan.dataset_size} "
                         "triples")
        reordered = "reordered" if plan.reordered else "textual order"
        lines.append(f"  join order:      {reordered}")
        for position, step in enumerate(plan.join_order, start=1):
            entry = (f"    {position}. {step.alias} {step.pattern} "
                     f"(pattern #{step.source_index + 1})")
            if step.estimate is not None:
                counts = " ".join(
                    f"{pos}={count}"
                    for pos, count in sorted(step.constant_counts.items()))
                entry += f"  est_rows={step.estimate:.1f}"
                if counts:
                    entry += f"  [{counts}]"
            lines.append(entry)
        lines.append(f"  distinct:        "
                     f"{'yes' if plan.distinct else 'no'}")
        if plan.pushed_filter is not None:
            lines.append(f"  pushed filter:   {plan.pushed_filter}")
        lines.append(
            "  residual filter: "
            + ("yes (python)" if plan.residual_filter is not None
               else "no"))
        if plan.order_by is None:
            order_line = "none"
        elif plan.order_by_pushed:
            order_line = f"?{plan.order_by} (pushed to SQL)"
        else:
            order_line = f"?{plan.order_by} (python sort)"
        lines.append(f"  order by:        {order_line}")
        if plan.limit is None:
            limit_line = "none"
        elif plan.limit_pushed:
            limit_line = f"{plan.limit} (pushed to SQL)"
        else:
            limit_line = f"{plan.limit} (python slice)"
        lines.append(f"  limit:           {limit_line}")
        lines.append(f"  sql:             {plan.sql}")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (f"MatchExplanation(cache={self.cache!r}, "
                f"patterns={self.plan.pattern_count})")


def sdo_rdf_match(store: "RDFStore", query: str,
                  models: Sequence[str],
                  rulebases: Sequence[str] = (),
                  aliases: AliasSet | None = None,
                  filter: str | None = None,
                  order_by: str | None = None,
                  limit: int | None = None,
                  explain: bool = False,
                  optimize: bool = True):
    """Evaluate an SDO_RDF_MATCH query.

    :param store: the RDF store.
    :param query: the triple-pattern list, e.g.
        ``'(gov:files gov:terrorSuspect ?name)'``.
    :param models: model names to search (``SDO_RDF_MODELS``).
    :param rulebases: rulebase names (``SDO_RDF_RULEBASES``); requires a
        covering rules index to have been created, as in Oracle.
    :param aliases: namespace aliases (``SDO_RDF_ALIASES``).
    :param filter: optional filter predicate over the variables.
    :param order_by: optional variable name (with or without the
        leading ``?``) to sort the rows by, lexically — the Python
        convenience for the ORDER BY the paper wraps around the table
        function in SQL.
    :param limit: optional maximum number of rows, applied after
        filtering and ordering (pushed into the SQL whenever no
        Python-side residual filter remains).
    :param explain: return the :class:`MatchExplanation` instead of
        executing the query.
    :param optimize: False reproduces the legacy naive compile —
        textual join order, no pushdown, no plan cache.
    :returns: ``list[MatchRow]``, or :class:`MatchExplanation` when
        ``explain=True``.
    """
    # An engine that defines scatter_match (the sharded backend)
    # evaluates queries itself: single-subject-anchored patterns route
    # to one shard, everything else fans out per-pattern subplans and
    # merges in Python (see repro.inference.scatter).  Duck-typed so
    # this module never imports the sharded engine.
    scatter = getattr(store, "scatter_match", None)
    if scatter is not None:
        return scatter(query, models, rulebases=rulebases,
                       aliases=aliases, filter=filter,
                       order_by=order_by, limit=limit, explain=explain,
                       optimize=optimize)
    if not models:
        raise QueryError("SDO_RDF_MATCH requires at least one model")
    if limit is not None and limit < 0:
        raise QueryError(f"limit must be >= 0, got {limit}")
    observer = store.observer
    with observer.span("match.execute", models=",".join(models),
                       query=query) as span:
        aliases = aliases or AliasSet()
        if order_by is not None:
            order_by = order_by.lstrip("?")

        # ---- result-cache routing (see repro.cache) ----
        # An attached result cache serves a repeated query from memory
        # without parsing, planning, or SQL.  Keys are the *normalized*
        # query shape; the entry is valid only at the data_version it
        # was computed under, so any committed write invalidates on the
        # next lookup.  Duck-typed like the replica below.
        result_cache = getattr(store, "result_cache", None)
        cache_key = None
        cache_version = None
        if result_cache is not None and optimize and not explain:
            # Lazy import: repro.cache's normalizer reuses this
            # package's parsers, so a module-level import here would
            # be circular through repro.inference.__init__.
            from repro.cache.normalize import normalized_key
            cache_key = normalized_key(query, models, rulebases,
                                       aliases, filter, order_by, limit)
            # The version is read BEFORE executing: a write racing the
            # miss path can only make the stored rows *newer* than
            # their key (the next lookup invalidates and recomputes) —
            # never older, which would be a stale serve.
            cache_version = store.database.data_version
            cached = result_cache.lookup(cache_key, cache_version)
            if cached is not None:
                span.set("engine", "cache")
                span.set("rows", len(cached))
                request = current_trace()
                if request is not None:
                    request.annotate("query", query)
                    request.annotate("engine", "cache")
                if observer.enabled:
                    observer.counter("match.queries").inc()
                    observer.counter("match.result_cache_hits").inc()
                    observer.metrics.histogram(
                        "match.rows", "result rows per query",
                        buckets=_COUNT_BUCKETS).observe(len(cached))
                return list(cached)
            if observer.enabled:
                observer.counter("match.result_cache_misses").inc()

        # ---- replica routing (see repro.replica) ----
        # An attached in-memory replica serves eligible queries —
        # single model, no rulebases, a supported pattern shape —
        # straight from its version-gated partition arrays.  Anything
        # it declines (absent, stale, evicted, unsupported shape)
        # falls through to the SQL pipeline below.  Duck-typed so this
        # module never imports the replica subsystem.
        replica_manager = getattr(store, "replica", None)
        replica_eligible = (replica_manager is not None and optimize
                            and not rulebases and len(models) == 1)
        parsed_patterns: list[TriplePattern] | None = None
        parsed_filter: FilterExpression | None = None
        validated = False
        if replica_eligible and not explain:
            # The exact parse + validation the SQL compile would do,
            # so the replica path raises identical QueryErrors —
            # cached on the raw text, since parse output depends only
            # on (query, aliases, filter).
            parse_key = (query, filter, tuple(sorted(
                (alias.namespace_id, alias.namespace_val)
                for alias in aliases)))
            parsed = _PARSE_CACHE.get(parse_key)
            if parsed is None:
                parsed_patterns = parse_pattern_list(query, aliases)
                parsed_filter = parse_filter(filter) if filter else None
                _check_filter_variables(parsed_filter, parsed_patterns,
                                        filter)
                bound = frozenset().union(
                    *(p.variables() for p in parsed_patterns))
                if len(_PARSE_CACHE) >= _PARSE_CACHE_CAP:
                    _PARSE_CACHE.pop(next(iter(_PARSE_CACHE)))
                _PARSE_CACHE[parse_key] = (tuple(parsed_patterns),
                                           parsed_filter, bound)
            else:
                parsed_patterns = list(parsed[0])
                parsed_filter, bound = parsed[1], parsed[2]
            if order_by is not None and order_by not in bound:
                raise QueryError(
                    f"order_by variable {order_by!r} is not bound "
                    "by the query")
            validated = True
            rows = replica_manager.try_match(
                store, parsed_patterns, models,
                filter_expression=parsed_filter, order_by=order_by,
                limit=limit, token=parse_key)
            if rows is not None:
                span.set("engine", "replica")
                span.set("rows", len(rows))
                request = current_trace()
                if request is not None:
                    request.annotate("query", query)
                    request.annotate("engine", "replica")
                if observer.enabled:
                    observer.counter("match.queries").inc()
                    observer.counter("match.replica_hits").inc()
                    observer.metrics.histogram(
                        "match.patterns",
                        "triple patterns per query",
                        buckets=range(1, 17)).observe(
                            len(parsed_patterns))
                    observer.metrics.histogram(
                        "match.rows", "result rows per query",
                        buckets=_COUNT_BUCKETS).observe(len(rows))
                if cache_key is not None:
                    _store_result(result_cache, cache_key,
                                  cache_version, rows)
                return rows
            if observer.enabled:
                observer.counter("match.replica_fallbacks").inc()

        # ---- plan: cache lookup, else full compile ----
        plan: QueryPlan | None = None
        cache_status = "bypass"
        key: tuple | None = None
        if optimize:
            key = plan_key(query, models, rulebases, aliases, filter,
                           order_by, limit)
            plan = store.plan_cache.lookup(
                key, store.database.data_version)
            cache_status = "miss" if plan is None else "hit"
        if plan is None:
            if parsed_patterns is not None:
                patterns = parsed_patterns
                filter_expression = parsed_filter
            else:
                patterns = parse_pattern_list(query, aliases)
                filter_expression = parse_filter(filter) if filter \
                    else None
            if not validated:
                _check_filter_variables(filter_expression, patterns,
                                        filter)
                if order_by is not None:
                    bound = set().union(
                        *(p.variables() for p in patterns))
                    if order_by not in bound:
                        raise QueryError(
                            f"order_by variable {order_by!r} is not "
                            "bound by the query")
            with observer.span("match.compile", patterns=len(patterns),
                               cache=cache_status):
                plan = build_plan(store, patterns, models, rulebases,
                                  filter_expression=filter_expression,
                                  order_by=order_by, limit=limit,
                                  optimize=optimize)
            if optimize and key is not None:
                store.plan_cache.store(key, plan)
            if observer.enabled and plan.reordered:
                observer.counter("match.join_reorders").inc()

        span.set("plan_cache", cache_status)
        if not explain:
            # Joined to the serving layer's slow-request log: the
            # request that ran this query learns its plan-cache fate
            # and query text even when the observer is disabled.
            request = current_trace()
            if request is not None:
                request.annotate("query", query)
                request.annotate("plan_cache", cache_status)
                request.annotate("engine", "sql")
        if observer.enabled:
            observer.counter("match.queries").inc()
            if optimize:
                observer.counter(
                    "match.plan_cache_hits" if cache_status == "hit"
                    else "match.plan_cache_misses").inc()
            observer.metrics.histogram(
                "match.patterns", "triple patterns per query",
                buckets=range(1, 17)).observe(plan.pattern_count)

        if explain:
            span.set("explain", True)
            span.set("plan_cache", cache_status)
            engine = "sql"
            if result_cache is not None and optimize:
                from repro.cache.normalize import normalized_key
                if result_cache.would_serve(
                        normalized_key(query, models, rulebases,
                                       aliases, filter, order_by,
                                       limit),
                        store.database.data_version):
                    engine = "cache"
            if engine == "sql" and replica_eligible:
                # Advisory: shape-eligible and the replica is fresh
                # (or would build inline).  An eviction between this
                # check and a later execution can still fall back.
                explain_patterns = parsed_patterns \
                    if parsed_patterns is not None \
                    else parse_pattern_list(query, aliases)
                if classify_replica_shape(explain_patterns) is not None \
                        and replica_manager.would_serve(store,
                                                        models[0]):
                    engine = "replica"
            return MatchExplanation(
                query=query, models=tuple(models),
                rulebases=tuple(rulebases), cache=cache_status,
                plan=plan, engine=engine)

        if plan.sql is None:
            # A constant with no VALUE_ID: nothing can match.
            span.set("rows", 0)
            span.set("short_circuit", "unknown-constant")
            if cache_key is not None:
                _store_result(result_cache, cache_key, cache_version,
                              [])
            return []

        # ---- execute + batched term resolution ----
        projection = plan.projection
        with observer.span("match.sql") as sql_span:
            fetched = store.database.query_all(plan.sql, plan.params)
            sql_span.set("fetched", len(fetched))
        rows: list[MatchRow] = []
        if plan.optimized:
            with observer.span("match.resolve") as resolve_span:
                wanted = {raw[index] for raw in fetched
                          for index in projection.values()}
                terms = store.values.get_terms(wanted)
                resolve_span.set("values", len(wanted))
            for raw in fetched:
                rows.append(MatchRow(
                    {name: terms[raw[index]]
                     for name, index in projection.items()}))
        else:
            for raw in fetched:
                rows.append(MatchRow(
                    {name: store.values.get_term(raw[index])
                     for name, index in projection.items()}))

        # ---- residual filter / order / limit ----
        residual = plan.residual_filter
        if residual is not None:
            rows = [row for row in rows
                    if residual.evaluate(dict(row._terms))]
        if order_by is not None and not plan.order_by_pushed:
            rows.sort(key=lambda match_row: match_row[order_by])
        if limit is not None and not plan.limit_pushed:
            rows = rows[:limit]
        span.set("rows", len(rows))
        if observer.enabled:
            observer.metrics.histogram(
                "match.rows", "result rows per query",
                buckets=_COUNT_BUCKETS).observe(len(rows))
        if cache_key is not None:
            _store_result(result_cache, cache_key, cache_version, rows)
        return rows


def ask(store: "RDFStore", query: str, models: Sequence[str],
        rulebases: Sequence[str] = (),
        aliases: AliasSet | None = None) -> bool:
    """Existence form: does the (possibly ground) pattern match at all?

    Compiled with ``limit=1`` so the SQL stops at the first matching
    row instead of materializing the full result set.
    """
    return bool(sdo_rdf_match(store, query, models, rulebases=rulebases,
                              aliases=aliases, limit=1))


def _store_result(result_cache, cache_key: tuple, cache_version,
                  rows: "list[MatchRow]") -> None:
    """Install a computed result set in the attached result cache.

    Sized on the lexical projection (what a consumer actually reads
    out of the rows); the MatchRow/RDFTerm object overhead on top is
    real but bounded, and the flat estimate must stay cheap enough to
    run on every miss.
    """
    from repro.cache.result_cache import estimate_bytes
    result_cache.store(
        cache_key, cache_version, rows,
        nbytes=estimate_bytes([row.as_dict() for row in rows]))


def _check_filter_variables(filter_expression: FilterExpression | None,
                            patterns: list[TriplePattern],
                            filter_text: str | None) -> None:
    if filter_expression is None:
        return
    bound = set().union(*(p.variables() for p in patterns))
    unknown = filter_expression.variables() - bound
    if unknown:
        raise QueryError(
            f"filter {filter_text!r} references unbound variables "
            f"{sorted(unknown)}")

"""Filter expressions for rules and SDO_RDF_MATCH.

Oracle's rule filter and the match function's ``filter`` argument are
small SQL-ish predicates over the bound variables.  The supported
grammar here::

    expr     := clause (AND clause | OR clause)*
    clause   := operand op operand
    op       := = | != | < | <= | > | >= | LIKE
    operand  := variable | "string" | number

``AND`` binds tighter than ``OR``.  Comparisons are numeric when both
sides canonicalise to numbers, string otherwise; ``LIKE`` supports the
SQL ``%`` and ``_`` wildcards.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Union

from repro.errors import QueryError
from repro.rdf.terms import Literal, RDFTerm

_TOKEN_RE = re.compile(
    r"\s*(?:(?P<string>\"(?:[^\"\\]|\\.)*\")"
    r"|(?P<number>-?\d+(?:\.\d+)?)"
    r"|(?P<op><=|>=|!=|<>|=|<|>)"
    r"|(?P<word>[A-Za-z_][A-Za-z0-9_]*)"
    r"|(?P<lparen>\()"
    r"|(?P<rparen>\))"
    r"|(?P<var>\?[A-Za-z_][A-Za-z0-9_]*))")


@dataclass(frozen=True, slots=True)
class Comparison:
    """One ``operand op operand`` clause."""

    left: Union[str, float, "_Var"]
    op: str
    right: Union[str, float, "_Var"]

    def evaluate(self, bindings: dict[str, RDFTerm]) -> bool:
        left = _resolve_operand(self.left, bindings)
        right = _resolve_operand(self.right, bindings)
        if left is None or right is None:
            return False
        left, right = _coerce_pair(left, right)
        if self.op == "=":
            return left == right
        if self.op in ("!=", "<>"):
            return left != right
        if self.op == "<":
            return left < right
        if self.op == "<=":
            return left <= right
        if self.op == ">":
            return left > right
        if self.op == ">=":
            return left >= right
        if self.op == "LIKE":
            return _like(str(left), str(right))
        raise QueryError(f"unknown operator {self.op!r}")


@dataclass(frozen=True, slots=True)
class _Var:
    name: str


@dataclass(frozen=True)
class FilterExpression:
    """A disjunction of conjunctions of comparisons (OR of ANDs)."""

    disjuncts: tuple[tuple[Comparison, ...], ...]

    def evaluate(self, bindings: dict[str, RDFTerm]) -> bool:
        return any(all(clause.evaluate(bindings) for clause in conjunct)
                   for conjunct in self.disjuncts)

    def variables(self) -> set[str]:
        names: set[str] = set()
        for conjunct in self.disjuncts:
            for clause in conjunct:
                for operand in (clause.left, clause.right):
                    if isinstance(operand, _Var):
                        names.add(operand.name)
        return names


def parse_filter(text: str) -> FilterExpression:
    """Parse a filter expression; raises QueryError on bad syntax."""
    tokens = _tokenize(text)
    parser = _Parser(tokens, text)
    expression = parser.parse_expression()
    if not parser.at_end():
        raise QueryError(f"trailing tokens in filter {text!r}")
    return expression


def _tokenize(text: str) -> list[tuple[str, str]]:
    tokens: list[tuple[str, str]] = []
    position = 0
    while position < len(text):
        match = _TOKEN_RE.match(text, position)
        if match is None or match.end() == position:
            remainder = text[position:].strip()
            if not remainder:
                break
            raise QueryError(f"bad filter syntax near {remainder!r}")
        position = match.end()
        kind = match.lastgroup
        assert kind is not None
        tokens.append((kind, match.group(kind)))
    return tokens


class _Parser:
    def __init__(self, tokens: list[tuple[str, str]], source: str) -> None:
        self._tokens = tokens
        self._source = source
        self._position = 0

    def at_end(self) -> bool:
        return self._position >= len(self._tokens)

    def _peek(self) -> tuple[str, str] | None:
        if self.at_end():
            return None
        return self._tokens[self._position]

    def _next(self) -> tuple[str, str]:
        token = self._peek()
        if token is None:
            raise QueryError(
                f"unexpected end of filter {self._source!r}")
        self._position += 1
        return token

    def parse_expression(self) -> FilterExpression:
        disjuncts = [self._parse_conjunct()]
        while True:
            token = self._peek()
            if token is None or token[1].upper() != "OR":
                break
            self._next()
            disjuncts.append(self._parse_conjunct())
        return FilterExpression(tuple(disjuncts))

    def _parse_conjunct(self) -> tuple[Comparison, ...]:
        clauses = [self._parse_comparison()]
        while True:
            token = self._peek()
            if token is None or token[1].upper() != "AND":
                break
            self._next()
            clauses.append(self._parse_comparison())
        return tuple(clauses)

    def _parse_comparison(self) -> Comparison:
        left = self._parse_operand()
        kind, value = self._next()
        if kind == "word" and value.upper() == "LIKE":
            op = "LIKE"
        elif kind == "op":
            op = value
        else:
            raise QueryError(
                f"expected operator, got {value!r} in {self._source!r}")
        right = self._parse_operand()
        return Comparison(left, op, right)

    def _parse_operand(self) -> Union[str, float, _Var]:
        kind, value = self._next()
        if kind == "var":
            return _Var(value[1:])
        if kind == "word":
            # Bare words act as variable references (Oracle column style).
            return _Var(value)
        if kind == "string":
            return _unquote(value)
        if kind == "number":
            return float(value)
        raise QueryError(
            f"expected operand, got {value!r} in {self._source!r}")


def _unquote(token: str) -> str:
    return token[1:-1].replace('\\"', '"').replace("\\\\", "\\")


def _resolve_operand(operand, bindings: dict[str, RDFTerm]):
    if isinstance(operand, _Var):
        term = bindings.get(operand.name)
        if term is None:
            return None
        if isinstance(term, Literal):
            return term.lexical_form
        return term.lexical
    return operand


def _coerce_pair(left, right):
    """Coerce both sides to float when both look numeric."""
    try:
        return float(left), float(right)
    except (TypeError, ValueError):
        return str(left), str(right)


def _like(value: str, pattern: str) -> bool:
    regex = re.escape(pattern).replace("%", ".*").replace("_", ".")
    return re.fullmatch(regex, value) is not None

"""Statistics for the SDO_RDF_MATCH planner.

Join-order quality is what makes or breaks an RDF self-join store: a
query that starts from a selective constant-anchored pattern touches a
handful of ``rdf_link$`` rows, while the same query joined in textual
order can scan a model per pattern.  This module maintains the figures
the planner (:mod:`repro.inference.plan`) orders joins by:

* per-dataset triple counts (the models searched, plus a covering
  rules index's ``rdf_inferred$`` rows when rulebases are given);
* per-constant counts — how many dataset triples carry a given
  VALUE_ID in the subject, predicate, or object position.

Every count is one indexed ``COUNT(*)`` (``rdf_link_spo``,
``rdf_link_pos``, ``rdf_link_osp``) and is cached.  The cache is keyed
on the database's :attr:`~repro.db.connection.Database.data_version`
counter, so any insert, delete, bulk load, model drop, or rules-index
change starts a fresh set of figures.

Object-position counts use ``canon_end_node_id`` (the only indexed
object column); for non-canonical literal objects the figure is an
approximation.  That is fine — estimates steer join order, they never
decide membership, so a bad estimate costs speed, not correctness.
"""

from __future__ import annotations

import threading
from typing import TYPE_CHECKING, Mapping, Sequence

from repro.core.schema import LINK_TABLE
from repro.inference.rules_index import INFERRED_TABLE

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.store import RDFStore

#: Constant position -> the ``rdf_link$`` column its count filters on.
_POSITION_COLUMNS = {
    "s": "start_node_id",
    "p": "p_value_id",
    "o": "canon_end_node_id",
}


class MatchStatistics:
    """Version-checked selectivity statistics over one store.

    One instance lives on the :class:`~repro.core.store.RDFStore`
    (``store.match_statistics``) and is shared by every query the
    store plans.
    """

    def __init__(self, store: "RDFStore") -> None:
        self._store = store
        self._version = -1
        self._counts: dict[tuple, int] = {}
        # Pooled server readers plan queries concurrently against one
        # store; the version check + figure cache must stay coherent.
        self._lock = threading.RLock()

    # ------------------------------------------------------------------
    # cache plumbing
    # ------------------------------------------------------------------

    def _sync(self) -> None:
        version = self._store.database.data_version
        if version != self._version:
            self._counts.clear()
            self._version = version

    def __len__(self) -> int:
        """Number of cached figures (test/introspection hook)."""
        with self._lock:
            return len(self._counts)

    def clear(self) -> None:
        """Drop every cached figure."""
        with self._lock:
            self._counts.clear()
            self._version = -1

    def _cached(self, key: tuple, sql: str, params: Sequence) -> int:
        with self._lock:
            self._sync()
            value = self._counts.get(key)
            if value is None:
                value = int(self._store.database.query_value(
                    sql, params, default=0))
                self._counts[key] = value
            return value

    # ------------------------------------------------------------------
    # figures
    # ------------------------------------------------------------------

    def dataset_size(self, model_ids: Sequence[int],
                     index_name: str | None = None) -> int:
        """Triples visible to a query over these models (+ inferred)."""
        models = tuple(sorted(model_ids))
        placeholders = ", ".join("?" for _ in models)
        total = self._cached(
            ("dataset", models),
            f'SELECT COUNT(*) FROM "{LINK_TABLE}" '
            f"WHERE model_id IN ({placeholders})", models)
        if index_name is not None:
            total += self._cached(
                ("inferred", index_name),
                f'SELECT COUNT(*) FROM "{INFERRED_TABLE}" '
                "WHERE index_name = ?", (index_name,))
        return total

    def constant_count(self, model_ids: Sequence[int], position: str,
                       value_id: int) -> int:
        """Dataset triples with ``value_id`` at ``position`` (s/p/o).

        Each position uses its access-path index; the object position
        counts the canonical object column (see module docstring).
        """
        column = _POSITION_COLUMNS[position]
        models = tuple(sorted(model_ids))
        placeholders = ", ".join("?" for _ in models)
        return self._cached(
            (position, models, value_id),
            f'SELECT COUNT(*) FROM "{LINK_TABLE}" '
            f"WHERE model_id IN ({placeholders}) AND {column} = ?",
            models + (value_id,))

    def estimate_rows(self, model_ids: Sequence[int],
                      constants: Mapping[str, int],
                      index_name: str | None = None
                      ) -> tuple[float, dict[str, int]]:
        """Estimated result rows for one triple pattern.

        :param constants: position (``s``/``p``/``o``) -> VALUE_ID of
            the pattern's constant components.
        :returns: ``(estimate, per_position_counts)``.  The estimate
            assumes the constants filter independently:
            ``total * prod(count_i / total)``.  A pattern with no
            constants estimates the full dataset.
        """
        total = self.dataset_size(model_ids, index_name)
        counts = {position: self.constant_count(model_ids, position,
                                                value_id)
                  for position, value_id in constants.items()}
        if total == 0:
            return 0.0, counts
        estimate = float(total)
        for count in counts.values():
            estimate *= count / total
        return estimate, counts

"""The SDO_RDF_INFERENCE package facade.

One object bundling the inference subprograms of the paper's section 6:
``CREATE_RULEBASE``, rule insertion, ``CREATE_RULES_INDEX``, and the
``SDO_RDF_MATCH`` table function — bound to one store, so application
code reads like the paper's Figure 8 PL/SQL block.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

from repro.inference.match import MatchRow, sdo_rdf_match
from repro.inference.rulebase import Rule, Rulebase, RulebaseManager
from repro.inference.rules_index import RulesIndex, RulesIndexManager
from repro.rdf.namespaces import AliasSet

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.store import RDFStore


class SDO_RDF_INFERENCE:
    """Inference package bound to one RDF store."""

    def __init__(self, store: "RDFStore") -> None:
        self._store = store
        # The store's shared manager: its in-memory closure states stay
        # warm across this facade, the write path, and the planner.
        self._indexes = store.rules_indexes

    @property
    def store(self) -> "RDFStore":
        return self._store

    @property
    def rulebases(self) -> RulebaseManager:
        return self._indexes.rulebases

    @property
    def indexes(self) -> RulesIndexManager:
        return self._indexes

    # ------------------------------------------------------------------
    # rulebases
    # ------------------------------------------------------------------

    def create_rulebase(self, rulebase_name: str) -> Rulebase:
        """``SDO_RDF_INFERENCE.CREATE_RULEBASE('intel_rb')``."""
        return self.rulebases.create_rulebase(rulebase_name)

    def drop_rulebase(self, rulebase_name: str) -> None:
        self.rulebases.drop_rulebase(rulebase_name)

    def insert_rule(self, rulebase_name: str, rule_name: str,
                    antecedents: str, filter: str | None,
                    consequents: str,
                    aliases: AliasSet | None = None) -> Rule:
        """The rule-table insert of Figure 8."""
        return self.rulebases.insert_rule(
            rulebase_name, rule_name, antecedents, filter, consequents,
            aliases)

    # ------------------------------------------------------------------
    # rules indexes
    # ------------------------------------------------------------------

    def create_rules_index(self, index_name: str,
                           models: Sequence[str],
                           rulebases: Sequence[str],
                           maintain: str = "manual") -> RulesIndex:
        """``SDO_RDF_INFERENCE.CREATE_RULES_INDEX(name, models, rbs)``.

        ``maintain`` selects the maintenance policy (``manual``,
        ``incremental``, or ``rebuild`` — see
        :meth:`repro.inference.rules_index.RulesIndexManager.create_rules_index`).
        """
        return self._indexes.create_rules_index(index_name, models,
                                                rulebases,
                                                maintain=maintain)

    def drop_rules_index(self, index_name: str) -> None:
        self._indexes.drop_rules_index(index_name)

    # ------------------------------------------------------------------
    # query
    # ------------------------------------------------------------------

    def match(self, query: str, models: Sequence[str],
              rulebases: Sequence[str] = (),
              aliases: AliasSet | None = None,
              filter: str | None = None) -> list[MatchRow]:
        """The ``SDO_RDF_MATCH`` table function."""
        return sdo_rdf_match(self._store, query, models,
                             rulebases=rulebases, aliases=aliases,
                             filter=filter)

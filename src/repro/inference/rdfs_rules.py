"""The Oracle-supplied RDFS rulebase.

"The RDFS rulebase is Oracle-supplied.  It implements the RDFS
entailment rules, described in W3C" (paper section 6.1, note).  The
rules below are the standard entailment patterns of the RDF Semantics
recommendation, expressed in the same pattern language as user rules so
one forward-chaining engine serves both.

The axiomatic rules rdfs4a/rdfs4b (everything is an ``rdfs:Resource``)
are available behind ``include_axiomatic=True`` but excluded by default:
they inflate every closure with one triple per node and are rarely
wanted — Oracle's implementation similarly omits unconditional axiomatic
triples from the rules index.
"""

from __future__ import annotations

from repro.inference.rulebase import Rule
from repro.rdf.namespaces import AliasSet

#: The reserved name of the built-in rulebase, as used in the paper:
#: ``SDO_RDF_RULEBASES('RDFS', 'intel_rb')``.
RDFS_RULEBASE_NAME = "RDFS"

_RULES: list[tuple[str, str, str]] = [
    # rdf1: every predicate is a property.
    ("rdf1",
     "(?u ?a ?y)",
     "(?a rdf:type rdf:Property)"),
    # rdfs2: domain.
    ("rdfs2",
     "(?a rdfs:domain ?x) (?u ?a ?y)",
     "(?u rdf:type ?x)"),
    # rdfs3: range.
    ("rdfs3",
     "(?a rdfs:range ?x) (?u ?a ?v)",
     "(?v rdf:type ?x)"),
    # rdfs5: subPropertyOf transitivity.
    ("rdfs5",
     "(?u rdfs:subPropertyOf ?v) (?v rdfs:subPropertyOf ?x)",
     "(?u rdfs:subPropertyOf ?x)"),
    # rdfs6: property reflexivity.
    ("rdfs6",
     "(?u rdf:type rdf:Property)",
     "(?u rdfs:subPropertyOf ?u)"),
    # rdfs7: subPropertyOf inheritance.
    ("rdfs7",
     "(?a rdfs:subPropertyOf ?b) (?u ?a ?y)",
     "(?u ?b ?y)"),
    # rdfs8: classes are subclasses of Resource.
    ("rdfs8",
     "(?u rdf:type rdfs:Class)",
     "(?u rdfs:subClassOf rdfs:Resource)"),
    # rdfs9: subClassOf inheritance.
    ("rdfs9",
     "(?u rdfs:subClassOf ?x) (?v rdf:type ?u)",
     "(?v rdf:type ?x)"),
    # rdfs10: class reflexivity.
    ("rdfs10",
     "(?u rdf:type rdfs:Class)",
     "(?u rdfs:subClassOf ?u)"),
    # rdfs11: subClassOf transitivity.
    ("rdfs11",
     "(?u rdfs:subClassOf ?v) (?v rdfs:subClassOf ?x)",
     "(?u rdfs:subClassOf ?x)"),
    # rdfs12: container membership properties.
    ("rdfs12",
     "(?u rdf:type rdfs:ContainerMembershipProperty)",
     "(?u rdfs:subPropertyOf rdfs:member)"),
    # rdfs13: datatypes are classes.
    ("rdfs13",
     "(?u rdf:type rdfs:Datatype)",
     "(?u rdfs:subClassOf rdfs:Literal)"),
]

_AXIOMATIC_RULES: list[tuple[str, str, str]] = [
    # rdfs4a / rdfs4b: everything is a resource.
    ("rdfs4a",
     "(?u ?a ?x)",
     "(?u rdf:type rdfs:Resource)"),
    ("rdfs4b",
     "(?u ?a ?v)",
     "(?v rdf:type rdfs:Resource)"),
]


def rdfs_rules(include_axiomatic: bool = False) -> list[Rule]:
    """The parsed RDFS entailment rules.

    rdfs3 and rdfs4b can derive triples whose subject would be a
    literal; the engine silently drops such malformed consequents (see
    :func:`repro.inference.rules_index.forward_closure`), matching the
    "no literal subjects" constraint of RDF abstract syntax.
    """
    aliases = AliasSet()
    source = _RULES + (_AXIOMATIC_RULES if include_axiomatic else [])
    return [Rule.parse(name, antecedents, None, consequents, aliases)
            for name, antecedents, consequents in source]

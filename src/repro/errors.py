"""Exception hierarchy for the repro RDF store.

Every error raised by the library derives from :class:`ReproError`, so
applications can catch one type at an API boundary.  The sub-hierarchy
mirrors the subsystems: term/syntax problems, storage problems, model
management problems, reification problems, and query/inference problems.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class TermError(ReproError, ValueError):
    """An RDF term is malformed (bad URI, bad literal, bad blank node)."""


class ParseError(ReproError, ValueError):
    """A serialized RDF document or query string could not be parsed.

    Carries optional position information for error reporting.
    """

    def __init__(self, message: str, line: int | None = None,
                 column: int | None = None) -> None:
        self.line = line
        self.column = column
        location = ""
        if line is not None:
            location = f" (line {line}" + (
                f", column {column})" if column is not None else ")")
        super().__init__(message + location)


class StorageError(ReproError):
    """A low-level database storage operation failed."""


class SchemaError(StorageError):
    """The central schema is missing or inconsistent."""


class ReadOnlyConnectionError(StorageError):
    """A write was attempted on a read-only (``mode=ro``) connection.

    Pooled server readers open read-only; mutations must go through
    the single-writer queue (:class:`repro.db.pool.WriterQueue`).
    """


class PoolTimeoutError(StorageError):
    """No pooled connection became available within the timeout.

    The serving layer maps this to HTTP 429 (backpressure) instead of
    letting requests queue without bound.
    """


class DeadlineExceededError(StorageError):
    """The request's deadline expired before the work completed.

    Raised wherever a deadline-carrying request waits or executes: an
    already-expired admission check, a pool acquire or writer-queue
    wait whose remaining budget ran out, or in-flight SQL aborted via
    ``sqlite3.Connection.interrupt()``.  The serving layer maps this
    to HTTP 504; the partial request trace is still filed in the
    slow-request log.
    """


class ReplicaError(StorageError):
    """The in-memory read replica was misconfigured.

    Raised for an unparseable ``REPRO_REPLICA`` setting, a
    non-positive byte cap, an unknown refresh mode, or enabling the
    replica on an engine that cannot host it (the sharded store).
    Never raised on the query path: an unusable replica there simply
    falls back to SQL.
    """


class WriterShutdownError(StorageError):
    """The writer queue shut down before this job could run.

    Set on the futures of jobs still queued when
    :meth:`repro.db.pool.WriterQueue.stop` hit its hard drain
    deadline (a stalled job) or was asked to fail fast.
    """


class ServerError(ReproError):
    """An HTTP request to the serving layer failed.

    Raised by :class:`repro.server.client.ReproClient`; carries the
    HTTP ``status`` and, for 429 responses, the server's suggested
    ``retry_after`` delay in seconds.
    """

    def __init__(self, message: str, status: int = 0,
                 retry_after: float | None = None) -> None:
        self.status = status
        self.retry_after = retry_after
        super().__init__(message)


class ModelError(ReproError):
    """An RDF model (graph) operation failed."""


class ModelNotFoundError(ModelError, LookupError):
    """The named RDF model does not exist in the database."""

    def __init__(self, model_name: str) -> None:
        self.model_name = model_name
        super().__init__(f"RDF model {model_name!r} does not exist")


class ModelExistsError(ModelError):
    """An RDF model with this name already exists."""

    def __init__(self, model_name: str) -> None:
        self.model_name = model_name
        super().__init__(f"RDF model {model_name!r} already exists")


class TripleNotFoundError(ReproError, LookupError):
    """A triple referenced by ID does not exist in rdf_link$."""

    def __init__(self, link_id: int) -> None:
        self.link_id = link_id
        super().__init__(f"no triple with LINK_ID={link_id} in rdf_link$")


class ValueNotFoundError(ReproError, LookupError):
    """A text value referenced by ID does not exist in rdf_value$."""

    def __init__(self, value_id: int) -> None:
        self.value_id = value_id
        super().__init__(f"no value with VALUE_ID={value_id} in rdf_value$")


class ReificationError(ReproError):
    """A reification operation failed (bad DBUri, incomplete quad, ...)."""


class DBUriError(ReificationError, ValueError):
    """A DBUri string is malformed or does not resolve to a row."""


class IncompleteQuadError(ReificationError):
    """A reification quad is missing one or more of its four statements."""

    def __init__(self, resource: str, missing: list[str]) -> None:
        self.resource = resource
        self.missing = list(missing)
        super().__init__(
            f"incomplete reification quad for {resource!r}: "
            f"missing {', '.join(sorted(self.missing))}")


class QueryError(ReproError):
    """An SDO_RDF_MATCH query is malformed or cannot be evaluated."""


class RulebaseError(ReproError):
    """A rulebase operation failed (unknown rulebase, bad rule syntax)."""


class RulebaseNotFoundError(RulebaseError, LookupError):
    """The named rulebase does not exist."""

    def __init__(self, rulebase_name: str) -> None:
        self.rulebase_name = rulebase_name
        super().__init__(f"rulebase {rulebase_name!r} does not exist")


class RulesIndexError(RulebaseError):
    """A rules-index operation failed (unknown index, stale index)."""


class StaleRulesIndexError(RulesIndexError):
    """A query needs a rules index whose source models changed since it
    was built (maintenance policy ``manual``).

    Run ``RulesIndexManager.rebuild``/``apply_delta`` (or the CLI's
    ``repro rules-index DB maintain``) to refresh it, or create the
    index with ``maintain="incremental"`` so writes keep it current.
    """

    def __init__(self, index_name: str) -> None:
        self.index_name = index_name
        super().__init__(
            f"rules index {index_name!r} is stale: its source models "
            "changed since it was built; rebuild or maintain it (or "
            "create it with maintain='incremental')")


class NetworkError(ReproError):
    """An NDM logical-network operation failed."""


class NetworkNotFoundError(NetworkError, LookupError):
    """The named logical network does not exist in the NDM catalog."""

    def __init__(self, network_name: str) -> None:
        self.network_name = network_name
        super().__init__(f"NDM network {network_name!r} does not exist")

"""Seeded chaos storms against the serving layer.

A storm hammers a running :class:`~repro.server.app.ReproServer` from
several client threads while a :class:`~repro.db.faults.FaultInjector`
fires a **randomized-but-seeded** fault schedule into the request
path: slow SQL mid-query, connections dropped mid-response, writer
stalls, pool exhaustion.  The same ``(fault class, seed)`` pair
replays the identical schedule, so a storm that finds a bug *is* the
reproducer.

Under every schedule the storm asserts the serving layer's five
resilience invariants:

1. **No torn reads** — writes land in atomic batches; every subject a
   ``/match`` observes carries either its whole batch or nothing.
2. **Monotonic versions** — the ``data_version``/``write_version`` a
   client observes never goes backward (replayed idempotent outcomes
   excepted: they report the version their original commit had).
3. **No duplicate writes** — every logical write is retried under one
   idempotency key until it succeeds, and the final triple count must
   equal exactly one application of each; deliberate double-sends must
   replay, not re-apply.
4. **A request id on every response** — success or error, every HTTP
   response the server manages to send carries ``X-Request-Id``
   (responses cut off mid-flight by a drop fault never arrive and are
   exempt).
5. **No stale cache serves** — when the server runs a result cache, a
   ``/match`` answered from it (``cached: true``) never carries a
   ``data_version`` older than any ``write_version`` a completed write
   had already reported before the read was issued.  The cache may
   *miss* more than strictly necessary; it may never serve a snapshot
   from before an acknowledged write.

The driver is shared by the storm tests (``tests/server/test_chaos.py``),
the ``repro chaos`` CLI command, and the resilience benchmark.
"""

from __future__ import annotations

import http.client
import json
import random
import threading
import time
from dataclasses import dataclass, field
from typing import Any

from repro.db.faults import (
    DROP,
    LOCK,
    POINT_POOL_ACQUIRE,
    POINT_RESPONSE,
    POINT_WRITER_JOB,
    SLOW,
    FaultInjector,
)
from repro.errors import ReproError, ServerError
from repro.server.client import ReproClient

#: Triples per logical write; the torn-read invariant's atom.
BATCH = 3

#: Everything a chaos model's triples hang off.
_PREFIX = "urn:chaos:"

#: Fault classes a storm can run under -> human description.
FAULT_CLASSES: dict[str, str] = {
    "clean": "no faults (the control run)",
    "slow-sql": "probabilistic sleeps before reader SELECTs",
    "drop-response": "connections torn down mid-response body",
    "writer-stall": "probabilistic stalls before writer jobs",
    "pool-exhaust": "probabilistic lease denials at pool.acquire",
}

#: Effectively-unbounded fire count for storm faults.
_UNBOUNDED = 10 ** 9

#: "The connection died": both the socket layer's errors and
#: http.client's (IncompleteRead from a drop fault is an
#: HTTPException, not an OSError).
_NET_ERRORS = (OSError, http.client.HTTPException)


def arm_faults(injector: FaultInjector, fault_class: str, *,
               chance: float = 0.1, delay: float = 0.05) -> None:
    """Arm ``injector`` with one storm fault class' schedule.

    ``chance`` is per matching execution, drawn from the injector's
    seeded RNG; ``delay`` scales the slow/stall sleeps.
    """
    if fault_class == "clean":
        return
    if fault_class == "slow-sql":
        injector.inject(SLOW, match="SELECT", site="statement",
                        times=_UNBOUNDED, chance=chance, delay=delay)
    elif fault_class == "drop-response":
        injector.inject(DROP, site=POINT_RESPONSE,
                        times=_UNBOUNDED, chance=chance)
    elif fault_class == "writer-stall":
        injector.inject(SLOW, site=POINT_WRITER_JOB,
                        times=_UNBOUNDED, chance=chance,
                        delay=delay * 2)
    elif fault_class == "pool-exhaust":
        injector.inject(LOCK, site=POINT_POOL_ACQUIRE,
                        times=_UNBOUNDED, chance=chance)
    else:
        raise ValueError(
            f"unknown fault class {fault_class!r}; expected one of "
            f"{', '.join(FAULT_CLASSES)}")


@dataclass
class ChaosReport:
    """What one storm did and whether the invariants held."""

    fault_class: str
    seed: int
    requests: int = 0
    by_status: dict[int, int] = field(default_factory=dict)
    retries: int = 0
    replays: int = 0
    reconciled: int = 0
    cache_hits: int = 0
    writes_applied: int = 0
    final_triples: int = -1
    expected_triples: int = -1
    faults_fired: dict[str, int] = field(default_factory=dict)
    violations: list[str] = field(default_factory=list)
    duration: float = 0.0

    @property
    def ok(self) -> bool:
        return not self.violations

    def as_dict(self) -> dict[str, Any]:
        return {
            "fault_class": self.fault_class,
            "seed": self.seed,
            "ok": self.ok,
            "requests": self.requests,
            "by_status": {str(k): v
                          for k, v in sorted(self.by_status.items())},
            "retries": self.retries,
            "idempotent_replays": self.replays,
            "reconciled_writes": self.reconciled,
            "cache_hits": self.cache_hits,
            "writes_applied": self.writes_applied,
            "final_triples": self.final_triples,
            "expected_triples": self.expected_triples,
            "faults_fired": dict(self.faults_fired),
            "violations": list(self.violations),
            "duration_seconds": round(self.duration, 3),
        }

    def render(self) -> str:
        head = "OK  " if self.ok else "FAIL"
        lines = [
            f"{head} chaos[{self.fault_class}] seed={self.seed} "
            f"requests={self.requests} retries={self.retries} "
            f"replays={self.replays} "
            f"cache_hits={self.cache_hits} "
            f"faults={self.faults_fired.get('fired', 0)} "
            f"triples={self.final_triples}/{self.expected_triples} "
            f"({self.duration:.2f}s)",
        ]
        for violation in self.violations:
            lines.append(f"  VIOLATION: {violation}")
        return "\n".join(lines)


class _StormState:
    """Shared bookkeeping, one lock."""

    def __init__(self) -> None:
        self.lock = threading.Lock()
        self.by_status: dict[int, int] = {}
        self.retries = 0
        self.replays = 0
        self.requests = 0
        self.writes_applied = 0
        self.reconciled = 0
        self.cache_hits = 0
        #: Highest write_version any completed write has reported.
        #: The cache-coherence floor: a later cache-served read must
        #: carry a data_version at least this high.
        self.max_write_version = -1
        self.violations: list[str] = []
        #: (worker, op) keys whose write never got a success answer.
        self.unresolved: list[tuple[str, str, list[list[str]]]] = []

    def count(self, status: int) -> None:
        with self.lock:
            self.requests += 1
            self.by_status[status] = self.by_status.get(status, 0) + 1

    def violate(self, message: str) -> None:
        with self.lock:
            if len(self.violations) < 50:
                self.violations.append(message)

    def observe_write_version(self, outcome: dict) -> None:
        """Raise the coherence floor from a completed write's answer.

        Replayed outcomes report their *original* commit's version —
        taking the max keeps them from lowering the floor.
        """
        version = outcome.get("write_version")
        if isinstance(version, (int, float)):
            with self.lock:
                if version > self.max_write_version:
                    self.max_write_version = int(version)


def _batch_triples(worker: int, op: int) -> list[list[str]]:
    subject = f"<{_PREFIX}w{worker}:op{op}>"
    return [[subject, f"<{_PREFIX}p{i}>", f'"v{worker}.{op}.{i}"']
            for i in range(BATCH)]


def _check_request_id(client: ReproClient,
                      state: _StormState, where: str) -> None:
    if client.last_request_id is None:
        state.violate(f"response without X-Request-Id at {where}")


def run_storm(host: str, port: int, *,
              fault_class: str = "clean",
              seed: int = 0,
              requests: int = 200,
              workers: int = 4,
              model: str = "chaos",
              faults: FaultInjector | None = None,
              read_deadline: float | None = None,
              timeout: float = 30.0) -> ChaosReport:
    """Run one seeded storm against a serving layer at ``host:port``.

    The server must already be armed with the fault schedule (use
    :func:`arm_faults` on the injector passed as
    ``ServerConfig(faults=...)``); pass the same injector here so the
    report can include its fired counters.  ``requests`` is the total
    operation count across ``workers`` threads; roughly one in four
    operations is a write.
    """
    report = ChaosReport(fault_class=fault_class, seed=seed)
    state = _StormState()
    started = time.monotonic()

    # Bootstrap: the model must exist before readers storm it.  The
    # bootstrap write is a batch like any other, so the torn-read
    # arithmetic stays uniform.
    with ReproClient(host, port, timeout=timeout) as boot:
        state.observe_write_version(
            boot.insert(model, _batch_triples(-1, 0), create=True))
    state.writes_applied += 1

    per_worker = max(1, requests // max(1, workers))

    def write_once(client: ReproClient, rng: random.Random,
                   worker: int, op: int) -> None:
        triples = _batch_triples(worker, op)
        key = f"chaos-{seed}-w{worker}-op{op}"
        outcome = _retry_write(client, state, model, triples, key)
        if outcome is None:
            with state.lock:
                state.unresolved.append((key, model, triples))
            return
        with state.lock:
            state.writes_applied += 1
        if rng.random() < 0.25:
            # Deliberate duplicate: the same key again MUST replay the
            # recorded outcome, not apply a second batch.
            try:
                client.last_request_id = None
                replay = client.insert(model, triples,
                                       idempotency_key=key)
                state.count(200)
                _check_request_id(client, state, "duplicate insert")
            except (ServerError, ReproError, *_NET_ERRORS):
                return  # shed/unlucky; the invariant is checked below
            if not replay.get("idempotent_replay"):
                state.violate(
                    f"duplicate write applied twice for key {key}: "
                    f"{replay!r}")
            with state.lock:
                state.replays += 1

    def read_once(client: ReproClient, worker: int,
                  last_version: list[int]) -> None:
        # The coherence floor is captured BEFORE the read goes out:
        # every write counted into it was acknowledged first, so any
        # snapshot the server answers from — cached or not — must be
        # at least this new.  Writes landing DURING the read may be
        # newer than the floor; that is fine, the floor only ratchets.
        with state.lock:
            floor = state.max_write_version
        try:
            client.last_request_id = None
            result = client.match(f"(?s <{_PREFIX}p0> ?o)", model,
                                  deadline=read_deadline)
            state.count(200)
            _check_request_id(client, state, "match")
        except ServerError as exc:
            state.count(exc.status or 0)
            _check_request_id(client, state,
                              f"match error {exc.status}")
            if exc.status in (429, 504, 503):
                return  # by-design shedding under faults
            state.violate(
                f"unexpected /match failure HTTP {exc.status}: {exc}")
            return
        except _NET_ERRORS:
            # Both the response and its resend were dropped.
            with state.lock:
                state.retries += 1
            return
        version = result.get("data_version", -1)
        if version < last_version[0]:
            state.violate(
                f"data_version went backward on worker {worker}: "
                f"{last_version[0]} -> {version}")
        last_version[0] = max(last_version[0], version)
        if result.get("cached"):
            with state.lock:
                state.cache_hits += 1
            if version < floor:
                state.violate(
                    f"stale cache serve on worker {worker}: cached "
                    f"/match carried data_version {version} but a "
                    f"write at version {floor} was already "
                    "acknowledged before the read was issued")

    def _retry_write(client: ReproClient, state: _StormState,
                     model_: str, triples: list[list[str]],
                     key: str, attempts: int = 8) -> dict | None:
        for attempt in range(attempts):
            try:
                client.last_request_id = None
                outcome = client.insert(model_, triples,
                                        idempotency_key=key)
                state.count(200)
                _check_request_id(client, state, "insert")
                state.observe_write_version(outcome)
                if outcome.get("idempotent_replay"):
                    with state.lock:
                        state.replays += 1
                return outcome
            except ServerError as exc:
                state.count(exc.status or 0)
                _check_request_id(client, state,
                                  f"insert error {exc.status}")
                if exc.status not in (429, 503, 504):
                    state.violate(
                        f"unexpected /insert failure HTTP "
                        f"{exc.status}: {exc}")
                    return None
            except _NET_ERRORS:
                pass  # dropped twice in a row; same key retries below
            with state.lock:
                state.retries += 1
            time.sleep(min(0.05 * (attempt + 1), 0.4))
        return None

    def worker_loop(worker: int) -> None:
        rng = random.Random((seed << 8) ^ worker)
        last_version = [-1]
        with ReproClient(host, port, timeout=timeout) as client:
            for op in range(per_worker):
                if rng.random() < 0.25:
                    write_once(client, rng, worker, op)
                else:
                    read_once(client, worker, last_version)

    threads = [threading.Thread(target=worker_loop, args=(index,),
                                name=f"chaos-{index}")
               for index in range(workers)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()

    # The storm is over: capture the fired counters, then quiesce the
    # schedule — reconciliation and the final sweep must observe the
    # database, not keep fighting the fault injector.
    if faults is not None:
        report.faults_fired = faults.stats()
        if fault_class != "clean" \
                and report.faults_fired.get("fired", 0) == 0:
            state.violate(
                f"fault schedule {fault_class!r} never fired — the "
                "storm exercised nothing")
        faults.reset()

    # Reconciliation: a write whose every attempt failed may still
    # have committed (e.g. a 504 with the job already running).  Its
    # idempotency key settles the question — one more send applies it
    # exactly once or replays the earlier commit; either way it now
    # counts exactly once.
    with ReproClient(host, port, timeout=timeout) as tail:
        for key, model_, triples in state.unresolved:
            outcome = _retry_write(tail, state, model_, triples, key,
                                   attempts=12)
            if outcome is None:
                state.violate(
                    f"write {key} never reconciled (server kept "
                    "failing it)")
            else:
                with state.lock:
                    state.writes_applied += 1
                    state.reconciled += 1

        _drain_writer(tail)
        _verify_final(tail, state, model, report)

    report.requests = state.requests
    report.by_status = dict(state.by_status)
    report.retries = state.retries
    report.replays = state.replays
    report.reconciled = state.reconciled
    report.cache_hits = state.cache_hits
    report.writes_applied = state.writes_applied
    report.violations = list(state.violations)
    report.duration = time.monotonic() - started
    return report


def _drain_writer(client: ReproClient, timeout: float = 10.0) -> None:
    """Wait until the writer queue is empty (bounded)."""
    give_up = time.monotonic() + timeout
    while time.monotonic() < give_up:
        try:
            stats = client.stats()
        except (ServerError, OSError):
            time.sleep(0.1)
            continue
        if stats.get("writer", {}).get("depth", 0) == 0:
            return
        time.sleep(0.05)


def _verify_final(client: ReproClient, state: _StormState,
                  model: str, report: ChaosReport) -> None:
    """End-of-storm sweep: batch atomicity and exact write counts."""
    try:
        result = client.match("(?s ?p ?o)", model)
    except (ServerError, OSError) as exc:
        state.violate(f"final verification sweep failed: {exc}")
        return
    rows = result.get("rows", [])
    report.final_triples = len(rows)
    report.expected_triples = state.writes_applied * BATCH
    if report.final_triples != report.expected_triples:
        state.violate(
            f"duplicate or lost writes: {report.final_triples} "
            f"triples in the model, expected "
            f"{report.expected_triples} "
            f"({state.writes_applied} batches x {BATCH})")
    per_subject: dict[str, int] = {}
    for row in rows:
        subject = str(row.get("s"))
        per_subject[subject] = per_subject.get(subject, 0) + 1
    torn = {s: n for s, n in per_subject.items() if n != BATCH}
    if torn:
        state.violate(
            f"torn batches (subject -> triple count): "
            f"{json.dumps(dict(sorted(torn.items())[:5]))}")

"""The concurrent serving layer: HTTP access to SDO_RDF_MATCH.

Maps SQLite's WAL concurrency model (*N readers + 1 writer*) onto an
HTTP API:

* :mod:`repro.server.app` — :class:`ReproServer`, the
  ``ThreadingHTTPServer`` front end over a read-connection pool and
  the single-writer queue, with admission control (429 backpressure)
  and graceful drain;
* :mod:`repro.server.state` — the ``rdf_serve_state$`` write-version
  row giving every ``/match`` response a monotonic, cross-reader
  snapshot version;
* :mod:`repro.server.client` — :class:`ReproClient`, a stdlib
  keep-alive client for the JSON protocol.

See ``docs/server.md`` for the protocol and operational guidance.
"""

from repro.server.app import ReproServer, ServerConfig
from repro.server.client import ReproClient
from repro.server.state import (
    SERVE_STATE_TABLE,
    bump_write_version,
    ensure_serve_state,
    read_write_version,
)

__all__ = [
    "ReproClient",
    "ReproServer",
    "SERVE_STATE_TABLE",
    "ServerConfig",
    "bump_write_version",
    "ensure_serve_state",
    "read_write_version",
]

"""A thin stdlib client for the serving layer.

:class:`ReproClient` speaks the JSON protocol of
:mod:`repro.server.app` over one keep-alive ``http.client``
connection.  It is deliberately small: requests in, parsed JSON out,
HTTP errors raised as :class:`~repro.errors.ServerError` (with
``status`` and, on 429, the server's suggested ``retry_after``).

One client wraps **one** connection and is not thread-safe — create a
client per thread (the benchmark and the e2e tests do exactly that).
"""

from __future__ import annotations

import http.client
import json
import time
import urllib.parse
from typing import Any, Sequence

from repro.errors import ServerError
from repro.obs.reqctx import REQUEST_ID_HEADER


class ReproClient:
    """Client for one repro server.

    :param host: server host.
    :param port: server port.
    :param timeout: socket timeout per request, seconds.

    Every response's ``X-Request-Id`` is kept on
    :attr:`last_request_id`, so a caller that just saw a slow answer
    can pull its trace with :meth:`debug_trace` — no server-side
    searching required.
    """

    def __init__(self, host: str, port: int,
                 timeout: float = 30.0) -> None:
        self._host = host
        self._port = port
        self._timeout = timeout
        self._conn: http.client.HTTPConnection | None = None
        #: The id the server echoed on the most recent response.
        self.last_request_id: str | None = None

    # ------------------------------------------------------------------
    # transport
    # ------------------------------------------------------------------

    def _connection(self) -> http.client.HTTPConnection:
        if self._conn is None:
            self._conn = http.client.HTTPConnection(
                self._host, self._port, timeout=self._timeout)
        return self._conn

    def close(self) -> None:
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    def __enter__(self) -> "ReproClient":
        return self

    def __exit__(self, *_exc_info: object) -> None:
        self.close()

    def _request(self, method: str, path: str,
                 payload: dict | None = None,
                 request_id: str | None = None) -> Any:
        body = None
        headers = {}
        if payload is not None:
            body = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        if request_id is not None:
            headers[REQUEST_ID_HEADER] = request_id
        try:
            response = self._send(method, path, body, headers)
        except (http.client.HTTPException, ConnectionError, OSError):
            # A stale keep-alive connection (server idled us out, or
            # restarted): reconnect once and retry.
            self.close()
            response = self._send(method, path, body, headers)
        data = response.read()
        echoed = response.getheader(REQUEST_ID_HEADER)
        if echoed is not None:
            self.last_request_id = echoed
        if response.status == 429:
            retry_after = None
            try:
                retry_after = float(
                    json.loads(data).get("retry_after_seconds"))
            except (ValueError, TypeError, AttributeError):
                header = response.getheader("Retry-After")
                if header is not None:
                    retry_after = float(header)
            raise ServerError(_message(data, response.status),
                              status=429, retry_after=retry_after)
        if response.status >= 400:
            raise ServerError(_message(data, response.status),
                              status=response.status)
        content_type = response.getheader("Content-Type", "")
        if "json" in content_type:
            return json.loads(data)
        return data.decode("utf-8")

    def _send(self, method: str, path: str, body: bytes | None,
              headers: dict) -> http.client.HTTPResponse:
        conn = self._connection()
        conn.request(method, path, body=body, headers=headers)
        return conn.getresponse()

    # ------------------------------------------------------------------
    # the API
    # ------------------------------------------------------------------

    def match(self, query: str, models: Sequence[str] | str,
              rulebases: Sequence[str] = (),
              aliases: dict[str, str] | None = None,
              filter: str | None = None,
              order_by: str | None = None,
              limit: int | None = None,
              request_id: str | None = None) -> dict:
        """POST /match — returns ``{rows, count, data_version}``."""
        payload: dict[str, Any] = {
            "query": query,
            "models": [models] if isinstance(models, str) else list(models),
        }
        if rulebases:
            payload["rulebases"] = list(rulebases)
        if aliases:
            payload["aliases"] = dict(aliases)
        if filter is not None:
            payload["filter"] = filter
        if order_by is not None:
            payload["order_by"] = order_by
        if limit is not None:
            payload["limit"] = limit
        return self._request("POST", "/match", payload,
                             request_id=request_id)

    def match_retrying(self, *args: Any, max_attempts: int = 8,
                       **kwargs: Any) -> dict:
        """Like :meth:`match`, sleeping out 429s up to ``max_attempts``."""
        for attempt in range(1, max_attempts + 1):
            try:
                return self.match(*args, **kwargs)
            except ServerError as exc:
                if exc.status != 429 or attempt == max_attempts:
                    raise
                time.sleep(exc.retry_after or 0.05)
        raise AssertionError("unreachable")  # pragma: no cover

    def insert(self, model: str,
               triples: Sequence[Sequence[str]],
               create: bool = False,
               request_id: str | None = None) -> dict:
        """POST /insert — returns ``{created, count, write_version}``."""
        return self._request("POST", "/insert", {
            "model": model,
            "triples": [list(triple) for triple in triples],
            "create": create,
        }, request_id=request_id)

    def delete(self, model: str, subject: str, predicate: str,
               obj: str, force: bool = False,
               request_id: str | None = None) -> dict:
        """POST /delete — returns ``{removed, write_version}``."""
        return self._request("POST", "/delete", {
            "model": model,
            "triple": [subject, predicate, obj],
            "force": force,
        }, request_id=request_id)

    def stats(self) -> dict:
        """GET /stats."""
        return self._request("GET", "/stats")

    def debug_slow(self, limit: int | None = None) -> dict:
        """GET /debug/slow — the slow-request log."""
        path = "/debug/slow"
        if limit is not None:
            path += f"?limit={int(limit)}"
        return self._request("GET", path)

    def debug_trace(self, request_id: str,
                    chrome: bool = False) -> Any:
        """GET /debug/trace/<id> — one retained request trace.

        ``chrome=True`` asks for the Chrome trace-event JSON array.
        """
        path = "/debug/trace/" + urllib.parse.quote(request_id, safe="")
        if chrome:
            path += "?format=chrome"
        return self._request("GET", path)

    def health(self) -> dict:
        """GET /healthz (raises :class:`ServerError` when unhealthy)."""
        return self._request("GET", "/healthz")

    def metrics_text(self) -> str:
        """GET /metrics — the Prometheus exposition text."""
        return self._request("GET", "/metrics")


def _message(data: bytes, status: int) -> str:
    detail: object = repr(data[:200])
    try:
        detail = json.loads(data).get("error", detail)
    except ValueError:
        pass
    return f"HTTP {status}: {detail}"

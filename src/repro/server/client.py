"""A thin stdlib client for the serving layer.

:class:`ReproClient` speaks the JSON protocol of
:mod:`repro.server.app` over one keep-alive ``http.client``
connection.  It is deliberately small: requests in, parsed JSON out,
HTTP errors raised as :class:`~repro.errors.ServerError` (with
``status`` and, on 429, the server's suggested ``retry_after``).

The client carries the serving layer's resilience contract:

* a **deadline** (client-wide or per call, seconds) is sent as
  ``X-Deadline-Ms`` so the server can shed, bound its waits, and abort
  SQL when the budget runs out (HTTP 504);
* ``insert``/``delete`` **auto-mint an idempotency key** per logical
  write, so the transparent reconnect-and-resend retry below is
  exactly-once: a resend after a dropped connection replays the
  recorded outcome instead of applying the write twice;
* responses carrying ``Connection: close`` (shed/expired requests
  answered before the body was read, drains) tear down the cached
  connection immediately — no keep-alive desync on the next request.

One client wraps **one** connection and is not thread-safe — create a
client per thread (the benchmark and the e2e tests do exactly that).
"""

from __future__ import annotations

import http.client
import json
import time
import urllib.parse
import uuid
from typing import Any, Sequence

from repro.errors import ServerError
from repro.obs.reqctx import (
    DEADLINE_HEADER,
    IDEMPOTENCY_KEY_HEADER,
    PRIORITY_HEADER,
    REQUEST_ID_HEADER,
)


class ReproClient:
    """Client for one repro server.

    :param host: server host.
    :param port: server port.
    :param timeout: socket timeout per request, seconds.
    :param deadline: default per-request time budget, seconds — sent
        as ``X-Deadline-Ms`` on every request (per-call ``deadline=``
        overrides).  ``None`` sends no budget.
    :param priority: default shedding priority 0-9 (``X-Priority``);
        ``None`` sends none (the server assumes 5).

    Every response's ``X-Request-Id`` is kept on
    :attr:`last_request_id`, so a caller that just saw a slow answer
    can pull its trace with :meth:`debug_trace` — no server-side
    searching required.
    """

    def __init__(self, host: str, port: int,
                 timeout: float = 30.0,
                 deadline: float | None = None,
                 priority: int | None = None) -> None:
        self._host = host
        self._port = port
        self._timeout = timeout
        self._deadline = deadline
        self._priority = priority
        self._conn: http.client.HTTPConnection | None = None
        #: The id the server echoed on the most recent response.
        self.last_request_id: str | None = None

    # ------------------------------------------------------------------
    # transport
    # ------------------------------------------------------------------

    def _connection(self) -> http.client.HTTPConnection:
        if self._conn is None:
            self._conn = http.client.HTTPConnection(
                self._host, self._port, timeout=self._timeout)
        return self._conn

    def close(self) -> None:
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    def __enter__(self) -> "ReproClient":
        return self

    def __exit__(self, *_exc_info: object) -> None:
        self.close()

    def _request(self, method: str, path: str,
                 payload: dict | None = None,
                 request_id: str | None = None,
                 deadline: float | None = None,
                 priority: int | None = None,
                 idempotency_key: str | None = None,
                 idempotent: bool = False) -> Any:
        body = None
        headers = {}
        if payload is not None:
            body = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        if request_id is not None:
            headers[REQUEST_ID_HEADER] = request_id
        budget = deadline if deadline is not None else self._deadline
        if budget is not None:
            headers[DEADLINE_HEADER] = f"{budget * 1000:.0f}"
        shed_priority = priority if priority is not None \
            else self._priority
        if shed_priority is not None:
            headers[PRIORITY_HEADER] = str(shed_priority)
        if idempotency_key is not None:
            headers[IDEMPOTENCY_KEY_HEADER] = idempotency_key
        resend_safe = (method == "GET" or idempotent
                       or idempotency_key is not None)
        try:
            response = self._send(method, path, body, headers)
        except (http.client.HTTPException, ConnectionError, OSError):
            # A stale keep-alive connection (server idled us out, or
            # restarted): the request never reached a handler, so a
            # reconnect-and-resend is always safe.
            self.close()
            response = self._send(method, path, body, headers)
        try:
            data = response.read()
        except (http.client.HTTPException, ConnectionError, OSError):
            # The connection died mid-response (the chaos harness's
            # drop fault does exactly this) — the handler DID run.
            # Resending is only safe when a retry cannot apply the
            # work twice: reads, and writes under an idempotency key
            # (the server replays the recorded outcome).
            self.close()
            if not resend_safe:
                raise
            response = self._send(method, path, body, headers)
            data = response.read()
        echoed = response.getheader(REQUEST_ID_HEADER)
        if echoed is not None:
            self.last_request_id = echoed
        if response.will_close:
            # The server asked for teardown (pre-body rejection,
            # drain): reusing the socket would desync framing.
            self.close()
        if response.status == 429:
            retry_after = None
            header = response.getheader("Retry-After")
            if header is not None:
                try:
                    retry_after = float(header)
                except ValueError:
                    retry_after = None
            if retry_after is None:
                try:
                    retry_after = float(
                        json.loads(data).get("retry_after_seconds"))
                except (ValueError, TypeError, AttributeError):
                    pass
            raise ServerError(_message(data, response.status),
                              status=429, retry_after=retry_after)
        if response.status >= 400:
            raise ServerError(_message(data, response.status),
                              status=response.status)
        content_type = response.getheader("Content-Type", "")
        if "json" in content_type:
            return json.loads(data)
        return data.decode("utf-8")

    def _send(self, method: str, path: str, body: bytes | None,
              headers: dict) -> http.client.HTTPResponse:
        conn = self._connection()
        conn.request(method, path, body=body, headers=headers)
        return conn.getresponse()

    # ------------------------------------------------------------------
    # the API
    # ------------------------------------------------------------------

    def match(self, query: str, models: Sequence[str] | str,
              rulebases: Sequence[str] = (),
              aliases: dict[str, str] | None = None,
              filter: str | None = None,
              order_by: str | None = None,
              limit: int | None = None,
              request_id: str | None = None,
              deadline: float | None = None,
              priority: int | None = None) -> dict:
        """POST /match — returns ``{rows, count, data_version}``."""
        payload: dict[str, Any] = {
            "query": query,
            "models": [models] if isinstance(models, str) else list(models),
        }
        if rulebases:
            payload["rulebases"] = list(rulebases)
        if aliases:
            payload["aliases"] = dict(aliases)
        if filter is not None:
            payload["filter"] = filter
        if order_by is not None:
            payload["order_by"] = order_by
        if limit is not None:
            payload["limit"] = limit
        return self._request("POST", "/match", payload,
                             request_id=request_id, deadline=deadline,
                             priority=priority, idempotent=True)

    def match_batch(self, queries: Sequence[dict],
                    request_id: str | None = None,
                    deadline: float | None = None,
                    priority: int | None = None,
                    idempotency_key: str | None = None) -> dict:
        """POST /match/batch — N queries, one request, one snapshot.

        Each entry of ``queries`` is a ``/match`` body: ``{"query":
        ..., "models": [...], "filter"?: ..., "order_by"?: ...,
        "limit"?: ...}``.  Returns ``{results, count, errors,
        data_version}`` where every successful sub-result shares the
        one ``data_version`` and a failed sub-query answers its own
        ``{error, type}`` object without failing its siblings.  The
        deadline and any idempotency key apply batch-wide (the batch
        is read-only, so resends are always safe).
        """
        payload = {"queries": [dict(entry) for entry in queries]}
        return self._request("POST", "/match/batch", payload,
                             request_id=request_id, deadline=deadline,
                             priority=priority,
                             idempotency_key=idempotency_key,
                             idempotent=True)

    def match_retrying(self, *args: Any, max_attempts: int = 8,
                       max_wait: float | None = None,
                       **kwargs: Any) -> dict:
        """Like :meth:`match`, sleeping out 429s up to ``max_attempts``.

        Each backoff honors the server's ``Retry-After`` (parsed onto
        ``ServerError.retry_after``).  The total retry wall-clock is
        capped by ``max_wait`` — defaulting to the deadline budget in
        effect, so a caller that asked for a 2-second deadline cannot
        spend 8 x Retry-After seconds retrying past it; when neither
        is set, only ``max_attempts`` bounds the loop.
        """
        if max_wait is None:
            max_wait = kwargs.get("deadline")
            if max_wait is None:
                max_wait = self._deadline
        give_up_at = (None if max_wait is None
                      else time.monotonic() + max_wait)
        for attempt in range(1, max_attempts + 1):
            try:
                return self.match(*args, **kwargs)
            except ServerError as exc:
                if exc.status != 429 or attempt == max_attempts:
                    raise
                pause = (exc.retry_after
                         if exc.retry_after is not None else 0.05)
                if (give_up_at is not None
                        and time.monotonic() + pause >= give_up_at):
                    raise
                time.sleep(pause)
        raise AssertionError("unreachable")  # pragma: no cover

    def insert(self, model: str,
               triples: Sequence[Sequence[str]],
               create: bool = False,
               request_id: str | None = None,
               deadline: float | None = None,
               priority: int | None = None,
               idempotency_key: str | None = None) -> dict:
        """POST /insert — returns ``{created, count, write_version}``.

        An idempotency key is minted per call when none is given, so
        the transport's reconnect-and-resend retry (and any caller
        retry reusing the key) applies the write exactly once.
        """
        if idempotency_key is None:
            idempotency_key = _mint_key()
        return self._request("POST", "/insert", {
            "model": model,
            "triples": [list(triple) for triple in triples],
            "create": create,
        }, request_id=request_id, deadline=deadline,
            priority=priority, idempotency_key=idempotency_key)

    def delete(self, model: str, subject: str, predicate: str,
               obj: str, force: bool = False,
               request_id: str | None = None,
               deadline: float | None = None,
               priority: int | None = None,
               idempotency_key: str | None = None) -> dict:
        """POST /delete — returns ``{removed, write_version}``.

        Auto-mints an idempotency key like :meth:`insert`.
        """
        if idempotency_key is None:
            idempotency_key = _mint_key()
        return self._request("POST", "/delete", {
            "model": model,
            "triple": [subject, predicate, obj],
            "force": force,
        }, request_id=request_id, deadline=deadline,
            priority=priority, idempotency_key=idempotency_key)

    def stats(self) -> dict:
        """GET /stats."""
        return self._request("GET", "/stats")

    def debug_slow(self, limit: int | None = None) -> dict:
        """GET /debug/slow — the slow-request log."""
        path = "/debug/slow"
        if limit is not None:
            path += f"?limit={int(limit)}"
        return self._request("GET", path)

    def debug_trace(self, request_id: str,
                    chrome: bool = False) -> Any:
        """GET /debug/trace/<id> — one retained request trace.

        ``chrome=True`` asks for the Chrome trace-event JSON array.
        """
        path = "/debug/trace/" + urllib.parse.quote(request_id, safe="")
        if chrome:
            path += "?format=chrome"
        return self._request("GET", path)

    def health(self, check: str | None = None) -> dict:
        """GET /healthz (raises :class:`ServerError` when unhealthy).

        ``check='live'`` / ``check='ready'`` select the probe splits.
        """
        path = "/healthz"
        if check is not None:
            path += f"?check={urllib.parse.quote(check)}"
        return self._request("GET", path)

    def metrics_text(self) -> str:
        """GET /metrics — the Prometheus exposition text."""
        return self._request("GET", "/metrics")


def _mint_key() -> str:
    """A fresh idempotency key (one logical write)."""
    return "ik-" + uuid.uuid4().hex


def _message(data: bytes, status: int) -> str:
    detail: object = repr(data[:200])
    try:
        detail = json.loads(data).get("error", detail)
    except ValueError:
        pass
    return f"HTTP {status}: {detail}"

"""Health assessment for the serving layer: live, ready, degraded.

A binary healthy/unhealthy answer hides the state load balancers and
operators actually act on: *the server is up but struggling*.  This
module grades the serving layer into three states from three signals —
writer-queue depth, read-pool saturation, and a rolling error-rate
window:

``ok``
    Everything nominal: serve traffic.
``degraded``
    The writer queue or the pool is persistently saturated past its
    fraction threshold, or the rolling error rate crossed its
    threshold.  The server still answers, but admission starts
    shedding the **lowest-priority** requests (``X-Priority`` header)
    first — targeted shedding before the admission gate's blanket
    429s.
``unhealthy``
    The writer thread is down (or an integrity probe failed): writes
    are lost on arrival; take the node out of rotation.

:class:`HealthMonitor` holds the thresholds and the rolling error
window; it is deliberately storage-free (pure in-memory arithmetic) so
``/healthz`` stays cheap enough for aggressive probe intervals.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any

#: Health states, in increasing order of trouble.
OK = "ok"
DEGRADED = "degraded"
UNHEALTHY = "unhealthy"


@dataclass
class HealthReport:
    """One assessment: the state plus why (machine-readable reasons)."""

    state: str
    reasons: list[str] = field(default_factory=list)
    error_rate: float = 0.0
    window_requests: int = 0

    @property
    def live(self) -> bool:
        """Process-liveness: answering at all means live."""
        return True

    @property
    def ready(self) -> bool:
        """Fit to take traffic (degraded still serves, shedding low
        priority)."""
        return self.state != UNHEALTHY

    def as_dict(self) -> dict[str, Any]:
        return {
            "state": self.state,
            "live": self.live,
            "ready": self.ready,
            "reasons": list(self.reasons),
            "error_rate": round(self.error_rate, 4),
            "window_requests": self.window_requests,
        }


class HealthMonitor:
    """Rolling error window + saturation thresholds -> a health state.

    :param window: seconds of request outcomes the error rate covers.
    :param error_threshold: error fraction at/past which the window
        degrades the server (needs ``min_requests`` samples first, so
        one early failure cannot degrade an idle server).
    :param min_requests: outcomes required before the error rate
        counts.
    :param queue_fraction: writer-queue depth / capacity at/past which
        the server is degraded.
    :param pool_fraction: pool leases / size at/past which the server
        is degraded (1.0 = every reader busy).

    ``observe`` is called from every handler thread; the deque and
    counters sit under one small lock.
    """

    def __init__(self, window: float = 30.0,
                 error_threshold: float = 0.5,
                 min_requests: int = 10,
                 queue_fraction: float = 0.8,
                 pool_fraction: float = 1.0) -> None:
        if not 0.0 < error_threshold <= 1.0:
            raise ValueError("error_threshold must be in (0, 1]")
        if window <= 0:
            raise ValueError("window must be positive seconds")
        self.window = window
        self.error_threshold = error_threshold
        self.min_requests = max(1, min_requests)
        self.queue_fraction = queue_fraction
        self.pool_fraction = pool_fraction
        # (monotonic timestamp, was_error) per completed request.
        self._outcomes: deque[tuple[float, bool]] = deque()
        self._lock = threading.Lock()

    # -- the rolling error window --------------------------------------

    def observe(self, status: int) -> None:
        """Record one finished request's status code.

        5xx is an error (the server failed); 4xx — including 429
        shedding and 504 deadline expiry — is the server *working as
        designed* under load and must not feed back into the degraded
        signal, or shedding would lock itself in.
        """
        now = time.monotonic()
        with self._lock:
            self._outcomes.append((now, status >= 500))
            self._trim(now)

    def _trim(self, now: float) -> None:
        horizon = now - self.window
        while self._outcomes and self._outcomes[0][0] < horizon:
            self._outcomes.popleft()

    def error_rate(self) -> tuple[float, int]:
        """(error fraction, sample count) over the rolling window."""
        now = time.monotonic()
        with self._lock:
            self._trim(now)
            total = len(self._outcomes)
            if not total:
                return 0.0, 0
            errors = sum(1 for _, bad in self._outcomes if bad)
            return errors / total, total

    def reset(self) -> None:
        with self._lock:
            self._outcomes.clear()

    # -- assessment ----------------------------------------------------

    def assess(self, *, writer_running: bool, writer_depth: int,
               queue_limit: int, pool_in_use: int,
               pool_size: int) -> HealthReport:
        """Grade the serving layer from the live gauges."""
        rate, samples = self.error_rate()
        if not writer_running:
            return HealthReport(
                UNHEALTHY, ["writer thread is not running"],
                rate, samples)
        reasons: list[str] = []
        if queue_limit > 0 and writer_depth >= max(
                1, int(queue_limit * self.queue_fraction)):
            reasons.append(
                f"writer queue depth {writer_depth} >= "
                f"{self.queue_fraction:.0%} of limit {queue_limit}")
        if pool_size > 0 and pool_in_use >= max(
                1, int(pool_size * self.pool_fraction)):
            reasons.append(
                f"read pool saturated ({pool_in_use}/{pool_size} "
                "leased)")
        if samples >= self.min_requests \
                and rate >= self.error_threshold:
            reasons.append(
                f"error rate {rate:.0%} over the last "
                f"{self.window:g}s ({samples} requests)")
        state = DEGRADED if reasons else OK
        return HealthReport(state, reasons, rate, samples)

"""The HTTP serving layer for SDO_RDF_MATCH.

The paper's system answers SDO_RDF_MATCH queries from inside Oracle,
where concurrent sessions are the database's own business.  Our SQLite
substitute is an embedded library, so this module supplies the missing
serving tier — stdlib only — on top of the concurrency primitives in
:mod:`repro.db.pool`:

* **readers**: a :class:`~repro.db.pool.ConnectionPool` of read-only
  connections, each wrapped in its own :class:`RDFStore` (plan cache,
  statistics, and term caches are per-connection; the acquire-time
  snoop invalidates them when the writer commits);
* **writer**: a :class:`~repro.db.pool.WriterQueue` — one thread, one
  writable connection, strict FIFO.  ``/insert`` and ``/delete`` are
  enqueued as jobs and answered when their transaction commits;
* **admission control**: a bounded gate (``workers + backlog``
  in-flight POSTs).  Saturation answers **429** with a ``Retry-After``
  header — the server sheds load, it never queues without bound;
* **consistency**: every ``/match`` reads the serve-state
  ``write_version`` (:mod:`repro.server.state`) inside the same
  transaction as its query SQL, so responses carry a monotonic,
  torn-read-free snapshot version.

Routes::

    POST /match    {query, models, rulebases?, aliases?, filter?,
                    order_by?, limit?}       -> {rows, count, data_version}
    POST /insert   {model, triples, create?} -> {created, count, write_version}
    POST /delete   {model, triple, force?}   -> {removed, write_version}
    GET  /stats    pool/writer/admission gauges + metrics snapshot
    GET  /metrics  Prometheus text exposition
    GET  /healthz  writer liveness + integrity check (503 when unhealthy)
    GET  /debug/slow          the slow-request log (full traces)
    GET  /debug/trace/<id>    one request's trace; ?format=chrome emits
                              the Chrome trace-event JSON array

Every request is **request-scoped observable**: an incoming
``X-Request-Id`` header is honored (or an id is minted), echoed on the
response, stamped onto every span the request opens — across the pool
and the writer thread — and used to key the slow-request log.  A
request slower than ``ServerConfig.slow_threshold`` is captured with
its span tree, query text, plan-cache status, EXPLAIN, and pool-/queue-
wait breakdowns; ``GET /debug/slow`` serves the capture.

Shutdown is a graceful drain: the listener stops accepting, in-flight
requests finish (handler threads are joined), queued writes run to
completion, then the pool and writer close.
"""

from __future__ import annotations

import json
import math
import sys
import threading
import time
import urllib.parse
from concurrent.futures import TimeoutError as FutureTimeoutError
from dataclasses import dataclass, field
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import IO, Any, Callable

from repro.core.store import RDFStore
from repro.db.connection import Database
from repro.db.pool import ConnectionPool, WriterQueue
from repro.errors import (
    ModelNotFoundError,
    ParseError,
    PoolTimeoutError,
    QueryError,
    ReproError,
    StorageError,
    TermError,
)
from repro.inference.match import sdo_rdf_match
from repro.obs.logjson import JsonFormatter, get_logger
from repro.obs.metrics import MetricsRegistry
from repro.obs.observer import NULL_OBSERVER, Observer
from repro.obs.reqctx import (
    REQUEST_ID_HEADER,
    RequestTrace,
    activate,
    clean_request_id,
    current_trace,
    deactivate,
)
from repro.obs.slowlog import (
    DEFAULT_CAPACITY as SLOW_CAPACITY,
    DEFAULT_RECENT as RECENT_CAPACITY,
    DEFAULT_SLOW_THRESHOLD as SLOW_THRESHOLD,
    SlowRequestLog,
    chrome_trace_events,
)
from repro.rdf.namespaces import Alias, AliasSet
from repro.rdf.triple import Triple
from repro.server.state import (
    bump_write_version,
    ensure_serve_state,
    read_write_version,
)

#: Durability profiles the server accepts: concurrent readers need WAL.
_WAL_PROFILES = ("durable", "paranoid")


class _BadRequest(ReproError):
    """Malformed request body or parameters (HTTP 400)."""


@dataclass
class ServerConfig:
    """Everything the serving layer is configured by.

    :param path: the database file.  Must be file-backed — readers and
        the writer are separate connections sharing the WAL.
    :param host: bind address (default loopback).
    :param port: TCP port; 0 picks an ephemeral port (tests).
    :param workers: read-pool size == queries executing concurrently.
    :param backlog: extra POSTs admitted beyond ``workers``; they wait
        up to ``pool_timeout`` for a reader before 429.
    :param writer_queue: bound on enqueued write jobs.
    :param durability: ``durable`` or ``paranoid`` (WAL required for
        the N-readers + 1-writer model).
    :param observe: attach a shared :class:`Observer` to every
        connection (SQL timing, spans) — the server's request metrics
        are collected either way.
    :param pool_timeout: seconds an admitted query waits for a reader.
    :param request_timeout: seconds a write request waits for its
        job's commit before answering 503 (the job still runs).
    :param retry_after: suggested client backoff reported on 429.
    :param slow_threshold: seconds at/past which a request's full
        trace is captured into the slow-request log (``/debug/slow``).
    :param slow_capacity: slow traces retained (newest win).
    :param recent_capacity: recent traces (any speed) retained for
        ``/debug/trace/<id>`` lookup.
    :param access_log: emit one JSON access-log line per request
        through :mod:`repro.obs.logjson` (off by default).
    :param access_log_stream: where access-log lines go (default
        stderr; tests pass a ``StringIO``).
    """

    path: str
    host: str = "127.0.0.1"
    port: int = 0
    workers: int = 4
    backlog: int = 8
    writer_queue: int = 64
    durability: str = "durable"
    observe: bool = False
    pool_timeout: float = 2.0
    request_timeout: float = 30.0
    retry_after: float = 0.5
    slow_threshold: float = SLOW_THRESHOLD
    slow_capacity: int = SLOW_CAPACITY
    recent_capacity: int = RECENT_CAPACITY
    access_log: bool = False
    access_log_stream: IO[str] | None = field(
        default=None, repr=False, compare=False)

    def __post_init__(self) -> None:
        if self.path == ":memory:":
            raise StorageError(
                "the server needs a file-backed database; :memory: "
                "cannot be shared across connections")
        if self.durability not in _WAL_PROFILES:
            raise StorageError(
                f"durability {self.durability!r} cannot serve "
                "concurrent readers; pick one of "
                f"{', '.join(_WAL_PROFILES)} (WAL journaling)")
        if self.workers < 1:
            raise StorageError("server needs workers >= 1")
        if self.backlog < 0:
            raise StorageError("server backlog must be >= 0")
        if self.slow_threshold < 0:
            raise StorageError("slow_threshold must be >= 0 seconds")
        if self.slow_capacity < 1 or self.recent_capacity < 1:
            raise StorageError("slow/recent capacities must be >= 1")


class ReproServer:
    """The serving layer: pool + writer + HTTP front end.

    Usage::

        server = ReproServer(ServerConfig(path="universe.db"))
        server.start()          # returns once the port is bound
        ...
        server.stop()           # graceful drain

    or blocking, from the CLI: ``server.run()``.
    """

    def __init__(self, config: ServerConfig) -> None:
        self.config = config
        if config.observe:
            self.observer: Observer = Observer()
            self.metrics = self.observer.metrics
        else:
            self.observer = NULL_OBSERVER
            self.metrics = MetricsRegistry()
        self.slowlog = SlowRequestLog(
            threshold=config.slow_threshold,
            capacity=config.slow_capacity,
            recent=config.recent_capacity)
        self._access = get_logger("server.access")
        self._access_handler: Any = None
        if config.access_log:
            self._access_handler = self._attach_access_log()
        self.pool: ConnectionPool | None = None
        self.writer: WriterQueue | None = None
        self._http: _HTTPServer | None = None
        self._serve_thread: threading.Thread | None = None
        self._gate = threading.BoundedSemaphore(
            config.workers + config.backlog)
        self._draining = False
        self._started_at = 0.0

    def _attach_access_log(self):
        """Give the access logger its own JSON-lines handler.

        Self-contained on purpose: ``--access-log`` must work without
        any global logging configuration, and must not double-emit
        when one exists (``propagate`` off).
        """
        import logging

        handler = logging.StreamHandler(
            self.config.access_log_stream
            if self.config.access_log_stream is not None else sys.stderr)
        handler.setFormatter(JsonFormatter())
        self._access.addHandler(handler)
        self._access.setLevel(logging.INFO)
        self._access.propagate = False
        return handler

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    def _writer_factory(self) -> RDFStore:
        """Build the writer session (runs inside the writer thread)."""
        database = Database(
            self.config.path, durability=self.config.durability,
            observer=self.observer if self.observer.enabled else None)
        store = RDFStore(database, observe=self.config.observe)
        ensure_serve_state(database)
        return store

    def start(self) -> "ReproServer":
        """Open the writer, the pool, and the listener (non-blocking)."""
        if self._http is not None:
            raise StorageError("server already started")
        if self.config.access_log and self._access_handler is None:
            self._access_handler = self._attach_access_log()
        self.writer = WriterQueue(
            self._writer_factory, maxsize=self.config.writer_queue,
            observer=self.observer).start()
        self.pool = ConnectionPool(
            self.config.path, size=self.config.workers,
            durability=self.config.durability,
            timeout=self.config.pool_timeout,
            observer=self.observer,
            wrap=lambda db: RDFStore(db, observe=False),
            invalidate=lambda store: store.values.invalidate_cache())
        self._http = _HTTPServer(
            (self.config.host, self.config.port), _Handler)
        self._http.app = self
        self._draining = False
        self._started_at = time.monotonic()
        self._serve_thread = threading.Thread(
            target=self._http.serve_forever,
            kwargs={"poll_interval": 0.05},
            name="repro-serve", daemon=True)
        self._serve_thread.start()
        return self

    @property
    def address(self) -> tuple[str, int]:
        """The bound (host, port) — the real port when 0 was asked."""
        if self._http is None:
            raise StorageError("server is not running")
        host, port = self._http.server_address[:2]
        return str(host), int(port)

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"

    def stop(self, drain: bool = True) -> None:
        """Graceful shutdown: drain requests, flush writes, close."""
        if self._http is None:
            return
        self._draining = True
        self._http.shutdown()          # stop accepting new connections
        self._http.server_close()      # join in-flight handler threads
        self._serve_thread.join(timeout=30.0)
        self._http = None
        self._serve_thread = None
        if self.writer is not None:
            self.writer.stop(drain=drain)
            self.writer = None
        if self.pool is not None:
            self.pool.close()
            self.pool = None
        if self._access_handler is not None:
            self._access.removeHandler(self._access_handler)
            self._access_handler.close()
            self._access_handler = None

    def run(self) -> None:
        """Start and block until KeyboardInterrupt (CLI entry point)."""
        self.start()
        try:
            while True:
                time.sleep(0.5)
        except KeyboardInterrupt:
            pass
        finally:
            self.stop()

    def __enter__(self) -> "ReproServer":
        if self._http is None:
            self.start()
        return self

    def __exit__(self, *_exc_info: object) -> None:
        self.stop()

    # ------------------------------------------------------------------
    # routes
    # ------------------------------------------------------------------

    def _do_match(self, payload: dict) -> tuple[int, dict]:
        query = _require_str(payload, "query")
        models = _require_str_list(payload, "models")
        rulebases = _optional_str_list(payload, "rulebases")
        aliases = _parse_aliases(payload.get("aliases"))
        filter_ = payload.get("filter")
        order_by = payload.get("order_by")
        limit = payload.get("limit")
        if limit is not None and not isinstance(limit, int):
            raise _BadRequest("limit must be an integer")
        request = current_trace()
        start = time.perf_counter()
        with self.pool.lease() as store:
            database = store.database
            # One read transaction covers the version read AND the
            # query SQL: the reported data_version is exactly the
            # snapshot the rows came from.
            with database.transaction():
                version = read_write_version(database)
                rows = sdo_rdf_match(
                    store, query, models, rulebases=rulebases,
                    aliases=aliases, filter=filter_,
                    order_by=order_by, limit=limit)
            if (request is not None
                    and time.perf_counter() - start
                    >= self.slowlog.threshold):
                # Still holding the lease: capture the plan the slow
                # query would (re)use.  The plan cache makes this a
                # cheap lookup, not a second compile.
                self._capture_slow_match(
                    request, store, query, models, rulebases, aliases,
                    filter_, order_by, limit)
        if request is not None:
            request.annotate("rows", len(rows))
            request.annotate("data_version", version)
        return 200, {
            "rows": [row.as_dict() for row in rows],
            "count": len(rows),
            "data_version": version,
        }

    def _capture_slow_match(self, request: RequestTrace,
                            store: RDFStore, query: str,
                            models: list[str], rulebases: list[str],
                            aliases: AliasSet | None, filter_: Any,
                            order_by: Any, limit: Any) -> None:
        """Attach plan/EXPLAIN context to a slow /match's trace."""
        try:
            explanation = sdo_rdf_match(
                store, query, models, rulebases=rulebases,
                aliases=aliases, filter=filter_, order_by=order_by,
                limit=limit, explain=True)
        except ReproError:  # pragma: no cover - the query just ran
            return
        request.annotate("explain", explanation.render())
        request.annotate("plan_sql", explanation.plan.sql)

    def _do_insert(self, payload: dict) -> tuple[int, dict]:
        model = _require_str(payload, "model")
        create = bool(payload.get("create", False))
        raw = payload.get("triples")
        if not isinstance(raw, list) or not raw:
            raise _BadRequest(
                "triples must be a non-empty list of [s, p, o]")
        triples = [Triple.from_text(*_spo(item)) for item in raw]

        def job(store: RDFStore) -> dict:
            database = store.database
            created = 0
            with database.transaction():
                if create and not store.model_exists(model):
                    store.create_model(model)
                info = store.models.get(model)
                for triple in triples:
                    result = store.parser.insert(info, triple)
                    created += 1 if result.created else 0
                version = bump_write_version(database)
            return {"created": created, "count": len(triples),
                    "write_version": version}

        return 200, self._write(job)

    def _do_delete(self, payload: dict) -> tuple[int, dict]:
        model = _require_str(payload, "model")
        subject, predicate, obj = _spo(payload.get("triple"))
        force = bool(payload.get("force", False))

        def job(store: RDFStore) -> dict:
            database = store.database
            with database.transaction():
                removed = store.remove_triple(
                    model, subject, predicate, obj, force=force)
                version = bump_write_version(database)
            return {"removed": removed, "write_version": version}

        return 200, self._write(job)

    def _write(self, job: Callable[[RDFStore], dict]) -> dict:
        """Enqueue a write job and wait for its commit."""
        future = self.writer.submit(job)  # PoolTimeoutError -> 429
        return future.result(timeout=self.config.request_timeout)

    def _do_stats(self) -> tuple[int, dict]:
        gate_free = getattr(self._gate, "_value", None)
        self._sample_saturation()
        return 200, {
            "server": {
                "uptime_seconds": round(
                    time.monotonic() - self._started_at, 3),
                "workers": self.config.workers,
                "backlog": self.config.backlog,
                "durability": self.config.durability,
                "observe": self.config.observe,
                "draining": self._draining,
                "admission_free": gate_free,
            },
            "pool": self.pool.stats() if self.pool else {},
            "writer": self.writer.stats() if self.writer else {},
            "slow_requests": self.slowlog.stats(),
            "metrics": self.metrics.as_dict(),
        }

    def _do_debug_slow(self, query_string: str) -> tuple[int, Any]:
        """``GET /debug/slow[?limit=N]`` — the slow-request log."""
        params = urllib.parse.parse_qs(query_string)
        limit = None
        if "limit" in params:
            try:
                limit = int(params["limit"][0])
            except (ValueError, IndexError):
                raise _BadRequest("limit must be an integer") from None
        return 200, {
            **self.slowlog.stats(),
            "requests": self.slowlog.entries(limit),
        }

    def _do_debug_trace(self, request_id: str,
                        query_string: str) -> tuple[int, Any]:
        """``GET /debug/trace/<id>[?format=chrome]`` — one trace."""
        entry = self.slowlog.find(request_id)
        if entry is None:
            return 404, {
                "error": f"no trace retained for request "
                         f"{request_id!r} (slow ring "
                         f"{self.config.slow_capacity}, recent ring "
                         f"{self.config.recent_capacity})",
                "type": "NotFound",
            }
        params = urllib.parse.parse_qs(query_string)
        if params.get("format", [""])[0] == "chrome":
            label = (f"{entry.get('method', '')} {entry.get('path', '')} "
                     f"[{request_id}]")
            return 200, chrome_trace_events(
                entry.get("spans", ()), label=label)
        return 200, entry

    def _do_healthz(self) -> tuple[int, dict]:
        writer_ok = self.writer is not None and self.writer.running
        integrity = "skipped (writer down)"
        if writer_ok:
            try:
                with self.pool.lease(timeout=1.0) as store:
                    integrity = str(store.database.query_value(
                        "PRAGMA quick_check", default="failed"))
            except PoolTimeoutError:
                # Saturated is busy, not broken.
                integrity = "skipped (pool busy)"
        healthy = writer_ok and (integrity == "ok"
                                 or integrity.startswith("skipped"))
        body = {
            "status": "ok" if healthy else "unhealthy",
            "writer_running": writer_ok,
            "writer_depth": self.writer.depth if self.writer else None,
            "integrity": integrity,
        }
        return (200 if healthy else 503), body

    # ------------------------------------------------------------------
    # dispatch plumbing (called from the handler threads)
    # ------------------------------------------------------------------

    def _dispatch(self, fn: Callable[[dict], tuple[int, dict]],
                  payload: dict) -> tuple[int, dict, dict]:
        """Run a route, mapping exceptions to HTTP statuses."""
        try:
            status, body = fn(payload)
            return status, body, {}
        except PoolTimeoutError as exc:
            return self._reject(str(exc))
        except _BadRequest as exc:
            return 400, _error(exc), {}
        except ModelNotFoundError as exc:
            return 404, _error(exc), {}
        except (QueryError, ParseError, TermError) as exc:
            return 400, _error(exc), {}
        except FutureTimeoutError:
            return 503, {"error": "write did not commit within "
                         f"{self.config.request_timeout}s (still "
                         "queued)", "type": "Timeout"}, {}
        except StorageError as exc:
            self.metrics.counter("server.errors").inc()
            return 500, _error(exc), {}
        except ReproError as exc:
            return 400, _error(exc), {}

    def _reject(self, message: str) -> tuple[int, dict, dict]:
        """A 429 backpressure answer with Retry-After.

        The body carries the saturation context a client (or a human
        reading the log) needs to see *why*: current queue depth and
        pool occupancy against their limits.
        """
        self.metrics.counter(
            "server.rejected", "requests shed with HTTP 429").inc()
        body = {
            "error": message,
            "type": "Backpressure",
            "retry_after_seconds": self.config.retry_after,
            "queue_depth": self.writer.depth if self.writer else None,
            "queue_limit": self.config.writer_queue,
            "pool_in_use": self.pool.in_use if self.pool else None,
            "pool_size": self.config.workers,
            "admission_limit": self.config.workers + self.config.backlog,
            "admission_free": getattr(self._gate, "_value", None),
        }
        headers = {
            "Retry-After": str(max(1, math.ceil(self.config.retry_after))),
        }
        return 429, body, headers

    def admit(self) -> bool:
        """Try to take an admission slot (POST routes only).

        Every admission decision — granted or shed — samples the
        saturation gauges, so ``/metrics`` tracks queue depth and pool
        occupancy exactly as load arrives.
        """
        admitted = self._gate.acquire(blocking=False)
        self._sample_saturation()
        return admitted

    def readmit(self) -> None:
        self._gate.release()

    def _sample_saturation(self) -> None:
        """Refresh the queue-depth and pool-occupancy gauges."""
        writer, pool = self.writer, self.pool
        if writer is not None:
            self.metrics.gauge(
                "server.queue_depth",
                "write jobs waiting in the writer queue").set(
                    writer.depth)
        if pool is not None:
            self.metrics.gauge(
                "pool.in_use",
                "read connections out on lease").set(pool.in_use)

    # ------------------------------------------------------------------
    # request lifecycle (called from the handler threads)
    # ------------------------------------------------------------------

    def finish_request_trace(self, trace: RequestTrace,
                             status: int) -> None:
        """Book-keep one completed request: metrics, slow log, access
        log."""
        duration = trace.finish(status)
        label = _route_label(trace.path)
        self.metrics.counter(f"server.requests.{label}").inc()
        self.metrics.histogram(
            f"server.endpoint.{label}.seconds",
            f"request wall time of {trace.method} {label}").observe(
                duration)
        if self.slowlog.record(trace):
            self.metrics.counter(
                "server.slow_requests",
                "requests captured past the slow threshold").inc()
        if self.config.access_log:
            self._access.info(
                "%s %s %d", trace.method, trace.path, status,
                extra={
                    "method": trace.method,
                    "path": trace.path,
                    "status": status,
                    "duration_ms": round(duration * 1000, 3),
                    "request_id": trace.request_id,
                    "worker": threading.current_thread().name,
                })


# ----------------------------------------------------------------------
# request validation helpers
# ----------------------------------------------------------------------

#: Fixed route -> metric-label table; anything else is "other" so 404
#: scans cannot explode the metric namespace.
_ROUTE_LABELS = {
    "/match": "match",
    "/insert": "insert",
    "/delete": "delete",
    "/stats": "stats",
    "/metrics": "metrics",
    "/healthz": "healthz",
    "/health": "healthz",
    "/debug/slow": "debug_slow",
}


def _route_label(path: str) -> str:
    base = path.split("?", 1)[0]
    if base.startswith("/debug/trace/"):
        return "debug_trace"
    return _ROUTE_LABELS.get(base, "other")


def _error(exc: Exception) -> dict:
    return {"error": str(exc), "type": type(exc).__name__}


def _require_str(payload: dict, key: str) -> str:
    value = payload.get(key)
    if not isinstance(value, str) or not value.strip():
        raise _BadRequest(f"{key!r} must be a non-empty string")
    return value


def _require_str_list(payload: dict, key: str) -> list[str]:
    value = payload.get(key)
    if isinstance(value, str):
        value = [value]
    if (not isinstance(value, list) or not value
            or not all(isinstance(item, str) for item in value)):
        raise _BadRequest(f"{key!r} must be a non-empty list of strings")
    return value


def _optional_str_list(payload: dict, key: str) -> list[str]:
    value = payload.get(key)
    if value is None:
        return []
    if isinstance(value, str):
        value = [value]
    if (not isinstance(value, list)
            or not all(isinstance(item, str) for item in value)):
        raise _BadRequest(f"{key!r} must be a list of strings")
    return value


def _parse_aliases(raw: Any) -> AliasSet | None:
    if raw is None:
        return None
    if not isinstance(raw, dict) or not all(
            isinstance(k, str) and isinstance(v, str)
            for k, v in raw.items()):
        raise _BadRequest(
            "'aliases' must be an object of prefix -> namespace")
    return AliasSet(Alias(prefix, namespace)
                    for prefix, namespace in raw.items())


def _spo(item: Any) -> tuple[str, str, str]:
    if (not isinstance(item, (list, tuple)) or len(item) != 3
            or not all(isinstance(part, str) for part in item)):
        raise _BadRequest(
            "each triple must be a [subject, predicate, object] "
            "list of strings")
    return item[0], item[1], item[2]


# ----------------------------------------------------------------------
# the HTTP front end
# ----------------------------------------------------------------------

class _HTTPServer(ThreadingHTTPServer):
    """Threading server tuned for graceful drain.

    Handler threads are non-daemon and joined on ``server_close``, so
    ``stop()`` returns only after every in-flight request finished.
    """

    daemon_threads = False
    block_on_close = True
    allow_reuse_address = True
    app: "ReproServer"


class _Handler(BaseHTTPRequestHandler):
    """Thin HTTP adapter; all logic lives on :class:`ReproServer`."""

    protocol_version = "HTTP/1.1"
    server_version = "repro-rdf"
    # Idle keep-alive connections release their thread after this many
    # seconds, bounding how long a drain can take.
    timeout = 5
    # Headers and body go out in separate writes; without TCP_NODELAY
    # the body write stalls on the client's delayed ACK (~40 ms per
    # request on loopback).
    disable_nagle_algorithm = True

    # -- plumbing ------------------------------------------------------

    @property
    def app(self) -> ReproServer:
        return self.server.app  # type: ignore[attr-defined]

    def log_message(self, format: str, *args: Any) -> None:
        self.app.observer.log.debug(
            "http %s", format % args,
            extra={"client": self.address_string()})

    def _begin_request(self, method: str) -> RequestTrace:
        """Create and activate this request's trace context.

        The client's ``X-Request-Id`` is honored when usable; the id
        is echoed on the response either way.
        """
        request_id = clean_request_id(
            self.headers.get(REQUEST_ID_HEADER))
        trace = RequestTrace(request_id, method=method, path=self.path)
        self._trace = trace
        self._token = activate(trace)
        return trace

    def _end_request(self, status: int) -> None:
        """Close the trace if no response ever finalized it (socket
        errors, handler bugs)."""
        self._finalize(status)

    def _finalize(self, status: int) -> None:
        """Deactivate and file the trace exactly once per request.

        Runs *before* the response bytes go out, so a client that got
        its answer can immediately find its own trace under
        ``/debug/trace/<id>`` — no read-after-write race.
        """
        if self._token is None:
            return
        deactivate(self._token)
        self._token = None
        self.app.finish_request_trace(self._trace, status)

    def _send_json(self, status: int, body: Any,
                   headers: dict | None = None) -> int:
        data = json.dumps(body).encode("utf-8")
        self._finalize(status)
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(data)))
        trace = getattr(self, "_trace", None)
        if trace is not None:
            self.send_header(REQUEST_ID_HEADER, trace.request_id)
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        if self.app._draining:
            self.send_header("Connection", "close")
            self.close_connection = True
        self.end_headers()
        self.wfile.write(data)
        return status

    def _read_body(self) -> bytes:
        """Consume the request body.

        Always called before responding — leftover body bytes on a
        keep-alive connection would be misread as the next request
        line.
        """
        length = int(self.headers.get("Content-Length") or 0)
        if length <= 0:
            return b""
        return self.rfile.read(length)

    @staticmethod
    def _parse_json(raw: bytes) -> dict:
        if not raw:
            raise _BadRequest("request needs a JSON body")
        try:
            payload = json.loads(raw)
        except (ValueError, UnicodeDecodeError) as exc:
            raise _BadRequest(f"body is not valid JSON: {exc}") from None
        if not isinstance(payload, dict):
            raise _BadRequest("JSON body must be an object")
        return payload

    # -- routes --------------------------------------------------------

    _POST_ROUTES = {
        "/match": "_do_match",
        "/insert": "_do_insert",
        "/delete": "_do_delete",
    }

    def do_GET(self) -> None:
        app = self.app
        app.metrics.counter("server.requests").inc()
        self._begin_request("GET")
        status = 500
        try:
            status = self._route_get(app)
        finally:
            self._end_request(status)

    def _route_get(self, app: ReproServer) -> int:
        path, _, query_string = self.path.partition("?")
        if path == "/metrics":
            app._sample_saturation()
            self._finalize(200)
            data = app.metrics.prometheus_text().encode("utf-8")
            self.send_response(200)
            self.send_header("Content-Type",
                             "text/plain; version=0.0.4; charset=utf-8")
            self.send_header("Content-Length", str(len(data)))
            self.send_header(REQUEST_ID_HEADER,
                             self._trace.request_id)
            self.end_headers()
            self.wfile.write(data)
            return 200
        if path in ("/healthz", "/health"):
            status, body = app._do_healthz()
            return self._send_json(status, body)
        if path == "/stats":
            status, body = app._do_stats()
            return self._send_json(status, body)
        if path == "/debug/slow":
            try:
                status, body = app._do_debug_slow(query_string)
            except _BadRequest as exc:
                return self._send_json(400, _error(exc))
            return self._send_json(status, body)
        if path.startswith("/debug/trace/"):
            request_id = urllib.parse.unquote(
                path[len("/debug/trace/"):])
            status, body = app._do_debug_trace(request_id,
                                               query_string)
            return self._send_json(status, body)
        return self._send_json(
            404, {"error": f"no such route: {self.path}",
                  "type": "NotFound"})

    def do_POST(self) -> None:
        app = self.app
        app.metrics.counter("server.requests").inc()
        route = self._POST_ROUTES.get(self.path)
        raw = self._read_body()
        trace = self._begin_request("POST")
        status = 500
        try:
            if route is None:
                status = self._send_json(
                    404, {"error": f"no such route: {self.path}",
                          "type": "NotFound"})
                return
            if not app.admit():
                code, body, headers = app._reject(
                    f"server saturated ({app.config.workers} workers "
                    f"+ {app.config.backlog} backlog in flight)")
                status = self._send_json(code, body, headers)
                return
            start = time.perf_counter()
            try:
                # The response goes out only after the http.request
                # span closed and the trace is filed (_finalize inside
                # _send_json) — a client that has its answer can read
                # its own trace immediately.
                try:
                    with app.observer.span("http.request",
                                           method="POST",
                                           path=self.path):
                        payload = self._parse_json(raw)
                        code, body, headers = app._dispatch(
                            getattr(app, route), payload)
                except _BadRequest as exc:
                    status = self._send_json(400, _error(exc))
                    return
                status = self._send_json(code, body, headers)
            finally:
                app.readmit()
                app.metrics.histogram(
                    "server.latency_seconds",
                    "wall time of admitted POST requests").observe(
                        time.perf_counter() - start)
        finally:
            self._end_request(status)

"""The HTTP serving layer for SDO_RDF_MATCH.

The paper's system answers SDO_RDF_MATCH queries from inside Oracle,
where concurrent sessions are the database's own business.  Our SQLite
substitute is an embedded library, so this module supplies the missing
serving tier — stdlib only — on top of the concurrency primitives in
:mod:`repro.db.pool`:

* **readers**: a :class:`~repro.db.pool.ConnectionPool` of read-only
  connections, each wrapped in its own :class:`RDFStore` (plan cache,
  statistics, and term caches are per-connection; the acquire-time
  snoop invalidates them when the writer commits);
* **writer**: a :class:`~repro.db.pool.WriterQueue` — one thread, one
  writable connection, strict FIFO.  ``/insert`` and ``/delete`` are
  enqueued as jobs and answered when their transaction commits;
* **admission control**: a bounded gate (``workers + backlog``
  in-flight POSTs).  Saturation answers **429** with a ``Retry-After``
  header — the server sheds load, it never queues without bound;
* **consistency**: every ``/match`` reads the serve-state
  ``write_version`` (:mod:`repro.server.state`) inside the same
  transaction as its query SQL, so responses carry a monotonic,
  torn-read-free snapshot version.

Routes::

    POST /match    {query, models, rulebases?, aliases?, filter?,
                    order_by?, limit?}       -> {rows, count, data_version}
    POST /insert   {model, triples, create?} -> {created, count, write_version}
    POST /delete   {model, triple, force?}   -> {removed, write_version}
    GET  /stats    pool/writer/admission gauges + metrics snapshot
    GET  /metrics  Prometheus text exposition
    GET  /healthz  writer liveness + integrity check (503 when unhealthy)

Shutdown is a graceful drain: the listener stops accepting, in-flight
requests finish (handler threads are joined), queued writes run to
completion, then the pool and writer close.
"""

from __future__ import annotations

import json
import math
import threading
import time
from concurrent.futures import TimeoutError as FutureTimeoutError
from dataclasses import dataclass
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Callable

from repro.core.store import RDFStore
from repro.db.connection import Database
from repro.db.pool import ConnectionPool, WriterQueue
from repro.errors import (
    ModelNotFoundError,
    ParseError,
    PoolTimeoutError,
    QueryError,
    ReproError,
    StorageError,
    TermError,
)
from repro.inference.match import sdo_rdf_match
from repro.obs.metrics import MetricsRegistry
from repro.obs.observer import NULL_OBSERVER, Observer
from repro.rdf.namespaces import Alias, AliasSet
from repro.rdf.triple import Triple
from repro.server.state import (
    bump_write_version,
    ensure_serve_state,
    read_write_version,
)

#: Durability profiles the server accepts: concurrent readers need WAL.
_WAL_PROFILES = ("durable", "paranoid")


class _BadRequest(ReproError):
    """Malformed request body or parameters (HTTP 400)."""


@dataclass
class ServerConfig:
    """Everything the serving layer is configured by.

    :param path: the database file.  Must be file-backed — readers and
        the writer are separate connections sharing the WAL.
    :param host: bind address (default loopback).
    :param port: TCP port; 0 picks an ephemeral port (tests).
    :param workers: read-pool size == queries executing concurrently.
    :param backlog: extra POSTs admitted beyond ``workers``; they wait
        up to ``pool_timeout`` for a reader before 429.
    :param writer_queue: bound on enqueued write jobs.
    :param durability: ``durable`` or ``paranoid`` (WAL required for
        the N-readers + 1-writer model).
    :param observe: attach a shared :class:`Observer` to every
        connection (SQL timing, spans) — the server's request metrics
        are collected either way.
    :param pool_timeout: seconds an admitted query waits for a reader.
    :param request_timeout: seconds a write request waits for its
        job's commit before answering 503 (the job still runs).
    :param retry_after: suggested client backoff reported on 429.
    """

    path: str
    host: str = "127.0.0.1"
    port: int = 0
    workers: int = 4
    backlog: int = 8
    writer_queue: int = 64
    durability: str = "durable"
    observe: bool = False
    pool_timeout: float = 2.0
    request_timeout: float = 30.0
    retry_after: float = 0.5

    def __post_init__(self) -> None:
        if self.path == ":memory:":
            raise StorageError(
                "the server needs a file-backed database; :memory: "
                "cannot be shared across connections")
        if self.durability not in _WAL_PROFILES:
            raise StorageError(
                f"durability {self.durability!r} cannot serve "
                "concurrent readers; pick one of "
                f"{', '.join(_WAL_PROFILES)} (WAL journaling)")
        if self.workers < 1:
            raise StorageError("server needs workers >= 1")
        if self.backlog < 0:
            raise StorageError("server backlog must be >= 0")


class ReproServer:
    """The serving layer: pool + writer + HTTP front end.

    Usage::

        server = ReproServer(ServerConfig(path="universe.db"))
        server.start()          # returns once the port is bound
        ...
        server.stop()           # graceful drain

    or blocking, from the CLI: ``server.run()``.
    """

    def __init__(self, config: ServerConfig) -> None:
        self.config = config
        if config.observe:
            self.observer: Observer = Observer()
            self.metrics = self.observer.metrics
        else:
            self.observer = NULL_OBSERVER
            self.metrics = MetricsRegistry()
        self.pool: ConnectionPool | None = None
        self.writer: WriterQueue | None = None
        self._http: _HTTPServer | None = None
        self._serve_thread: threading.Thread | None = None
        self._gate = threading.BoundedSemaphore(
            config.workers + config.backlog)
        self._draining = False
        self._started_at = 0.0

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    def _writer_factory(self) -> RDFStore:
        """Build the writer session (runs inside the writer thread)."""
        database = Database(
            self.config.path, durability=self.config.durability,
            observer=self.observer if self.observer.enabled else None)
        store = RDFStore(database, observe=self.config.observe)
        ensure_serve_state(database)
        return store

    def start(self) -> "ReproServer":
        """Open the writer, the pool, and the listener (non-blocking)."""
        if self._http is not None:
            raise StorageError("server already started")
        self.writer = WriterQueue(
            self._writer_factory, maxsize=self.config.writer_queue,
            observer=self.observer).start()
        self.pool = ConnectionPool(
            self.config.path, size=self.config.workers,
            durability=self.config.durability,
            timeout=self.config.pool_timeout,
            observer=self.observer,
            wrap=lambda db: RDFStore(db, observe=False),
            invalidate=lambda store: store.values.invalidate_cache())
        self._http = _HTTPServer(
            (self.config.host, self.config.port), _Handler)
        self._http.app = self
        self._draining = False
        self._started_at = time.monotonic()
        self._serve_thread = threading.Thread(
            target=self._http.serve_forever,
            kwargs={"poll_interval": 0.05},
            name="repro-serve", daemon=True)
        self._serve_thread.start()
        return self

    @property
    def address(self) -> tuple[str, int]:
        """The bound (host, port) — the real port when 0 was asked."""
        if self._http is None:
            raise StorageError("server is not running")
        host, port = self._http.server_address[:2]
        return str(host), int(port)

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"

    def stop(self, drain: bool = True) -> None:
        """Graceful shutdown: drain requests, flush writes, close."""
        if self._http is None:
            return
        self._draining = True
        self._http.shutdown()          # stop accepting new connections
        self._http.server_close()      # join in-flight handler threads
        self._serve_thread.join(timeout=30.0)
        self._http = None
        self._serve_thread = None
        if self.writer is not None:
            self.writer.stop(drain=drain)
            self.writer = None
        if self.pool is not None:
            self.pool.close()
            self.pool = None

    def run(self) -> None:
        """Start and block until KeyboardInterrupt (CLI entry point)."""
        self.start()
        try:
            while True:
                time.sleep(0.5)
        except KeyboardInterrupt:
            pass
        finally:
            self.stop()

    def __enter__(self) -> "ReproServer":
        if self._http is None:
            self.start()
        return self

    def __exit__(self, *_exc_info: object) -> None:
        self.stop()

    # ------------------------------------------------------------------
    # routes
    # ------------------------------------------------------------------

    def _do_match(self, payload: dict) -> tuple[int, dict]:
        query = _require_str(payload, "query")
        models = _require_str_list(payload, "models")
        rulebases = _optional_str_list(payload, "rulebases")
        aliases = _parse_aliases(payload.get("aliases"))
        filter_ = payload.get("filter")
        order_by = payload.get("order_by")
        limit = payload.get("limit")
        if limit is not None and not isinstance(limit, int):
            raise _BadRequest("limit must be an integer")
        with self.pool.lease() as store:
            database = store.database
            # One read transaction covers the version read AND the
            # query SQL: the reported data_version is exactly the
            # snapshot the rows came from.
            with database.transaction():
                version = read_write_version(database)
                rows = sdo_rdf_match(
                    store, query, models, rulebases=rulebases,
                    aliases=aliases, filter=filter_,
                    order_by=order_by, limit=limit)
        return 200, {
            "rows": [row.as_dict() for row in rows],
            "count": len(rows),
            "data_version": version,
        }

    def _do_insert(self, payload: dict) -> tuple[int, dict]:
        model = _require_str(payload, "model")
        create = bool(payload.get("create", False))
        raw = payload.get("triples")
        if not isinstance(raw, list) or not raw:
            raise _BadRequest(
                "triples must be a non-empty list of [s, p, o]")
        triples = [Triple.from_text(*_spo(item)) for item in raw]

        def job(store: RDFStore) -> dict:
            database = store.database
            created = 0
            with database.transaction():
                if create and not store.model_exists(model):
                    store.create_model(model)
                info = store.models.get(model)
                for triple in triples:
                    result = store.parser.insert(info, triple)
                    created += 1 if result.created else 0
                version = bump_write_version(database)
            return {"created": created, "count": len(triples),
                    "write_version": version}

        return 200, self._write(job)

    def _do_delete(self, payload: dict) -> tuple[int, dict]:
        model = _require_str(payload, "model")
        subject, predicate, obj = _spo(payload.get("triple"))
        force = bool(payload.get("force", False))

        def job(store: RDFStore) -> dict:
            database = store.database
            with database.transaction():
                removed = store.remove_triple(
                    model, subject, predicate, obj, force=force)
                version = bump_write_version(database)
            return {"removed": removed, "write_version": version}

        return 200, self._write(job)

    def _write(self, job: Callable[[RDFStore], dict]) -> dict:
        """Enqueue a write job and wait for its commit."""
        future = self.writer.submit(job)  # PoolTimeoutError -> 429
        return future.result(timeout=self.config.request_timeout)

    def _do_stats(self) -> tuple[int, dict]:
        gate_free = getattr(self._gate, "_value", None)
        return 200, {
            "server": {
                "uptime_seconds": round(
                    time.monotonic() - self._started_at, 3),
                "workers": self.config.workers,
                "backlog": self.config.backlog,
                "durability": self.config.durability,
                "observe": self.config.observe,
                "draining": self._draining,
                "admission_free": gate_free,
            },
            "pool": self.pool.stats() if self.pool else {},
            "writer": self.writer.stats() if self.writer else {},
            "metrics": self.metrics.as_dict(),
        }

    def _do_healthz(self) -> tuple[int, dict]:
        writer_ok = self.writer is not None and self.writer.running
        integrity = "skipped (writer down)"
        if writer_ok:
            try:
                with self.pool.lease(timeout=1.0) as store:
                    integrity = str(store.database.query_value(
                        "PRAGMA quick_check", default="failed"))
            except PoolTimeoutError:
                # Saturated is busy, not broken.
                integrity = "skipped (pool busy)"
        healthy = writer_ok and (integrity == "ok"
                                 or integrity.startswith("skipped"))
        body = {
            "status": "ok" if healthy else "unhealthy",
            "writer_running": writer_ok,
            "writer_depth": self.writer.depth if self.writer else None,
            "integrity": integrity,
        }
        return (200 if healthy else 503), body

    # ------------------------------------------------------------------
    # dispatch plumbing (called from the handler threads)
    # ------------------------------------------------------------------

    def _dispatch(self, fn: Callable[[dict], tuple[int, dict]],
                  payload: dict) -> tuple[int, dict, dict]:
        """Run a route, mapping exceptions to HTTP statuses."""
        try:
            status, body = fn(payload)
            return status, body, {}
        except PoolTimeoutError as exc:
            return self._reject(str(exc))
        except _BadRequest as exc:
            return 400, _error(exc), {}
        except ModelNotFoundError as exc:
            return 404, _error(exc), {}
        except (QueryError, ParseError, TermError) as exc:
            return 400, _error(exc), {}
        except FutureTimeoutError:
            return 503, {"error": "write did not commit within "
                         f"{self.config.request_timeout}s (still "
                         "queued)", "type": "Timeout"}, {}
        except StorageError as exc:
            self.metrics.counter("server.errors").inc()
            return 500, _error(exc), {}
        except ReproError as exc:
            return 400, _error(exc), {}

    def _reject(self, message: str) -> tuple[int, dict, dict]:
        """A 429 backpressure answer with Retry-After."""
        self.metrics.counter(
            "server.rejected", "requests shed with HTTP 429").inc()
        body = {
            "error": message,
            "type": "Backpressure",
            "retry_after_seconds": self.config.retry_after,
        }
        headers = {
            "Retry-After": str(max(1, math.ceil(self.config.retry_after))),
        }
        return 429, body, headers

    def admit(self) -> bool:
        """Try to take an admission slot (POST routes only)."""
        return self._gate.acquire(blocking=False)

    def readmit(self) -> None:
        self._gate.release()


# ----------------------------------------------------------------------
# request validation helpers
# ----------------------------------------------------------------------

def _error(exc: Exception) -> dict:
    return {"error": str(exc), "type": type(exc).__name__}


def _require_str(payload: dict, key: str) -> str:
    value = payload.get(key)
    if not isinstance(value, str) or not value.strip():
        raise _BadRequest(f"{key!r} must be a non-empty string")
    return value


def _require_str_list(payload: dict, key: str) -> list[str]:
    value = payload.get(key)
    if isinstance(value, str):
        value = [value]
    if (not isinstance(value, list) or not value
            or not all(isinstance(item, str) for item in value)):
        raise _BadRequest(f"{key!r} must be a non-empty list of strings")
    return value


def _optional_str_list(payload: dict, key: str) -> list[str]:
    value = payload.get(key)
    if value is None:
        return []
    if isinstance(value, str):
        value = [value]
    if (not isinstance(value, list)
            or not all(isinstance(item, str) for item in value)):
        raise _BadRequest(f"{key!r} must be a list of strings")
    return value


def _parse_aliases(raw: Any) -> AliasSet | None:
    if raw is None:
        return None
    if not isinstance(raw, dict) or not all(
            isinstance(k, str) and isinstance(v, str)
            for k, v in raw.items()):
        raise _BadRequest(
            "'aliases' must be an object of prefix -> namespace")
    return AliasSet(Alias(prefix, namespace)
                    for prefix, namespace in raw.items())


def _spo(item: Any) -> tuple[str, str, str]:
    if (not isinstance(item, (list, tuple)) or len(item) != 3
            or not all(isinstance(part, str) for part in item)):
        raise _BadRequest(
            "each triple must be a [subject, predicate, object] "
            "list of strings")
    return item[0], item[1], item[2]


# ----------------------------------------------------------------------
# the HTTP front end
# ----------------------------------------------------------------------

class _HTTPServer(ThreadingHTTPServer):
    """Threading server tuned for graceful drain.

    Handler threads are non-daemon and joined on ``server_close``, so
    ``stop()`` returns only after every in-flight request finished.
    """

    daemon_threads = False
    block_on_close = True
    allow_reuse_address = True
    app: "ReproServer"


class _Handler(BaseHTTPRequestHandler):
    """Thin HTTP adapter; all logic lives on :class:`ReproServer`."""

    protocol_version = "HTTP/1.1"
    server_version = "repro-rdf"
    # Idle keep-alive connections release their thread after this many
    # seconds, bounding how long a drain can take.
    timeout = 5
    # Headers and body go out in separate writes; without TCP_NODELAY
    # the body write stalls on the client's delayed ACK (~40 ms per
    # request on loopback).
    disable_nagle_algorithm = True

    # -- plumbing ------------------------------------------------------

    @property
    def app(self) -> ReproServer:
        return self.server.app  # type: ignore[attr-defined]

    def log_message(self, format: str, *args: Any) -> None:
        self.app.observer.log.debug(
            "http %s", format % args,
            extra={"client": self.address_string()})

    def _send_json(self, status: int, body: dict,
                   headers: dict | None = None) -> None:
        data = json.dumps(body).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(data)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        if self.app._draining:
            self.send_header("Connection", "close")
            self.close_connection = True
        self.end_headers()
        self.wfile.write(data)

    def _read_body(self) -> bytes:
        """Consume the request body.

        Always called before responding — leftover body bytes on a
        keep-alive connection would be misread as the next request
        line.
        """
        length = int(self.headers.get("Content-Length") or 0)
        if length <= 0:
            return b""
        return self.rfile.read(length)

    @staticmethod
    def _parse_json(raw: bytes) -> dict:
        if not raw:
            raise _BadRequest("request needs a JSON body")
        try:
            payload = json.loads(raw)
        except (ValueError, UnicodeDecodeError) as exc:
            raise _BadRequest(f"body is not valid JSON: {exc}") from None
        if not isinstance(payload, dict):
            raise _BadRequest("JSON body must be an object")
        return payload

    # -- routes --------------------------------------------------------

    _POST_ROUTES = {
        "/match": "_do_match",
        "/insert": "_do_insert",
        "/delete": "_do_delete",
    }

    def do_GET(self) -> None:
        app = self.app
        app.metrics.counter("server.requests").inc()
        if self.path == "/metrics":
            data = app.metrics.prometheus_text().encode("utf-8")
            self.send_response(200)
            self.send_header("Content-Type",
                             "text/plain; version=0.0.4; charset=utf-8")
            self.send_header("Content-Length", str(len(data)))
            self.end_headers()
            self.wfile.write(data)
            return
        if self.path in ("/healthz", "/health"):
            status, body = app._do_healthz()
            self._send_json(status, body)
            return
        if self.path == "/stats":
            status, body = app._do_stats()
            self._send_json(status, body)
            return
        self._send_json(404, {"error": f"no such route: {self.path}",
                              "type": "NotFound"})

    def do_POST(self) -> None:
        app = self.app
        app.metrics.counter("server.requests").inc()
        route = self._POST_ROUTES.get(self.path)
        raw = self._read_body()
        if route is None:
            self._send_json(404, {"error": f"no such route: {self.path}",
                                  "type": "NotFound"})
            return
        if not app.admit():
            status, body, headers = app._reject(
                f"server saturated ({app.config.workers} workers + "
                f"{app.config.backlog} backlog in flight)")
            self._send_json(status, body, headers)
            return
        start = time.perf_counter()
        try:
            try:
                payload = self._parse_json(raw)
            except _BadRequest as exc:
                self._send_json(400, _error(exc))
                return
            status, body, headers = app._dispatch(
                getattr(app, route), payload)
            self._send_json(status, body, headers)
        finally:
            app.readmit()
            app.metrics.histogram(
                "server.latency_seconds",
                "wall time of admitted POST requests").observe(
                    time.perf_counter() - start)

"""The HTTP serving layer for SDO_RDF_MATCH.

The paper's system answers SDO_RDF_MATCH queries from inside Oracle,
where concurrent sessions are the database's own business.  Our SQLite
substitute is an embedded library, so this module supplies the missing
serving tier — stdlib only — on top of the concurrency primitives in
:mod:`repro.db.pool`:

* **readers**: a :class:`~repro.db.pool.ConnectionPool` of read-only
  connections, each wrapped in its own :class:`RDFStore` (plan cache,
  statistics, and term caches are per-connection; the acquire-time
  snoop invalidates them when the writer commits);
* **writer**: a :class:`~repro.db.pool.WriterQueue` — one thread, one
  writable connection, strict FIFO.  ``/insert`` and ``/delete`` are
  enqueued as jobs and answered when their transaction commits;
* **admission control**: a bounded gate (``workers + backlog``
  in-flight POSTs).  Saturation answers **429** with a ``Retry-After``
  header — the server sheds load, it never queues without bound;
* **consistency**: every ``/match`` reads the serve-state
  ``write_version`` (:mod:`repro.server.state`) inside the same
  transaction as its query SQL, so responses carry a monotonic,
  torn-read-free snapshot version.

Routes::

    POST /match    {query, models, rulebases?, aliases?, filter?,
                    order_by?, limit?}       -> {rows, count, data_version}
    POST /match/batch  {queries: [<match body>, ...]}
                   -> {results: [{rows, count, cached?} | {error, type}],
                       count, errors, data_version}
                   one admission ticket, one pooled lease, one snapshot
                   data_version shared by every sub-result; per-query
                   errors are isolated, the deadline is batch-wide
    POST /insert   {model, triples, create?} -> {created, count, write_version}
    POST /delete   {model, triple, force?}   -> {removed, write_version}
    GET  /stats    pool/writer/admission gauges + metrics snapshot
    GET  /metrics  Prometheus text exposition
    GET  /healthz  live/ready/degraded health (503 only when unhealthy;
                   ?check=live and ?check=ready for probe splits)
    GET  /debug/slow          the slow-request log (full traces)
    GET  /debug/trace/<id>    one request's trace; ?format=chrome emits
                              the Chrome trace-event JSON array

Three request headers make the layer **resilient end to end**:

``X-Deadline-Ms``
    the client's time budget.  It becomes a monotonic
    :class:`~repro.obs.reqctx.Deadline` on the request trace; the
    admission gate rejects already-expired requests with 504 before
    spending a worker, pool acquires and writer-queue waits bound
    themselves by the remaining budget, and in-flight SQL is aborted
    by a progress-handler watchdog
    (:meth:`~repro.db.connection.Database.deadline_scope`).  A 504
    still files its partial trace in the slow-request log.
``Idempotency-Key``
    exactly-once writes.  ``/insert`` and ``/delete`` record their
    outcome in the ``rdf_idempotency$`` ledger **inside the same
    transaction** as the mutation; a retry after a dropped connection
    replays the recorded outcome instead of applying the write twice.
``X-Priority``
    shedding order (0-9, default 5).  While the server is *degraded*
    (writer queue or pool saturated, error rate past threshold —
    :mod:`repro.server.health`), requests below the priority floor
    are shed with 429 first, before the admission gate's blanket
    backpressure.

Responses sent **before the request body was read** (404 on unknown
routes, pre-admission 429/504) carry ``Connection: close`` — the
unread body would desync keep-alive framing on the next request.

Every request is **request-scoped observable**: an incoming
``X-Request-Id`` header is honored (or an id is minted), echoed on the
response, stamped onto every span the request opens — across the pool
and the writer thread — and used to key the slow-request log.  A
request slower than ``ServerConfig.slow_threshold`` is captured with
its span tree, query text, plan-cache status, EXPLAIN, and pool-/queue-
wait breakdowns; ``GET /debug/slow`` serves the capture.

Shutdown is a graceful drain: the listener stops accepting, in-flight
requests finish (handler threads are joined), queued writes run to
completion, then the pool and writer close.
"""

from __future__ import annotations

import json
import math
import socket
import sys
import threading
import time
import urllib.parse
from concurrent.futures import TimeoutError as FutureTimeoutError
from dataclasses import dataclass, field
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import IO, Any, Callable

from repro.cache import ResultCache, normalized_key
from repro.cache.result_cache import estimate_bytes
from repro.core.sharded import ShardedRDFStore
from repro.core.store import RDFStore
from repro.db.connection import Database
from repro.db.faults import (
    POINT_RESPONSE,
    FaultInjector,
    InjectedDisconnect,
)
from repro.db.pool import ConnectionPool, WriterQueue
from repro.errors import (
    DeadlineExceededError,
    ModelNotFoundError,
    ParseError,
    PoolTimeoutError,
    QueryError,
    ReplicaError,
    ReproError,
    StorageError,
    TermError,
    WriterShutdownError,
)
from repro.inference.match import sdo_rdf_match
from repro.obs.logjson import JsonFormatter, get_logger
from repro.obs.metrics import MetricsRegistry
from repro.obs.observer import NULL_OBSERVER, Observer
from repro.obs.reqctx import (
    DEADLINE_HEADER,
    DEFAULT_PRIORITY,
    IDEMPOTENCY_KEY_HEADER,
    PRIORITY_HEADER,
    REQUEST_ID_HEADER,
    RequestTrace,
    activate,
    clean_idempotency_key,
    clean_request_id,
    current_trace,
    deactivate,
    parse_deadline_ms,
    parse_priority,
)
from repro.obs.slowlog import (
    DEFAULT_CAPACITY as SLOW_CAPACITY,
    DEFAULT_RECENT as RECENT_CAPACITY,
    DEFAULT_SLOW_THRESHOLD as SLOW_THRESHOLD,
    SlowRequestLog,
    chrome_trace_events,
)
from repro.rdf.namespaces import Alias, AliasSet
from repro.rdf.triple import Triple
from repro.replica.manager import ReplicaManager
from repro.server.health import (
    DEGRADED,
    UNHEALTHY,
    HealthMonitor,
    HealthReport,
)
from repro.server.state import (
    DEFAULT_IDEMPOTENCY_CAPACITY,
    bump_write_version,
    ensure_serve_state,
    lookup_idempotent,
    read_write_version,
    record_idempotent,
)

#: Durability profiles the server accepts: concurrent readers need WAL.
_WAL_PROFILES = ("durable", "paranoid")


class _BadRequest(ReproError):
    """Malformed request body or parameters (HTTP 400)."""


class _CachedMatch:
    """One cached ``/match`` answer.

    ``rows``/``count`` are the JSON-ready payload (``/match/batch``
    splices them into its own envelope); ``hit_body`` memoizes the
    fully encoded ``/match`` hit response on first use, so steady-state
    hits skip ``json.dumps`` entirely.  The bytes are identical for
    every hit on this entry — the ``data_version`` in the body is part
    of the version the entry is keyed under, so it cannot change while
    the entry lives.  The unlocked lazy write is a benign race: two
    threads encode the same bytes.
    """

    __slots__ = ("rows", "count", "hit_body")

    def __init__(self, rows: list, count: int) -> None:
        self.rows = rows
        self.count = count
        self.hit_body: bytes | None = None


@dataclass
class ServerConfig:
    """Everything the serving layer is configured by.

    :param path: the database file.  Must be file-backed — readers and
        the writer are separate connections sharing the WAL.
    :param host: bind address (default loopback).
    :param port: TCP port; 0 picks an ephemeral port (tests).
    :param workers: read-pool size == queries executing concurrently.
    :param backlog: extra POSTs admitted beyond ``workers``; they wait
        up to ``pool_timeout`` for a reader before 429.
    :param writer_queue: bound on enqueued write jobs.
    :param durability: ``durable`` or ``paranoid`` (WAL required for
        the N-readers + 1-writer model).
    :param observe: attach a shared :class:`Observer` to every
        connection (SQL timing, spans) — the server's request metrics
        are collected either way.
    :param pool_timeout: seconds an admitted query waits for a reader.
    :param request_timeout: seconds a write request waits for its
        job's commit before answering 503 (the job still runs).
    :param retry_after: suggested client backoff reported on 429.
    :param slow_threshold: seconds at/past which a request's full
        trace is captured into the slow-request log (``/debug/slow``).
    :param slow_capacity: slow traces retained (newest win).
    :param recent_capacity: recent traces (any speed) retained for
        ``/debug/trace/<id>`` lookup.
    :param access_log: emit one JSON access-log line per request
        through :mod:`repro.obs.logjson` (off by default).
    :param access_log_stream: where access-log lines go (default
        stderr; tests pass a ``StringIO``).
    :param faults: optional :class:`~repro.db.faults.FaultInjector`
        shared by the pool, the writer queue, and the response path —
        the chaos harness's hook into the serving layer.
    :param idempotency_capacity: ``rdf_idempotency$`` ledger rows
        kept before the oldest are pruned.
    :param shed_priority_below: while degraded, POSTs with
        ``X-Priority`` below this floor are shed first (default: the
        header's default priority, so unlabeled traffic is never
        priority-shed).
    :param health_window: seconds of outcomes in the rolling
        error-rate window.
    :param error_rate_threshold: 5xx fraction at/past which the
        window degrades the server.
    :param health_min_requests: outcomes required before the error
        rate counts.
    :param degraded_queue_fraction: writer-queue depth / capacity
        at/past which the server reports degraded.
    :param degraded_pool_fraction: pool leases / size at/past which
        the server reports degraded.
    :param shards: partition ``rdf_link$`` across this many shard
        files (``<path>.shard<k>``) behind a
        :class:`~repro.core.sharded.ShardedRDFStore` — one writer
        queue and one read pool *per shard*, scatter-gather /match
        (see ``docs/sharding.md``).  1 (the default) keeps the
        single-file engine.
    :param replica: maintain one shared in-memory compressed read
        replica (``docs/replica.md``) across the read pool.  Eligible
        ``/match`` queries are answered from dict-encoded per-predicate
        arrays; a stale replica falls back to SQL on the same snapshot
        while a background refresher — woken by the pool's
        ``data_version`` snoop — rebuilds it.  Incompatible with
        ``shards > 1`` (VALUE_IDs are shard-local).
    :param replica_max_bytes: byte cap on the replica's resident
        partitions (LRU eviction); ``None`` means uncapped.
    :param result_cache: keep one shared
        :class:`~repro.cache.ResultCache` of complete ``/match``
        responses, keyed on the normalized query shape and the durable
        serve-state write_version (the per-shard version *vector* in
        sharded mode) — a repeated hot read skips parsing, planning,
        and SQL entirely.  Composes with ``replica`` (the tiered read
        path is cache -> replica -> SQL) and with ``shards``.  See
        ``docs/result_cache.md``.
    :param result_cache_max_bytes: byte cap on cached result sets
        (LRU eviction); ``None`` means the cache's default (64 MiB).
    :param batch_limit: maximum sub-queries accepted by one
        ``POST /match/batch`` body.
    """

    path: str
    host: str = "127.0.0.1"
    port: int = 0
    workers: int = 4
    backlog: int = 8
    writer_queue: int = 64
    durability: str = "durable"
    observe: bool = False
    pool_timeout: float = 2.0
    request_timeout: float = 30.0
    retry_after: float = 0.5
    slow_threshold: float = SLOW_THRESHOLD
    slow_capacity: int = SLOW_CAPACITY
    recent_capacity: int = RECENT_CAPACITY
    access_log: bool = False
    access_log_stream: IO[str] | None = field(
        default=None, repr=False, compare=False)
    faults: FaultInjector | None = field(
        default=None, repr=False, compare=False)
    idempotency_capacity: int = DEFAULT_IDEMPOTENCY_CAPACITY
    shed_priority_below: int = DEFAULT_PRIORITY
    health_window: float = 30.0
    error_rate_threshold: float = 0.5
    health_min_requests: int = 10
    degraded_queue_fraction: float = 0.8
    degraded_pool_fraction: float = 1.0
    shards: int = 1
    replica: bool = False
    replica_max_bytes: int | None = None
    result_cache: bool = False
    result_cache_max_bytes: int | None = None
    batch_limit: int = 100

    def __post_init__(self) -> None:
        if self.path == ":memory:":
            raise StorageError(
                "the server needs a file-backed database; :memory: "
                "cannot be shared across connections")
        if self.durability not in _WAL_PROFILES:
            raise StorageError(
                f"durability {self.durability!r} cannot serve "
                "concurrent readers; pick one of "
                f"{', '.join(_WAL_PROFILES)} (WAL journaling)")
        if self.workers < 1:
            raise StorageError("server needs workers >= 1")
        if self.backlog < 0:
            raise StorageError("server backlog must be >= 0")
        if self.slow_threshold < 0:
            raise StorageError("slow_threshold must be >= 0 seconds")
        if self.slow_capacity < 1 or self.recent_capacity < 1:
            raise StorageError("slow/recent capacities must be >= 1")
        if self.idempotency_capacity < 1:
            raise StorageError("idempotency_capacity must be >= 1")
        if not 0 <= self.shed_priority_below <= 10:
            raise StorageError("shed_priority_below must be in 0..10")
        if self.shards < 1:
            raise StorageError("server needs shards >= 1")
        if self.replica and self.shards > 1:
            raise ReplicaError(
                "the in-memory replica cannot serve a sharded store: "
                "VALUE_IDs are shard-local (see docs/replica.md); "
                "pick --replica or --shards, not both")
        if self.replica_max_bytes is not None and self.replica_max_bytes <= 0:
            raise ReplicaError("replica_max_bytes must be positive")
        if (self.result_cache_max_bytes is not None
                and self.result_cache_max_bytes <= 0):
            raise StorageError("result_cache_max_bytes must be positive")
        if self.batch_limit < 1:
            raise StorageError("batch_limit must be >= 1")


class ReproServer:
    """The serving layer: pool + writer + HTTP front end.

    Usage::

        server = ReproServer(ServerConfig(path="universe.db"))
        server.start()          # returns once the port is bound
        ...
        server.stop()           # graceful drain

    or blocking, from the CLI: ``server.run()``.
    """

    def __init__(self, config: ServerConfig) -> None:
        self.config = config
        if config.observe:
            self.observer: Observer = Observer()
            self.metrics = self.observer.metrics
        else:
            self.observer = NULL_OBSERVER
            self.metrics = MetricsRegistry()
        self.slowlog = SlowRequestLog(
            threshold=config.slow_threshold,
            capacity=config.slow_capacity,
            recent=config.recent_capacity)
        self._access = get_logger("server.access")
        self._access_handler: Any = None
        if config.access_log:
            self._access_handler = self._attach_access_log()
        self.pool: ConnectionPool | None = None
        self.writer: WriterQueue | None = None
        self.engine: ShardedRDFStore | None = None
        self.replica: ReplicaManager | None = None
        # One app-level cache shared by every handler thread, keyed on
        # the durable write_version (never the pooled readers' local
        # data_version counters, which are not comparable across
        # connections).  Survives stop()/start() cycles by design —
        # version keys are durable, so reuse is safe.
        self.result_cache: ResultCache | None = None
        if config.result_cache:
            self.result_cache = ResultCache(
                max_bytes=config.result_cache_max_bytes)
        self._http: _HTTPServer | None = None
        self._serve_thread: threading.Thread | None = None
        self._gate = threading.BoundedSemaphore(
            config.workers + config.backlog)
        self._draining = False
        self._started_at = 0.0
        self.health = HealthMonitor(
            window=config.health_window,
            error_threshold=config.error_rate_threshold,
            min_requests=config.health_min_requests,
            queue_fraction=config.degraded_queue_fraction,
            pool_fraction=config.degraded_pool_fraction)

    def _attach_access_log(self):
        """Give the access logger its own JSON-lines handler.

        Self-contained on purpose: ``--access-log`` must work without
        any global logging configuration, and must not double-emit
        when one exists (``propagate`` off).
        """
        import logging

        handler = logging.StreamHandler(
            self.config.access_log_stream
            if self.config.access_log_stream is not None else sys.stderr)
        handler.setFormatter(JsonFormatter())
        self._access.addHandler(handler)
        self._access.setLevel(logging.INFO)
        self._access.propagate = False
        return handler

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    def _writer_factory(self) -> RDFStore:
        """Build the writer session (runs inside the writer thread)."""
        database = Database(
            self.config.path, durability=self.config.durability,
            observer=self.observer if self.observer.enabled else None,
            faults=self.config.faults)
        store = RDFStore(database, observe=self.config.observe,
                         replica=False)
        ensure_serve_state(database)
        return store

    def start(self) -> "ReproServer":
        """Open the writer, the pool, and the listener (non-blocking)."""
        if self._http is not None:
            raise StorageError("server already started")
        if self.config.access_log and self._access_handler is None:
            self._access_handler = self._attach_access_log()
        if self.config.shards > 1:
            # Sharded engine: per-shard writer queues and read pools
            # live inside the engine; the single-file pool/writer stay
            # None and every route branches on ``self.engine``.
            self.engine = ShardedRDFStore(
                self.config.path,
                observe=False,
                durability=self.config.durability,
                shards=self.config.shards,
                writer_queue=self.config.writer_queue,
                pool_size=self.config.workers,
                pool_timeout=self.config.pool_timeout,
                writer_init=lambda store:
                    ensure_serve_state(store.database))
        else:
            self.writer = WriterQueue(
                self._writer_factory, maxsize=self.config.writer_queue,
                observer=self.observer,
                faults=self.config.faults).start()
            if self.config.replica:
                # One manager shared by every pooled reader.  Fallback
                # mode: a stale lease answers from SQL (same snapshot)
                # and queues the model for the background refresher —
                # a serving thread never pays for a rebuild.
                self.replica = ReplicaManager(
                    max_bytes=self.config.replica_max_bytes,
                    refresh="fallback")

            def wrap(db: Database) -> RDFStore:
                store = RDFStore(db, observe=False, replica=False)
                if self.replica is not None:
                    store.attach_replica(self.replica)
                return store

            def invalidate(store: RDFStore) -> None:
                store.values.invalidate_cache()
                if self.replica is not None:
                    # The acquire-time data_version snoop saw a commit:
                    # wake the refresher to re-check replica freshness.
                    self.replica.note_commit()

            self.pool = ConnectionPool(
                self.config.path, size=self.config.workers,
                durability=self.config.durability,
                timeout=self.config.pool_timeout,
                observer=self.observer,
                wrap=wrap,
                invalidate=invalidate,
                faults=self.config.faults)
            if self.replica is not None:
                pool = self.pool
                self.replica.start_refresher(lambda: pool.lease())
        self._http = _HTTPServer(
            (self.config.host, self.config.port), _Handler)
        self._http.app = self
        self._draining = False
        self._started_at = time.monotonic()
        self._serve_thread = threading.Thread(
            target=self._http.serve_forever,
            kwargs={"poll_interval": 0.05},
            name="repro-serve", daemon=True)
        self._serve_thread.start()
        return self

    @property
    def address(self) -> tuple[str, int]:
        """The bound (host, port) — the real port when 0 was asked."""
        if self._http is None:
            raise StorageError("server is not running")
        host, port = self._http.server_address[:2]
        return str(host), int(port)

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"

    def stop(self, drain: bool = True) -> None:
        """Graceful shutdown: drain requests, flush writes, close."""
        if self._http is None:
            return
        self._draining = True
        self._http.shutdown()          # stop accepting new connections
        self._http.server_close()      # join in-flight handler threads
        self._serve_thread.join(timeout=30.0)
        self._http = None
        self._serve_thread = None
        if self.replica is not None:
            self.replica.stop_refresher()
            self.replica = None
        if self.writer is not None:
            self.writer.stop(drain=drain)
            self.writer = None
        if self.pool is not None:
            self.pool.close()
            self.pool = None
        if self.engine is not None:
            self.engine.close()
            self.engine = None
        if self._access_handler is not None:
            self._access.removeHandler(self._access_handler)
            self._access_handler.close()
            self._access_handler = None

    def run(self) -> None:
        """Start and block until KeyboardInterrupt (CLI entry point)."""
        self.start()
        try:
            while True:
                time.sleep(0.5)
        except KeyboardInterrupt:
            pass
        finally:
            self.stop()

    def __enter__(self) -> "ReproServer":
        if self._http is None:
            self.start()
        return self

    def __exit__(self, *_exc_info: object) -> None:
        self.stop()

    # ------------------------------------------------------------------
    # routes
    # ------------------------------------------------------------------

    @staticmethod
    def _match_spec(payload: dict) -> tuple:
        """Validate one match request body (shared with /match/batch)."""
        query = _require_str(payload, "query")
        models = _require_str_list(payload, "models")
        rulebases = _optional_str_list(payload, "rulebases")
        aliases = _parse_aliases(payload.get("aliases"))
        filter_ = payload.get("filter")
        if filter_ is not None and not isinstance(filter_, str):
            raise _BadRequest("filter must be a string")
        order_by = payload.get("order_by")
        if order_by is not None and not isinstance(order_by, str):
            raise _BadRequest("order_by must be a string")
        limit = payload.get("limit")
        if limit is not None and not isinstance(limit, int):
            raise _BadRequest("limit must be an integer")
        return query, models, rulebases, aliases, filter_, order_by, \
            limit

    def _cache_key(self, spec: tuple) -> tuple | None:
        """The normalized cache key of a validated spec, or None when
        the cache is off.  Raises QueryError (HTTP 400) on anything
        the match parsers would reject — never silently uncached."""
        if self.result_cache is None:
            return None
        query, models, rulebases, aliases, filter_, order_by, limit = \
            spec
        return normalized_key(query, models, rulebases, aliases,
                              filter_, order_by, limit)

    def _do_match(self, payload: dict,
                  meta: dict | None = None) -> tuple[int, dict]:
        spec = self._match_spec(payload)
        if self.engine is not None:
            return self._sharded_match(spec)
        query, models, rulebases, aliases, filter_, order_by, limit = \
            spec
        cache = self.result_cache
        cache_key = self._cache_key(spec)
        request = current_trace()
        deadline = request.deadline if request is not None else None
        start = time.perf_counter()
        cached = None
        with self.pool.lease() as store:
            database = store.database
            guard = None
            try:
                # One read transaction covers the version read AND the
                # query SQL: the reported data_version is exactly the
                # snapshot the rows came from.  The deadline scope arms
                # a progress-handler watchdog that aborts the query SQL
                # the moment the budget runs out.  The cache probe runs
                # inside the same transaction, so a hit is provably the
                # snapshot named by ``version`` — the entry was stored
                # under this exact write_version.
                with database.deadline_scope(deadline) as guard:
                    with database.transaction():
                        version = read_write_version(database)
                        if cache_key is not None:
                            cached = cache.lookup(cache_key, version)
                        if cached is None:
                            rows = sdo_rdf_match(
                                store, query, models,
                                rulebases=rulebases, aliases=aliases,
                                filter=filter_, order_by=order_by,
                                limit=limit)
            except DeadlineExceededError:
                if guard is not None and guard.interrupted:
                    self.metrics.counter(
                        "sql.interrupts",
                        "statements aborted mid-flight by a deadline "
                        "watchdog").inc()
                    if request is not None:
                        request.annotate("sql_interrupted", True)
                raise
            if (cached is None and request is not None
                    and time.perf_counter() - start
                    >= self.slowlog.threshold):
                # Still holding the lease: capture the plan the slow
                # query would (re)use.  The plan cache makes this a
                # cheap lookup, not a second compile.
                self._capture_slow_match(
                    request, store, query, models, rulebases, aliases,
                    filter_, order_by, limit)
        if cached is not None:
            if request is not None:
                request.annotate("rows", cached.count)
                request.annotate("data_version", version)
                request.annotate("engine", "cache")
            if cached.hit_body is None:
                cached.hit_body = json.dumps(
                    {"rows": cached.rows, "count": cached.count,
                     "data_version": version,
                     "cached": True}).encode("utf-8")
            return 200, cached.hit_body
        rows_payload = [row.as_dict() for row in rows]
        if request is not None:
            request.annotate("rows", len(rows))
            request.annotate("data_version", version)
        body = {
            "rows": rows_payload,
            "count": len(rows),
            "data_version": version,
        }
        if cache_key is not None:
            cache.store(cache_key, version,
                        _CachedMatch(rows_payload, len(rows)),
                        nbytes=estimate_bytes(rows_payload) + 64)
            body["cached"] = False
        return 200, body

    def _sharded_match(self, spec: tuple) -> tuple[int, dict]:
        """``/match`` on the sharded engine: scatter-gather + vector.

        ``data_version`` is the *sum* of the per-shard write versions
        and ``data_version_vector`` the vector itself.  Unlike the
        single-file path no single transaction covers every shard —
        the vector is read immediately before the query, naming the
        newest snapshot each shard could have served, not an atomic
        cross-shard cut (the trade-off is documented in
        ``docs/sharding.md``).  Cache entries key on the whole vector
        (equality only), so a commit on any shard invalidates; the
        vector is read *before* the scatter, so a racing write can
        only make a stored entry newer than its key, never older.
        """
        query, models, rulebases, aliases, filter_, order_by, limit = \
            spec
        cache = self.result_cache
        cache_key = self._cache_key(spec)
        request = current_trace()
        vector = self._write_version_vector()
        version = sum(vector)
        if cache_key is not None:
            cached = cache.lookup(cache_key, tuple(vector))
            if cached is not None:
                if request is not None:
                    request.annotate("rows", cached.count)
                    request.annotate("data_version", version)
                    request.annotate("data_version_vector", vector)
                    request.annotate("engine", "cache")
                if cached.hit_body is None:
                    cached.hit_body = json.dumps(
                        {"rows": cached.rows, "count": cached.count,
                         "data_version": version,
                         "data_version_vector": vector,
                         "cached": True}).encode("utf-8")
                return 200, cached.hit_body
        rows = sdo_rdf_match(
            self.engine, query, models, rulebases=rulebases,
            aliases=aliases, filter=filter_, order_by=order_by,
            limit=limit)
        rows_payload = [row.as_dict() for row in rows]
        if request is not None:
            request.annotate("rows", len(rows))
            request.annotate("data_version", version)
            request.annotate("data_version_vector", vector)
        body = {
            "rows": rows_payload,
            "count": len(rows),
            "data_version": version,
            "data_version_vector": vector,
        }
        if cache_key is not None:
            cache.store(cache_key, tuple(vector),
                        _CachedMatch(rows_payload, len(rows)),
                        nbytes=estimate_bytes(rows_payload) + 64)
            body["cached"] = False
        return 200, body

    def _write_version_vector(self) -> list[int]:
        """Per-shard serve-state write versions (pool reads)."""
        vector = []
        for index in range(self.engine.shard_count):
            with self.engine.shard_session(index) as store:
                vector.append(read_write_version(store.database))
        return vector

    def _capture_slow_match(self, request: RequestTrace,
                            store: RDFStore, query: str,
                            models: list[str], rulebases: list[str],
                            aliases: AliasSet | None, filter_: Any,
                            order_by: Any, limit: Any) -> None:
        """Attach plan/EXPLAIN context to a slow /match's trace."""
        try:
            explanation = sdo_rdf_match(
                store, query, models, rulebases=rulebases,
                aliases=aliases, filter=filter_, order_by=order_by,
                limit=limit, explain=True)
        except ReproError:  # pragma: no cover - the query just ran
            return
        request.annotate("explain", explanation.render())
        request.annotate("plan_sql", explanation.plan.sql)

    # ------------------------------------------------------------------
    # POST /match/batch — the multi-query protocol
    # ------------------------------------------------------------------

    def _do_match_batch(self, payload: dict,
                        meta: dict | None = None) -> tuple[int, dict]:
        """N match queries, one request.

        The whole batch costs one admission ticket (taken before the
        body was read, like any POST), one pooled read lease, and one
        snapshot: every sub-result shares the ``data_version`` read at
        the top of the transaction.  Per-query errors are isolated —
        a bad sub-query answers with its own ``{error, type}`` object
        while its siblings still return rows.  The request deadline is
        batch-wide: expiry aborts the remaining sub-queries and the
        whole request answers 504 (the batch is read-only, so a retry
        — with or without an ``Idempotency-Key`` — is always safe).
        """
        raw = payload.get("queries")
        if not isinstance(raw, list) or not raw:
            raise _BadRequest(
                "'queries' must be a non-empty list of match objects")
        if len(raw) > self.config.batch_limit:
            raise _BadRequest(
                f"batch of {len(raw)} queries exceeds the server's "
                f"batch_limit of {self.config.batch_limit}")
        if self.engine is not None:
            return self._sharded_match_batch(raw)
        request = current_trace()
        deadline = request.deadline if request is not None else None
        cache = self.result_cache
        results: list[dict] = []
        with self.pool.lease() as store:
            database = store.database
            guard = None
            try:
                # One read transaction covers the version read and
                # every sub-query: all N answers come from the same
                # snapshot — the consistency /match gives one query,
                # extended across the batch.
                with database.deadline_scope(deadline) as guard:
                    with database.transaction():
                        version = read_write_version(database)
                        for item in raw:
                            results.append(self._one_batch_query(
                                store, item, version, cache))
            except DeadlineExceededError:
                if guard is not None and guard.interrupted:
                    self.metrics.counter(
                        "sql.interrupts",
                        "statements aborted mid-flight by a deadline "
                        "watchdog").inc()
                    if request is not None:
                        request.annotate("sql_interrupted", True)
                raise
        errors = sum(1 for entry in results if "error" in entry)
        if request is not None:
            request.annotate("batch", len(results))
            request.annotate("batch_errors", errors)
            request.annotate("data_version", version)
        return 200, {
            "results": results,
            "count": len(results),
            "errors": errors,
            "data_version": version,
        }

    def _one_batch_query(self, store: RDFStore, item: Any,
                         version: int, cache: ResultCache | None,
                         vector: tuple | None = None) -> dict:
        """One sub-query of a batch: answer or isolated error object.

        Two error families are deliberately NOT isolated and abort the
        whole batch: DeadlineExceededError (the client's budget is for
        the request, not per sub-query) and _BadRequest (a malformed
        entry is a protocol error, answered 400 like any other
        malformed body).  Execution errors — unknown model, a query
        the parser rejects — isolate to their own ``{error, type}``
        object so siblings still answer.
        """
        try:
            if not isinstance(item, dict):
                raise _BadRequest(
                    "each batch entry must be a match object")
            spec = self._match_spec(item)
            cache_key = self._cache_key(spec)
            cache_version = vector if vector is not None else version
            if cache_key is not None:
                cached = cache.lookup(cache_key, cache_version)
                if cached is not None:
                    return {"rows": cached.rows,
                            "count": cached.count,
                            "cached": True}
            query, models, rulebases, aliases, filter_, order_by, \
                limit = spec
            rows = sdo_rdf_match(
                store, query, models, rulebases=rulebases,
                aliases=aliases, filter=filter_, order_by=order_by,
                limit=limit)
            rows_payload = [row.as_dict() for row in rows]
            entry = {"rows": rows_payload, "count": len(rows)}
            if cache_key is not None:
                cache.store(cache_key, cache_version,
                            _CachedMatch(rows_payload, len(rows)),
                            nbytes=estimate_bytes(rows_payload) + 64)
                entry["cached"] = False
            return entry
        except (DeadlineExceededError, _BadRequest):
            raise
        except ReproError as exc:
            return _error(exc)

    def _sharded_match_batch(self, raw: list) -> tuple[int, dict]:
        """The batch on a sharded engine: one version vector, read
        once before the first sub-query, shared by every answer —
        the same snapshot discipline as :meth:`_sharded_match`."""
        request = current_trace()
        vector = self._write_version_vector()
        version = sum(vector)
        cache = self.result_cache
        results = [self._one_batch_query(self.engine, item, version,
                                         cache, vector=tuple(vector))
                   for item in raw]
        errors = sum(1 for entry in results if "error" in entry)
        if request is not None:
            request.annotate("batch", len(results))
            request.annotate("batch_errors", errors)
            request.annotate("data_version", version)
            request.annotate("data_version_vector", vector)
        return 200, {
            "results": results,
            "count": len(results),
            "errors": errors,
            "data_version": version,
            "data_version_vector": vector,
        }

    def _do_insert(self, payload: dict,
                   meta: dict | None = None) -> tuple[int, dict]:
        model = _require_str(payload, "model")
        create = bool(payload.get("create", False))
        raw = payload.get("triples")
        if not isinstance(raw, list) or not raw:
            raise _BadRequest(
                "triples must be a non-empty list of [s, p, o]")
        triples = [Triple.from_text(*_spo(item)) for item in raw]
        if self.engine is not None:
            return 200, self._sharded_insert(model, create, triples,
                                             meta)

        def mutate(store: RDFStore) -> dict:
            database = store.database
            created = 0
            if create and not store.model_exists(model):
                store.create_model(model)
            info = store.models.get(model)
            for triple in triples:
                result = store.parser.insert(info, triple)
                created += 1 if result.created else 0
            version = bump_write_version(database)
            return {"created": created, "count": len(triples),
                    "write_version": version}

        return 200, self._write(mutate, route="insert", meta=meta)

    def _do_delete(self, payload: dict,
                   meta: dict | None = None) -> tuple[int, dict]:
        model = _require_str(payload, "model")
        subject, predicate, obj = _spo(payload.get("triple"))
        force = bool(payload.get("force", False))

        def mutate(store: RDFStore) -> dict:
            database = store.database
            removed = store.remove_triple(
                model, subject, predicate, obj, force=force)
            version = bump_write_version(database)
            return {"removed": removed, "write_version": version}

        if self.engine is not None:
            # A delete names one concrete subject, so it routes to
            # exactly one shard — the same single-shard write path a
            # single-file server runs, just on the owning partition.
            triple = Triple.from_text(subject, predicate, obj)
            shard = self.engine.shard_of_triple(model, triple)
            key = (meta or {}).get("idempotency_key")
            job = self._ledger_job(mutate, key, "delete")
            future = self.engine.submit(shard, job, timeout=0)
            outcome = dict(self._await_writes(
                [(shard, future)], "delete")[shard])
            outcome.setdefault("shard", shard)
            return 200, outcome

        return 200, self._write(mutate, route="delete", meta=meta)

    def _write(self, mutate: Callable[[RDFStore], dict],
               route: str = "write",
               meta: dict | None = None) -> dict:
        """Enqueue a write job and wait for its commit.

        ``mutate`` runs inside one write transaction together with the
        idempotency ledger: when the request carried an
        ``Idempotency-Key``, a recorded outcome is replayed without
        executing ``mutate`` at all, and a fresh outcome is recorded
        atomically with the mutation — exactly-once across retries.

        The wait for the commit is bounded by the request's remaining
        deadline budget; on expiry a still-queued job is cancelled
        (never applied), a running one keeps going and the 504 tells
        the client to retry with the same key to learn the outcome.
        """
        key = (meta or {}).get("idempotency_key")
        job = self._ledger_job(mutate, key, route)
        request = current_trace()
        deadline = request.deadline if request is not None else None
        future = self.writer.submit(job)  # PoolTimeoutError -> 429
        timeout = self.config.request_timeout
        if deadline is not None:
            timeout = deadline.bound(timeout)
        try:
            return future.result(timeout=timeout)
        except FutureTimeoutError:
            if deadline is None or not deadline.expired:
                raise
            if future.cancel():
                raise DeadlineExceededError(
                    f"deadline expired before the {route} job "
                    "started; the job was cancelled (not applied)"
                ) from None
            raise DeadlineExceededError(
                f"deadline expired waiting for the {route} commit; "
                "the job is still running — retry with the same "
                "Idempotency-Key to learn its outcome") from None

    def _ledger_job(self, mutate: Callable[[RDFStore], dict],
                    key: str | None,
                    route: str) -> Callable[[RDFStore], dict]:
        """Wrap ``mutate`` in one write transaction together with the
        idempotency ledger (the exactly-once contract of
        :meth:`_write`, shared by the per-shard write paths)."""
        capacity = self.config.idempotency_capacity

        def job(store: RDFStore) -> dict:
            database = store.database
            with database.transaction():
                if key is not None:
                    recorded = lookup_idempotent(database, key)
                    if recorded is not None:
                        self.metrics.counter(
                            "server.idempotent_replays",
                            "write retries answered from the "
                            "idempotency ledger").inc()
                        recorded["idempotent_replay"] = True
                        return recorded
                outcome = mutate(store)
                if key is not None:
                    record_idempotent(database, key, route, outcome,
                                      capacity)
            return outcome

        return job

    def _sharded_insert(self, model: str, create: bool,
                        triples: list[Triple],
                        meta: dict | None) -> dict:
        """``/insert`` fanned out to every shard that owns a subject.

        Each target shard commits its own write transaction (batch +
        idempotency ledger + write-version bump) on its own writer
        queue — batches for different shards commit in parallel.
        There is **no cross-shard atomicity**: a failure can leave
        some shards committed.  A retry with the same
        ``Idempotency-Key`` converges — committed shards replay their
        recorded outcome, the rest re-apply, and re-inserting an
        existing triple is a no-op (``created`` counts honestly).
        The trade-off is documented in ``docs/sharding.md``.
        """
        engine = self.engine
        if create and not engine.model_exists(model):
            try:
                engine.create_model(model)
            except ReproError:
                # Lost a create race against a concurrent request —
                # fine, as long as the model exists now.
                if not engine.model_exists(model):
                    raise
        groups: dict[int, list[Triple]] = {}
        for triple in triples:
            shard = engine.shard_of_triple(model, triple)
            groups.setdefault(shard, []).append(triple)
        key = (meta or {}).get("idempotency_key")

        def make_mutate(batch: list[Triple]):
            def mutate(store: RDFStore) -> dict:
                created = 0
                info = store.models.get(model)
                for triple in batch:
                    result = store.parser.insert(info, triple)
                    created += 1 if result.created else 0
                version = bump_write_version(store.database)
                return {"created": created, "count": len(batch),
                        "write_version": version}
            return mutate

        futures = []
        for shard in sorted(groups):
            job = self._ledger_job(make_mutate(groups[shard]), key,
                                   "insert")
            # timeout=0: a full shard queue is an immediate 429.
            futures.append(
                (shard, engine.submit(shard, job, timeout=0)))
        outcomes = self._await_writes(futures, "insert")
        body = {
            "created": sum(o["created"] for o in outcomes.values()),
            "count": sum(o["count"] for o in outcomes.values()),
            "write_version": sum(o["write_version"]
                                 for o in outcomes.values()),
            "shards": {str(shard): o["write_version"]
                       for shard, o in outcomes.items()},
        }
        if all(o.get("idempotent_replay") for o in outcomes.values()):
            body["idempotent_replay"] = True
        return body

    def _await_writes(self, futures: list[tuple[int, Any]],
                      route: str) -> dict[int, dict]:
        """Wait for per-shard write commits under one shared budget.

        One ``request_timeout`` (bounded by the request deadline)
        covers *all* shards together; on expiry still-queued jobs are
        cancelled (never applied), running ones keep going, and the
        504 tells the client to retry with the same Idempotency-Key.
        """
        request = current_trace()
        deadline = request.deadline if request is not None else None
        timeout = self.config.request_timeout
        if deadline is not None:
            timeout = deadline.bound(timeout)
        end = time.monotonic() + timeout
        outcomes: dict[int, dict] = {}
        for shard, future in futures:
            remaining = end - time.monotonic()
            try:
                outcomes[shard] = future.result(
                    timeout=max(0.0, remaining))
            except FutureTimeoutError:
                for _, later in futures:
                    later.cancel()
                if deadline is None or not deadline.expired:
                    raise
                raise DeadlineExceededError(
                    f"deadline expired waiting for the {route} "
                    f"commit on shard {shard}; cancelled jobs were "
                    "not applied, running ones keep going — retry "
                    "with the same Idempotency-Key to learn the "
                    "outcome") from None
        return outcomes

    def _do_stats(self) -> tuple[int, dict]:
        gate_free = getattr(self._gate, "_value", None)
        self._sample_saturation()
        body = {
            "server": {
                "uptime_seconds": round(
                    time.monotonic() - self._started_at, 3),
                "workers": self.config.workers,
                "backlog": self.config.backlog,
                "durability": self.config.durability,
                "observe": self.config.observe,
                "draining": self._draining,
                "admission_free": gate_free,
                "engine": ("sharded" if self.engine is not None
                           else "single"),
                "shards": self.config.shards,
                "replica": self.replica is not None,
                "result_cache": self.result_cache is not None,
            },
            "pool": self.pool.stats() if self.pool else {},
            "writer": self.writer.stats() if self.writer else {},
            "health": self._assess_health().as_dict(),
            "slow_requests": self.slowlog.stats(),
            "metrics": self.metrics.as_dict(),
        }
        if self.result_cache is not None:
            body["result_cache"] = self.result_cache.stats()
        if self.engine is not None:
            body["shards"] = self._shard_overview()
        if self.pool is not None:
            body["versions"] = self._read_versions()
            if self.replica is not None:
                # Same lease family as the versions read: the per-model
                # "stale" flags compare against a live store.
                try:
                    with self.pool.lease(timeout=1.0) as store:
                        body["replica"] = self.replica.status(store)
                except PoolTimeoutError:
                    body["replica"] = self.replica.status()
        return 200, body

    def _read_versions(self) -> dict:
        """``data_version``/``write_version`` off one pool lease.

        A saturated pool answers nulls rather than blocking ``/stats``
        behind query traffic.
        """
        try:
            with self.pool.lease(timeout=1.0) as store:
                return {
                    "data_version": store.database.data_version,
                    "write_version": read_write_version(store.database),
                }
        except PoolTimeoutError:
            return {"data_version": None, "write_version": None}

    def _shard_overview(self) -> list[dict]:
        """Per-shard depth/version rows for ``/stats``.

        Leasing before reading stats means each row's pool gauges are
        live (the lease forces the lazy pool into existence and snoops
        ``data_version``), and the version numbers come from the same
        lease.
        """
        versions = []
        for index in range(self.engine.shard_count):
            with self.engine.shard_session(index) as store:
                versions.append((read_write_version(store.database),
                                 store.database.data_version))
        overview = self.engine.shard_stats()
        for stat, (write_version, data_version) in zip(overview,
                                                       versions):
            stat["write_version"] = write_version
            stat["data_version"] = data_version
        return overview

    def _do_debug_slow(self, query_string: str) -> tuple[int, Any]:
        """``GET /debug/slow[?limit=N]`` — the slow-request log."""
        params = urllib.parse.parse_qs(query_string)
        limit = None
        if "limit" in params:
            try:
                limit = int(params["limit"][0])
            except (ValueError, IndexError):
                raise _BadRequest("limit must be an integer") from None
        return 200, {
            **self.slowlog.stats(),
            "requests": self.slowlog.entries(limit),
        }

    def _do_debug_trace(self, request_id: str,
                        query_string: str) -> tuple[int, Any]:
        """``GET /debug/trace/<id>[?format=chrome]`` — one trace."""
        entry = self.slowlog.find(request_id)
        if entry is None:
            return 404, {
                "error": f"no trace retained for request "
                         f"{request_id!r} (slow ring "
                         f"{self.config.slow_capacity}, recent ring "
                         f"{self.config.recent_capacity})",
                "type": "NotFound",
            }
        params = urllib.parse.parse_qs(query_string)
        if params.get("format", [""])[0] == "chrome":
            label = (f"{entry.get('method', '')} {entry.get('path', '')} "
                     f"[{request_id}]")
            return 200, chrome_trace_events(
                entry.get("spans", ()), label=label)
        return 200, entry

    def _assess_health(self) -> HealthReport:
        """Grade the serving layer from its live gauges.

        Sharded mode aggregates pessimistically: *every* shard writer
        must run, the deepest queue is the reported depth, and pool
        occupancy sums across shards against the summed capacity.
        """
        if self.engine is not None:
            engine = self.engine
            writers = [engine.writer(index)
                       for index in range(engine.shard_count)]
            return self.health.assess(
                writer_running=all(w.running for w in writers),
                writer_depth=max(w.depth for w in writers),
                queue_limit=self.config.writer_queue,
                pool_in_use=self._pool_in_use() or 0,
                pool_size=self.config.workers * engine.shard_count)
        writer, pool = self.writer, self.pool
        return self.health.assess(
            writer_running=writer is not None and writer.running,
            writer_depth=writer.depth if writer is not None else 0,
            queue_limit=self.config.writer_queue,
            pool_in_use=pool.in_use if pool is not None else 0,
            pool_size=self.config.workers)

    def _queue_depth(self) -> int | None:
        """Writer-queue depth gauge (deepest shard in sharded mode)."""
        if self.engine is not None:
            return max(self.engine.writer(index).depth
                       for index in range(self.engine.shard_count))
        return self.writer.depth if self.writer is not None else None

    def _pool_in_use(self) -> int | None:
        """Read leases out across all pools (summed over shards)."""
        if self.engine is not None:
            return self.engine.pool_in_use()
        return self.pool.in_use if self.pool is not None else None

    def _do_healthz(self, query_string: str = "") -> tuple[int, dict]:
        """Live/ready/degraded health.

        ``?check=live`` answers 200 whenever the process responds at
        all; ``?check=ready`` answers by readiness only (degraded is
        still ready — it serves, shedding low priority).  The full
        report additionally runs a bounded integrity probe.
        """
        params = urllib.parse.parse_qs(query_string)
        check = params.get("check", [""])[0]
        report = self._assess_health()
        if check == "live":
            return 200, {"status": report.state, "live": True}
        if check == "ready":
            return ((200 if report.ready else 503),
                    {"status": report.state, "ready": report.ready})
        if self.engine is not None:
            writer_ok = all(
                self.engine.writer(index).running
                for index in range(self.engine.shard_count))
        else:
            writer_ok = self.writer is not None and self.writer.running
        integrity = "skipped (writer down)"
        if writer_ok:
            try:
                integrity = self._integrity_probe()
            except PoolTimeoutError:
                # Saturated is busy, not broken.
                integrity = "skipped (pool busy)"
            except DeadlineExceededError:
                integrity = "skipped (deadline)"
            if integrity != "ok" and not integrity.startswith("skipped"):
                report = HealthReport(
                    UNHEALTHY,
                    [*report.reasons, f"integrity check: {integrity}"],
                    report.error_rate, report.window_requests)
        body = {
            "status": report.state,
            **report.as_dict(),
            "writer_running": writer_ok,
            "writer_depth": self._queue_depth(),
            "integrity": integrity,
        }
        return (200 if report.ready else 503), body

    def _integrity_probe(self) -> str:
        """A bounded ``PRAGMA quick_check`` — every shard in sharded
        mode, first failure wins."""
        if self.engine is not None:
            for index in range(self.engine.shard_count):
                with self.engine.pool(index).lease(
                        timeout=1.0) as store:
                    verdict = str(store.database.query_value(
                        "PRAGMA quick_check", default="failed"))
                if verdict != "ok":
                    return f"shard {index}: {verdict}"
            return "ok"
        with self.pool.lease(timeout=1.0) as store:
            return str(store.database.query_value(
                "PRAGMA quick_check", default="failed"))

    # ------------------------------------------------------------------
    # dispatch plumbing (called from the handler threads)
    # ------------------------------------------------------------------

    def _dispatch(self, fn: Callable[..., tuple[int, dict]],
                  payload: dict,
                  meta: dict | None = None) -> tuple[int, dict, dict]:
        """Run a route, mapping exceptions to HTTP statuses."""
        try:
            status, body = fn(payload, meta or {})
            return status, body, {}
        except DeadlineExceededError as exc:
            return self._deadline_exceeded(str(exc))
        except WriterShutdownError as exc:
            return 503, _error(exc), {}
        except PoolTimeoutError as exc:
            return self._reject(str(exc))
        except _BadRequest as exc:
            return 400, _error(exc), {}
        except ModelNotFoundError as exc:
            return 404, _error(exc), {}
        except (QueryError, ParseError, TermError) as exc:
            return 400, _error(exc), {}
        except FutureTimeoutError:
            return 503, {"error": "write did not commit within "
                         f"{self.config.request_timeout}s (still "
                         "queued)", "type": "Timeout"}, {}
        except StorageError as exc:
            self.metrics.counter("server.errors").inc()
            return 500, _error(exc), {}
        except ReproError as exc:
            return 400, _error(exc), {}

    def _deadline_exceeded(self, message: str) -> tuple[int, dict, dict]:
        """A 504 deadline answer with the same saturation context as
        the 429 path — *why* the budget ran out is usually load."""
        self.metrics.counter(
            "server.deadline_exceeded",
            "requests answered 504 after their deadline expired").inc()
        body = {
            "error": message,
            "type": "DeadlineExceeded",
            "queue_depth": self._queue_depth(),
            "queue_limit": self.config.writer_queue,
            "pool_in_use": self._pool_in_use(),
            "pool_size": self.config.workers,
            "admission_limit": self.config.workers + self.config.backlog,
            "admission_free": getattr(self._gate, "_value", None),
        }
        return 504, body, {}

    def _maybe_shed(self,
                    trace: RequestTrace) -> tuple[int, dict, dict] | None:
        """Degraded-mode priority shedding (before the admission gate).

        The priority check runs first so default-priority traffic
        never pays for a health assessment on the clean path.
        """
        if trace.priority >= self.config.shed_priority_below:
            return None
        report = self._assess_health()
        if report.state != DEGRADED:
            return None
        self.metrics.counter(
            "server.shed_degraded",
            "low-priority requests shed while degraded").inc()
        body = {
            "error": (f"server degraded ({'; '.join(report.reasons)}); "
                      f"shedding priority {trace.priority} < floor "
                      f"{self.config.shed_priority_below}"),
            "type": "DegradedShed",
            "health": report.as_dict(),
            "retry_after_seconds": self.config.retry_after,
        }
        headers = {
            "Retry-After": str(max(1, math.ceil(self.config.retry_after))),
        }
        return 429, body, headers

    def _reject(self, message: str) -> tuple[int, dict, dict]:
        """A 429 backpressure answer with Retry-After.

        The body carries the saturation context a client (or a human
        reading the log) needs to see *why*: current queue depth and
        pool occupancy against their limits.
        """
        self.metrics.counter(
            "server.rejected", "requests shed with HTTP 429").inc()
        body = {
            "error": message,
            "type": "Backpressure",
            "retry_after_seconds": self.config.retry_after,
            "queue_depth": self._queue_depth(),
            "queue_limit": self.config.writer_queue,
            "pool_in_use": self._pool_in_use(),
            "pool_size": self.config.workers,
            "admission_limit": self.config.workers + self.config.backlog,
            "admission_free": getattr(self._gate, "_value", None),
        }
        headers = {
            "Retry-After": str(max(1, math.ceil(self.config.retry_after))),
        }
        return 429, body, headers

    def admit(self) -> bool:
        """Try to take an admission slot (POST routes only).

        Every admission decision — granted or shed — samples the
        saturation gauges, so ``/metrics`` tracks queue depth and pool
        occupancy exactly as load arrives.
        """
        admitted = self._gate.acquire(blocking=False)
        self._sample_saturation()
        return admitted

    def readmit(self) -> None:
        self._gate.release()

    def _sample_saturation(self) -> None:
        """Refresh the queue-depth and pool-occupancy gauges.

        Sharded mode additionally exports one depth and one version
        gauge per shard, so saturation on a single hot partition is
        visible even when the aggregate looks healthy.
        """
        result_cache = self.result_cache
        if result_cache is not None:
            status = result_cache.stats()
            for name in ("entries", "bytes", "hits", "misses",
                         "stores", "evictions", "invalidations",
                         "rejects"):
                self.metrics.gauge(
                    f"result_cache.{name}",
                    f"result-cache {name} since start").set(
                        status[name])
        if self.engine is not None:
            engine = self.engine
            depths = []
            for index in range(engine.shard_count):
                depth = engine.writer(index).depth
                depths.append(depth)
                self.metrics.gauge(
                    f"shard{index}.queue_depth",
                    f"write jobs queued on shard {index}").set(depth)
            self.metrics.gauge(
                "server.queue_depth",
                "write jobs waiting in the writer queue "
                "(deepest shard)").set(max(depths))
            self.metrics.gauge(
                "pool.in_use",
                "read connections out on lease "
                "(all shards)").set(engine.pool_in_use())
            return
        writer, pool = self.writer, self.pool
        if writer is not None:
            self.metrics.gauge(
                "server.queue_depth",
                "write jobs waiting in the writer queue").set(
                    writer.depth)
        if pool is not None:
            self.metrics.gauge(
                "pool.in_use",
                "read connections out on lease").set(pool.in_use)
        replica = self.replica
        if replica is not None:
            status = replica.status()
            self.metrics.gauge(
                "replica.bytes",
                "resident replica partition bytes").set(status["bytes"])
            self.metrics.gauge(
                "replica.partitions",
                "resident per-predicate replica partitions").set(
                    status["partitions"])
            self.metrics.gauge(
                "replica.models",
                "models with a built replica").set(
                    len(status["models"]))
            for name in ("hits", "misses", "fallbacks", "builds",
                         "refreshes", "evictions", "refresh_errors"):
                self.metrics.gauge(
                    f"replica.{name}",
                    f"replica {name} since start").set(
                        status["counters"][name])

    # ------------------------------------------------------------------
    # request lifecycle (called from the handler threads)
    # ------------------------------------------------------------------

    def finish_request_trace(self, trace: RequestTrace,
                             status: int) -> None:
        """Book-keep one completed request: metrics, slow log, access
        log."""
        duration = trace.finish(status)
        self.health.observe(status)
        label = _route_label(trace.path)
        self.metrics.counter(f"server.requests.{label}").inc()
        self.metrics.histogram(
            f"server.endpoint.{label}.seconds",
            f"request wall time of {trace.method} {label}").observe(
                duration)
        # 504s force-capture: the partial trace of a deadline-expired
        # request is evidence, even when the budget was tiny.
        if self.slowlog.record(trace, force=status == 504):
            self.metrics.counter(
                "server.slow_requests",
                "requests captured past the slow threshold").inc()
        if self.config.access_log:
            self._access.info(
                "%s %s %d", trace.method, trace.path, status,
                extra={
                    "method": trace.method,
                    "path": trace.path,
                    "status": status,
                    "duration_ms": round(duration * 1000, 3),
                    "request_id": trace.request_id,
                    "worker": threading.current_thread().name,
                })


# ----------------------------------------------------------------------
# request validation helpers
# ----------------------------------------------------------------------

#: Fixed route -> metric-label table; anything else is "other" so 404
#: scans cannot explode the metric namespace.
_ROUTE_LABELS = {
    "/match": "match",
    "/match/batch": "match_batch",
    "/insert": "insert",
    "/delete": "delete",
    "/stats": "stats",
    "/metrics": "metrics",
    "/healthz": "healthz",
    "/health": "healthz",
    "/debug/slow": "debug_slow",
}


def _route_label(path: str) -> str:
    base = path.split("?", 1)[0]
    if base.startswith("/debug/trace/"):
        return "debug_trace"
    return _ROUTE_LABELS.get(base, "other")


def _error(exc: Exception) -> dict:
    return {"error": str(exc), "type": type(exc).__name__}


def _require_str(payload: dict, key: str) -> str:
    value = payload.get(key)
    if not isinstance(value, str) or not value.strip():
        raise _BadRequest(f"{key!r} must be a non-empty string")
    return value


def _require_str_list(payload: dict, key: str) -> list[str]:
    value = payload.get(key)
    if isinstance(value, str):
        value = [value]
    if (not isinstance(value, list) or not value
            or not all(isinstance(item, str) for item in value)):
        raise _BadRequest(f"{key!r} must be a non-empty list of strings")
    return value


def _optional_str_list(payload: dict, key: str) -> list[str]:
    value = payload.get(key)
    if value is None:
        return []
    if isinstance(value, str):
        value = [value]
    if (not isinstance(value, list)
            or not all(isinstance(item, str) for item in value)):
        raise _BadRequest(f"{key!r} must be a list of strings")
    return value


def _parse_aliases(raw: Any) -> AliasSet | None:
    if raw is None:
        return None
    if not isinstance(raw, dict) or not all(
            isinstance(k, str) and isinstance(v, str)
            for k, v in raw.items()):
        raise _BadRequest(
            "'aliases' must be an object of prefix -> namespace")
    return AliasSet(Alias(prefix, namespace)
                    for prefix, namespace in raw.items())


def _spo(item: Any) -> tuple[str, str, str]:
    if (not isinstance(item, (list, tuple)) or len(item) != 3
            or not all(isinstance(part, str) for part in item)):
        raise _BadRequest(
            "each triple must be a [subject, predicate, object] "
            "list of strings")
    return item[0], item[1], item[2]


# ----------------------------------------------------------------------
# the HTTP front end
# ----------------------------------------------------------------------

class _HTTPServer(ThreadingHTTPServer):
    """Threading server tuned for graceful drain.

    Handler threads are non-daemon and joined on ``server_close``, so
    ``stop()`` returns only after every in-flight request finished.
    """

    daemon_threads = False
    block_on_close = True
    allow_reuse_address = True
    app: "ReproServer"


class _Handler(BaseHTTPRequestHandler):
    """Thin HTTP adapter; all logic lives on :class:`ReproServer`."""

    protocol_version = "HTTP/1.1"
    server_version = "repro-rdf"
    # Idle keep-alive connections release their thread after this many
    # seconds, bounding how long a drain can take.
    timeout = 5
    # Headers and body go out in separate writes; without TCP_NODELAY
    # the body write stalls on the client's delayed ACK (~40 ms per
    # request on loopback).
    disable_nagle_algorithm = True

    # -- plumbing ------------------------------------------------------

    @property
    def app(self) -> ReproServer:
        return self.server.app  # type: ignore[attr-defined]

    def log_message(self, format: str, *args: Any) -> None:
        self.app.observer.log.debug(
            "http %s", format % args,
            extra={"client": self.address_string()})

    def _begin_request(self, method: str) -> RequestTrace:
        """Create and activate this request's trace context.

        The client's ``X-Request-Id`` is honored when usable; the id
        is echoed on the response either way.  The deadline and
        priority headers are parsed here so every later layer reads
        them off the trace; a garbled deadline is remembered for a 400
        (a client that sends a budget means it).
        """
        request_id = clean_request_id(
            self.headers.get(REQUEST_ID_HEADER))
        self._deadline_error: str | None = None
        deadline = None
        try:
            deadline = parse_deadline_ms(
                self.headers.get(DEADLINE_HEADER))
        except ValueError as exc:
            self._deadline_error = str(exc)
        trace = RequestTrace(
            request_id, method=method, path=self.path,
            deadline=deadline,
            priority=parse_priority(self.headers.get(PRIORITY_HEADER)))
        self._trace = trace
        self._token = activate(trace)
        return trace

    def _end_request(self, status: int) -> None:
        """Close the trace if no response ever finalized it (socket
        errors, handler bugs)."""
        self._finalize(status)

    def _finalize(self, status: int) -> None:
        """Deactivate and file the trace exactly once per request.

        Runs *before* the response bytes go out, so a client that got
        its answer can immediately find its own trace under
        ``/debug/trace/<id>`` — no read-after-write race.
        """
        if self._token is None:
            return
        deactivate(self._token)
        self._token = None
        self.app.finish_request_trace(self._trace, status)

    def _send_json(self, status: int, body: Any,
                   headers: dict | None = None,
                   close: bool = False) -> int:
        """Send a JSON response.

        ``close=True`` adds ``Connection: close`` — required whenever
        the response goes out before the request body was read, since
        the unread bytes would be parsed as the next request line on a
        kept-alive connection.  A ``bytes`` body is pre-encoded JSON
        (a result-cache hit) and is sent as-is.
        """
        data = (body if isinstance(body, bytes)
                else json.dumps(body).encode("utf-8"))
        self._finalize(status)
        faults = self.app.config.faults
        if faults is not None:
            try:
                faults.on_point(POINT_RESPONSE)
            except InjectedDisconnect:
                self._drop_mid_response(status, data)
                return status
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(data)))
        trace = getattr(self, "_trace", None)
        if trace is not None:
            self.send_header(REQUEST_ID_HEADER, trace.request_id)
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        if close or self.app._draining:
            self.send_header("Connection", "close")
            self.close_connection = True
        self.end_headers()
        self.wfile.write(data)
        return status

    def _drop_mid_response(self, status: int, data: bytes) -> None:
        """An injected mid-response connection drop (chaos harness).

        Sends the headers and *half* the body, then hard-closes the
        socket: the client sees a short read exactly as if the network
        died after the commit — the failure mode ``Idempotency-Key``
        retries exist for.
        """
        self.app.metrics.counter(
            "server.dropped_responses",
            "responses cut mid-body by an injected fault").inc()
        try:
            self.send_response(status)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(data)))
            trace = getattr(self, "_trace", None)
            if trace is not None:
                self.send_header(REQUEST_ID_HEADER, trace.request_id)
            self.end_headers()
            self.wfile.write(data[:len(data) // 2])
            self.wfile.flush()
        except OSError:
            pass
        finally:
            self.close_connection = True
            try:
                self.connection.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass

    def _read_body(self) -> bytes:
        """Consume the request body.

        Always called before responding — leftover body bytes on a
        keep-alive connection would be misread as the next request
        line.
        """
        length = int(self.headers.get("Content-Length") or 0)
        if length <= 0:
            return b""
        return self.rfile.read(length)

    @staticmethod
    def _parse_json(raw: bytes) -> dict:
        if not raw:
            raise _BadRequest("request needs a JSON body")
        try:
            payload = json.loads(raw)
        except (ValueError, UnicodeDecodeError) as exc:
            raise _BadRequest(f"body is not valid JSON: {exc}") from None
        if not isinstance(payload, dict):
            raise _BadRequest("JSON body must be an object")
        return payload

    # -- routes --------------------------------------------------------

    _POST_ROUTES = {
        "/match": "_do_match",
        "/match/batch": "_do_match_batch",
        "/insert": "_do_insert",
        "/delete": "_do_delete",
    }

    def do_GET(self) -> None:
        app = self.app
        app.metrics.counter("server.requests").inc()
        self._begin_request("GET")
        status = 500
        try:
            status = self._route_get(app)
        finally:
            self._end_request(status)

    def _route_get(self, app: ReproServer) -> int:
        path, _, query_string = self.path.partition("?")
        if self._deadline_error is not None:
            return self._send_json(
                400, {"error": self._deadline_error,
                      "type": "BadDeadline"})
        if path == "/metrics":
            app._sample_saturation()
            self._finalize(200)
            data = app.metrics.prometheus_text().encode("utf-8")
            self.send_response(200)
            self.send_header("Content-Type",
                             "text/plain; version=0.0.4; charset=utf-8")
            self.send_header("Content-Length", str(len(data)))
            self.send_header(REQUEST_ID_HEADER,
                             self._trace.request_id)
            self.end_headers()
            self.wfile.write(data)
            return 200
        if path in ("/healthz", "/health"):
            status, body = app._do_healthz(query_string)
            return self._send_json(status, body)
        if path == "/stats":
            status, body = app._do_stats()
            return self._send_json(status, body)
        if path == "/debug/slow":
            try:
                status, body = app._do_debug_slow(query_string)
            except _BadRequest as exc:
                return self._send_json(400, _error(exc))
            return self._send_json(status, body)
        if path.startswith("/debug/trace/"):
            request_id = urllib.parse.unquote(
                path[len("/debug/trace/"):])
            status, body = app._do_debug_trace(request_id,
                                               query_string)
            return self._send_json(status, body)
        return self._send_json(
            404, {"error": f"no such route: {self.path}",
                  "type": "NotFound"})

    def do_POST(self) -> None:
        # Ordering is the resilience contract: route, deadline, shed,
        # and admission are all decided BEFORE the body is read, so a
        # rejected request costs no body I/O — and every pre-body
        # response carries Connection: close (the unread body would
        # desync keep-alive framing).
        app = self.app
        app.metrics.counter("server.requests").inc()
        route = self._POST_ROUTES.get(self.path)
        trace = self._begin_request("POST")
        status = 500
        try:
            if route is None:
                status = self._send_json(
                    404, {"error": f"no such route: {self.path}",
                          "type": "NotFound"}, close=True)
                return
            if self._deadline_error is not None:
                status = self._send_json(
                    400, {"error": self._deadline_error,
                          "type": "BadDeadline"}, close=True)
                return
            deadline = trace.deadline
            if deadline is not None and deadline.expired:
                # Admission gate: never spend a worker on a request
                # whose client already gave up.
                code, body, headers = app._deadline_exceeded(
                    f"deadline ({deadline.budget * 1000:.0f}ms "
                    "budget) expired before admission")
                status = self._send_json(code, body, headers,
                                         close=True)
                return
            shed = app._maybe_shed(trace)
            if shed is not None:
                code, body, headers = shed
                status = self._send_json(code, body, headers,
                                         close=True)
                return
            if not app.admit():
                code, body, headers = app._reject(
                    f"server saturated ({app.config.workers} workers "
                    f"+ {app.config.backlog} backlog in flight)")
                status = self._send_json(code, body, headers,
                                         close=True)
                return
            start = time.perf_counter()
            try:
                raw = self._read_body()
                meta = {
                    "idempotency_key": clean_idempotency_key(
                        self.headers.get(IDEMPOTENCY_KEY_HEADER)),
                }
                # The response goes out only after the http.request
                # span closed and the trace is filed (_finalize inside
                # _send_json) — a client that has its answer can read
                # its own trace immediately.
                try:
                    with app.observer.span("http.request",
                                           method="POST",
                                           path=self.path):
                        payload = self._parse_json(raw)
                        code, body, headers = app._dispatch(
                            getattr(app, route), payload, meta)
                except _BadRequest as exc:
                    status = self._send_json(400, _error(exc))
                    return
                status = self._send_json(code, body, headers)
            finally:
                app.readmit()
                app.metrics.histogram(
                    "server.latency_seconds",
                    "wall time of admitted POST requests").observe(
                        time.perf_counter() - start)
        finally:
            self._end_request(status)

"""The serve-state tables: write version and the idempotency ledger.

Python-level :attr:`~repro.db.connection.Database.data_version`
counters are per-connection, and SQLite's ``PRAGMA data_version``
values are also per-connection — neither is comparable *across* the
pooled readers.  The serving layer therefore keeps one row of durable
state, ``rdf_serve_state$``::

    (id = 1, write_version INTEGER)

The writer bumps ``write_version`` **inside** each write transaction;
a reader selects it **inside** the same read transaction as its query
SQL.  Because both happen atomically, the value each ``/match``
response reports is exactly the number of write transactions its
snapshot includes — monotonic and torn-read-free across any reader
connection, which is what the end-to-end consistency tests assert.

The same startup hook also creates ``rdf_idempotency$``, the bounded
**exactly-once write ledger**: a write request carrying an
``Idempotency-Key`` header records its outcome here inside the same
transaction as the mutation itself, so a client that retries after a
dropped connection (it cannot know whether the first attempt
committed) gets the recorded outcome replayed instead of applying the
write twice.  The ledger is capacity-bounded; the oldest entries are
pruned — inside write transactions, so the bound itself is
crash-consistent.
"""

from __future__ import annotations

import json
import time
from typing import Any

from repro.core.schema import IDEMPOTENCY_SQL, IDEMPOTENCY_TABLE
from repro.db.connection import Database
from repro.errors import StorageError

#: The serving layer's single-row state table (central-schema style name).
SERVE_STATE_TABLE = "rdf_serve_state$"

#: Idempotency-ledger rows kept before the oldest are pruned.
DEFAULT_IDEMPOTENCY_CAPACITY = 4096


def ensure_serve_state(database: Database) -> None:
    """Create the state tables and their rows (writer, at startup)."""
    with database.transaction():
        database.execute(
            f'CREATE TABLE IF NOT EXISTS "{SERVE_STATE_TABLE}" ('
            "  id            INTEGER PRIMARY KEY CHECK (id = 1),"
            "  write_version INTEGER NOT NULL"
            ")")
        database.execute(
            f'INSERT OR IGNORE INTO "{SERVE_STATE_TABLE}" '
            "(id, write_version) VALUES (1, 0)")
        for statement in IDEMPOTENCY_SQL.strip().split(";"):
            if statement.strip():
                database.execute(statement)


def bump_write_version(database: Database) -> int:
    """Increment the write version (call inside the write transaction).

    Returns the new version so the writer can report it without a
    second round trip.
    """
    database.execute(
        f'UPDATE "{SERVE_STATE_TABLE}" '
        "SET write_version = write_version + 1 WHERE id = 1")
    return read_write_version(database)


def read_write_version(database: Database) -> int:
    """The current write version (read inside the query transaction).

    Returns -1 when the table does not exist yet — a database that was
    never served; callers treat that as "version unknown".
    """
    try:
        return int(database.query_value(
            f'SELECT write_version FROM "{SERVE_STATE_TABLE}" '
            "WHERE id = 1", default=-1))
    except StorageError:
        return -1


# ----------------------------------------------------------------------
# the idempotency ledger
# ----------------------------------------------------------------------

def lookup_idempotent(database: Database,
                      key: str) -> dict[str, Any] | None:
    """The recorded outcome for ``key``, or None if never applied.

    Called by the writer *inside* the write transaction, before the
    mutation: a hit means some earlier attempt with this key already
    committed — replay its outcome, execute nothing.
    """
    row = database.query_one(
        f'SELECT outcome_json FROM "{IDEMPOTENCY_TABLE}" '
        "WHERE key = ?", (key,))
    if row is None:
        return None
    return json.loads(row["outcome_json"])


def record_idempotent(database: Database, key: str, route: str,
                      outcome: dict[str, Any],
                      capacity: int = DEFAULT_IDEMPOTENCY_CAPACITY
                      ) -> None:
    """File ``outcome`` under ``key`` (inside the write transaction).

    Committing the ledger row atomically with the mutation is the
    whole mechanism: either both are durable (a retry replays) or
    neither is (a retry re-executes) — there is no window where the
    write applied but the ledger missed it.  The ledger is bounded:
    rows beyond ``capacity`` are pruned oldest-first, in the same
    transaction.
    """
    seq = int(database.query_value(
        f'SELECT IFNULL(MAX(seq), 0) + 1 FROM "{IDEMPOTENCY_TABLE}"',
        default=1))
    database.execute(
        f'INSERT OR REPLACE INTO "{IDEMPOTENCY_TABLE}" '
        "(key, seq, route, outcome_json, created_at) "
        "VALUES (?, ?, ?, ?, ?)",
        (key, seq, route, json.dumps(outcome), time.time()))
    database.execute(
        f'DELETE FROM "{IDEMPOTENCY_TABLE}" WHERE key IN ('
        f'  SELECT key FROM "{IDEMPOTENCY_TABLE}" '
        "   ORDER BY seq DESC LIMIT -1 OFFSET ?)",
        (max(1, capacity),))


def idempotency_stats(database: Database) -> dict[str, Any]:
    """Ledger size (for ``/stats`` and tests)."""
    try:
        return {"entries": int(database.query_value(
            f'SELECT COUNT(*) FROM "{IDEMPOTENCY_TABLE}"',
            default=0))}
    except StorageError:  # table not created yet
        return {"entries": 0}

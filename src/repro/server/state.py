"""The serve-state table: one monotonic write version for all readers.

Python-level :attr:`~repro.db.connection.Database.data_version`
counters are per-connection, and SQLite's ``PRAGMA data_version``
values are also per-connection — neither is comparable *across* the
pooled readers.  The serving layer therefore keeps one row of durable
state, ``rdf_serve_state$``::

    (id = 1, write_version INTEGER)

The writer bumps ``write_version`` **inside** each write transaction;
a reader selects it **inside** the same read transaction as its query
SQL.  Because both happen atomically, the value each ``/match``
response reports is exactly the number of write transactions its
snapshot includes — monotonic and torn-read-free across any reader
connection, which is what the end-to-end consistency tests assert.
"""

from __future__ import annotations

from repro.db.connection import Database
from repro.errors import StorageError

#: The serving layer's single-row state table (central-schema style name).
SERVE_STATE_TABLE = "rdf_serve_state$"


def ensure_serve_state(database: Database) -> None:
    """Create the state table and its single row (writer, at startup)."""
    with database.transaction():
        database.execute(
            f'CREATE TABLE IF NOT EXISTS "{SERVE_STATE_TABLE}" ('
            "  id            INTEGER PRIMARY KEY CHECK (id = 1),"
            "  write_version INTEGER NOT NULL"
            ")")
        database.execute(
            f'INSERT OR IGNORE INTO "{SERVE_STATE_TABLE}" '
            "(id, write_version) VALUES (1, 0)")


def bump_write_version(database: Database) -> int:
    """Increment the write version (call inside the write transaction).

    Returns the new version so the writer can report it without a
    second round trip.
    """
    database.execute(
        f'UPDATE "{SERVE_STATE_TABLE}" '
        "SET write_version = write_version + 1 WHERE id = 1")
    return read_write_version(database)


def read_write_version(database: Database) -> int:
    """The current write version (read inside the query transaction).

    Returns -1 when the table does not exist yet — a database that was
    never served; callers treat that as "version unknown".
    """
    try:
        return int(database.query_value(
            f'SELECT write_version FROM "{SERVE_STATE_TABLE}" '
            "WHERE id = 1", default=-1))
    except StorageError:
        return -1

"""The :class:`Observer` facade: one handle for all instrumentation.

One :class:`Observer` bundles a metrics registry, a tracer, a SQL
instrumenter, and a logger.  The :class:`~repro.db.connection.Database`
carries one (default: the shared no-op :data:`NULL_OBSERVER`), and every
layer above reaches it through the database — so a single
``RDFStore(observe=True)`` switch lights up SQL timing, spans, and
counters across the whole stack::

    store = RDFStore(observe=True)
    ...
    snapshot = store.observer.snapshot()     # JSON-ready dict
    text = store.observer.metrics.prometheus_text()

The disabled path is engineered for near-zero cost: ``NULL_OBSERVER``
is a singleton whose ``enabled`` is False; its tracer returns one
shared no-op span and its registry one shared no-op instrument, and the
``Database`` execute path checks one attribute before doing anything
observational.
"""

from __future__ import annotations

import logging
import os
from typing import Any

from repro.obs.logjson import get_logger
from repro.obs.metrics import NULL_REGISTRY, MetricsRegistry
from repro.obs.sqltrace import DEFAULT_SLOW_THRESHOLD, SQLInstrumenter
from repro.obs.tracing import NULL_TRACER, Span, Tracer

#: Environment variable enabling observation without code changes.
OBSERVE_ENV_VAR = "REPRO_OBSERVE"


def observe_from_env() -> bool:
    """True when ``REPRO_OBSERVE`` asks for an enabled observer."""
    value = os.environ.get(OBSERVE_ENV_VAR, "").strip().lower()
    return value not in ("", "0", "off", "false", "no")


class Observer:
    """A live observer: metrics + tracer + SQL stats + logger.

    :param slow_sql_threshold: seconds past which a statement's query
        plan is captured (see :class:`~repro.obs.sqltrace.SQLInstrumenter`).
    :param span_capacity: tracer ring-buffer size.
    :param capture_plans: toggle EXPLAIN QUERY PLAN capture.
    """

    enabled = True

    def __init__(self,
                 slow_sql_threshold: float = DEFAULT_SLOW_THRESHOLD,
                 span_capacity: int = 2048,
                 capture_plans: bool = True) -> None:
        self.metrics = MetricsRegistry()
        self.tracer = Tracer(capacity=span_capacity,
                             on_finish=self._span_finished)
        self.sql = SQLInstrumenter(self.metrics,
                                   slow_threshold=slow_sql_threshold,
                                   capture_plans=capture_plans)
        self.log = get_logger()
        self._span_seconds = self.metrics.histogram(
            "span.seconds", "wall time of every finished span")

    def _span_finished(self, span: Span) -> None:
        self._span_seconds.observe(span.duration)
        self.metrics.counter(f"span.{span.name}").inc()
        if self.log.isEnabledFor(logging.DEBUG):
            self.log.debug("span %s finished", span.name, extra={
                "span": span.name,
                "duration_s": round(span.duration, 6),
                "span_attributes": {k: v for k, v
                                    in span.attributes.items()
                                    if isinstance(v, (str, int, float,
                                                      bool, type(None)))},
            })

    def span(self, name: str, **attributes: Any) -> Span:
        """Shorthand for ``observer.tracer.span(...)``."""
        return self.tracer.span(name, **attributes)

    def counter(self, name: str, help: str = ""):
        """Shorthand for ``observer.metrics.counter(...)``."""
        return self.metrics.counter(name, help)

    def histogram(self, name: str, help: str = ""):
        """Shorthand for ``observer.metrics.histogram(...)``."""
        return self.metrics.histogram(name, help)

    def snapshot(self, top_statements: int = 25,
                 last_spans: int = 50) -> dict[str, Any]:
        """The JSON-ready state dump used by ``repro stats --json``."""
        return {
            "enabled": True,
            "metrics": self.metrics.as_dict(),
            "sql": self.sql.as_dict(top=top_statements),
            "spans": {
                "finished": len(self.tracer),
                "dropped": self.tracer.dropped,
                "last": [span.as_dict()
                         for span in self.tracer.last(last_spans)],
            },
        }

    def reset(self) -> None:
        """Drop all collected state (bench trial isolation)."""
        self.metrics.reset()
        self.sql.reset()
        self.tracer.clear()
        self._span_seconds = self.metrics.histogram(
            "span.seconds", "wall time of every finished span")


class NullObserver(Observer):
    """The disabled observer — all components are shared no-ops."""

    enabled = False

    def __init__(self) -> None:
        self.metrics = NULL_REGISTRY
        self.tracer = NULL_TRACER
        self.sql = None  # The Database never touches sql when disabled.
        self.log = get_logger()

    def span(self, name: str, **attributes: Any):  # type: ignore[override]
        return self.tracer.span(name)

    def counter(self, name: str, help: str = ""):
        return self.metrics.counter(name)

    def snapshot(self, top_statements: int = 25,
                 last_spans: int = 50) -> dict[str, Any]:
        return {"enabled": False}

    def reset(self) -> None:
        pass


#: The process-wide disabled observer; identity-comparable.
NULL_OBSERVER = NullObserver()

"""Structured logging: stdlib ``logging`` with a JSON-lines formatter.

The library logs under the ``repro`` logger hierarchy
(``repro.db``, ``repro.match``, ``repro.bulkload``, ...) and stays
silent by default — the root ``repro`` logger gets a
:class:`logging.NullHandler` so applications without logging config see
nothing.

Switch it on with the ``REPRO_LOG`` environment variable or
:func:`configure_logging`::

    REPRO_LOG=debug repro --verbose query ...   # JSON lines on stderr
    REPRO_LOG=info:text ...                     # plain text instead

Accepted values: a level name (``debug``/``info``/``warning``/...),
optionally suffixed ``:text`` for the classic formatter, or ``0``/
``off`` to disable.  Each JSON line carries timestamp, level, logger,
message, and any ``extra={...}`` fields the call site attached.
"""

from __future__ import annotations

import json
import logging
import os
import sys
import time
from typing import IO

#: Environment variable switching library logging on.
LOG_ENV_VAR = "REPRO_LOG"

#: Root logger name of the library.
ROOT_LOGGER = "repro"

#: LogRecord fields that are plumbing, not payload.
_RESERVED = frozenset(vars(logging.LogRecord(
    "", 0, "", 0, "", (), None)).keys()) | {
        "message", "asctime", "taskName"}


class JsonFormatter(logging.Formatter):
    """Format records as one JSON object per line."""

    def format(self, record: logging.LogRecord) -> str:
        payload: dict = {
            "ts": round(record.created, 6),
            "time": time.strftime(
                "%Y-%m-%dT%H:%M:%S",
                time.gmtime(record.created)) + f".{int(record.msecs):03d}Z",
            "level": record.levelname.lower(),
            "logger": record.name,
            "message": record.getMessage(),
        }
        for key, value in record.__dict__.items():
            if key in _RESERVED or key.startswith("_"):
                continue
            try:
                json.dumps(value)
            except (TypeError, ValueError):
                value = repr(value)
            payload[key] = value
        if record.exc_info and record.exc_info[0] is not None:
            payload["exception"] = self.formatException(record.exc_info)
        return json.dumps(payload, default=repr)


def get_logger(name: str = "") -> logging.Logger:
    """A logger under the library hierarchy (``repro`` or ``repro.x``)."""
    return logging.getLogger(
        f"{ROOT_LOGGER}.{name}" if name else ROOT_LOGGER)


def configure_logging(level: int | str | None = None,
                      stream: IO[str] | None = None,
                      json_lines: bool = True) -> logging.Logger:
    """Configure the ``repro`` logger tree; returns the root logger.

    :param level: explicit level; None reads ``REPRO_LOG`` (and leaves
        logging disabled when it is unset/off).
    :param stream: handler target, default ``sys.stderr``.
    :param json_lines: JSON-lines formatter (default) or plain text.
    """
    if level is None:
        setting = os.environ.get(LOG_ENV_VAR, "").strip().lower()
        if not setting or setting in ("0", "off", "false", "no"):
            return _silence()
        if setting.endswith(":text"):
            json_lines = False
            setting = setting[:-len(":text")]
        resolved = logging.getLevelName(setting.upper())
        if not isinstance(resolved, int):
            resolved = logging.INFO
        level = resolved
    elif isinstance(level, str):
        resolved = logging.getLevelName(level.upper())
        level = resolved if isinstance(resolved, int) else logging.INFO
    root = logging.getLogger(ROOT_LOGGER)
    _clear_handlers(root)
    handler = logging.StreamHandler(stream if stream is not None
                                    else sys.stderr)
    if json_lines:
        handler.setFormatter(JsonFormatter())
    else:
        handler.setFormatter(logging.Formatter(
            "%(asctime)s %(levelname)s %(name)s %(message)s"))
    root.addHandler(handler)
    root.setLevel(level)
    root.propagate = False
    return root


def _silence() -> logging.Logger:
    """Default state: the library never emits through the root logger."""
    root = logging.getLogger(ROOT_LOGGER)
    if not root.handlers:
        root.addHandler(logging.NullHandler())
    return root


def _clear_handlers(logger: logging.Logger) -> None:
    for handler in list(logger.handlers):
        logger.removeHandler(handler)
        handler.close()


# Silence by default on import: "no logging config, no output".
_silence()

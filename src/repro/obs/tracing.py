"""Span-based tracing with nesting and a ring-buffer exporter.

A *span* is one timed region of work with a name, attributes, and a
position in the call tree::

    with tracer.span("match.execute", model="cia") as span:
        rows = run_query()
        span.set("rows", len(rows))

Spans nest: a span opened while another is active records it as its
parent, so exporters can rebuild the tree (``repro trace`` renders it by
indenting on depth).  Finished spans land in a bounded ring buffer —
memory use is capped no matter how long the process runs; the newest
spans win.

The disabled path (:data:`NULL_TRACER`) hands out one shared reusable
no-op span, so ``with tracer.span(...)`` costs two method calls that do
nothing.  Hot loops that want even that gone can guard on
``tracer.enabled``.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Any, Callable, Iterator

from repro.obs.reqctx import current_trace

#: Default ring-buffer capacity (finished spans retained).
DEFAULT_CAPACITY = 2048


class Span:
    """One timed region; use as a context manager via ``Tracer.span``."""

    __slots__ = ("name", "attributes", "span_id", "parent_id", "depth",
                 "start_time", "duration", "error", "thread_id",
                 "_tracer", "_start")

    def __init__(self, tracer: "Tracer", name: str, span_id: int,
                 parent_id: int | None, depth: int,
                 attributes: dict[str, Any]) -> None:
        self._tracer = tracer
        self.name = name
        self.span_id = span_id
        self.parent_id = parent_id
        self.depth = depth
        self.attributes = attributes
        self.start_time = time.time()
        self.duration = 0.0
        self.error: str | None = None
        self.thread_id = threading.get_ident()
        self._start = time.perf_counter()

    def set(self, key: str, value: Any) -> None:
        """Attach/overwrite one attribute."""
        self.attributes[key] = value

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, exc_type, exc, _tb) -> None:
        self.duration = time.perf_counter() - self._start
        if exc_type is not None:
            self.error = f"{exc_type.__name__}: {exc}"
        self._tracer._finish(self)

    def as_dict(self) -> dict[str, Any]:
        return {
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "depth": self.depth,
            "name": self.name,
            "start_time": self.start_time,
            "duration": self.duration,
            "error": self.error,
            "thread_id": self.thread_id,
            "attributes": dict(self.attributes),
        }

    def __repr__(self) -> str:
        return (f"Span({self.name!r}, id={self.span_id}, "
                f"duration={self.duration:.6f})")


class Tracer:
    """Creates spans, tracks nesting, retains finished spans.

    Safe to share across threads: nesting is tracked per thread (a
    span's parent is the innermost open span *of the same thread*, so
    concurrent server handlers never see each other's frames), while
    span-id allocation and the finished-span ring buffer are guarded
    by one small lock.

    :param capacity: ring-buffer size for finished spans.
    :param on_finish: optional hook called with each finished span —
        the :class:`repro.obs.observer.Observer` uses it to feed span
        durations into the metrics registry.
    """

    enabled = True

    def __init__(self, capacity: int = DEFAULT_CAPACITY,
                 on_finish: Callable[[Span], None] | None = None) -> None:
        self._finished: deque[Span] = deque(maxlen=capacity)
        self._local = threading.local()
        self._lock = threading.Lock()
        self._next_id = 1
        self._on_finish = on_finish
        self.dropped = 0

    @property
    def _stack(self) -> list[Span]:
        """The calling thread's open-span stack."""
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def span(self, name: str, **attributes: Any) -> Span:
        """Open a span; use as ``with tracer.span("x") as span:``.

        Inside an active request context
        (:func:`repro.obs.reqctx.current_trace`) the span is stamped
        with the request id, joining it to that request's trace.
        """
        request = current_trace()
        if request is not None and "request_id" not in attributes:
            attributes["request_id"] = request.request_id
        stack = self._stack
        parent = stack[-1] if stack else None
        with self._lock:
            span_id = self._next_id
            self._next_id += 1
        span = Span(self, name, span_id,
                    parent.span_id if parent else None,
                    parent.depth + 1 if parent else 0, attributes)
        stack.append(span)
        return span

    def _finish(self, span: Span) -> None:
        # Pop back to (and including) this span; tolerates a span
        # __exit__ arriving out of order after an exception unwound
        # several frames at once.
        stack = self._stack
        while stack:
            top = stack.pop()
            if top is span:
                break
        with self._lock:
            if len(self._finished) == self._finished.maxlen:
                self.dropped += 1
            self._finished.append(span)
        request = current_trace()
        if (request is not None
                and span.attributes.get("request_id")
                == request.request_id):
            request.add_span(span.as_dict())
        if self._on_finish is not None:
            self._on_finish(span)

    @property
    def active(self) -> Span | None:
        """The innermost open span, or None."""
        return self._stack[-1] if self._stack else None

    def spans(self) -> list[Span]:
        """Finished spans, oldest first."""
        return list(self._finished)

    def last(self, count: int) -> list[Span]:
        """The ``count`` most recent finished spans, oldest first."""
        if count <= 0:
            return []
        return list(self._finished)[-count:]

    def find(self, name: str) -> list[Span]:
        """Finished spans with this name, oldest first."""
        return [span for span in self._finished if span.name == name]

    def clear(self) -> None:
        with self._lock:
            self._finished.clear()
            self.dropped = 0

    def __len__(self) -> int:
        return len(self._finished)

    def __iter__(self) -> Iterator[Span]:
        return iter(self._finished)

    def as_dicts(self) -> list[dict[str, Any]]:
        return [span.as_dict() for span in self._finished]


class _NullSpan:
    """The shared no-op span; reused for every disabled ``span()``."""

    __slots__ = ()
    name = ""
    duration = 0.0
    error = None
    attributes: dict[str, Any] = {}

    def set(self, key: str, value: Any) -> None:
        pass

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *_exc_info: object) -> None:
        pass


_NULL_SPAN = _NullSpan()


class NullTracer(Tracer):
    """The disabled tracer: no allocation, no retention."""

    enabled = False

    def __init__(self) -> None:
        super().__init__(capacity=1)

    def span(self, name: str, **attributes: Any):  # type: ignore[override]
        return _NULL_SPAN


#: The shared disabled tracer.
NULL_TRACER = NullTracer()

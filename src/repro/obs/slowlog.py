"""The slow-request log and the Chrome-trace exporter.

:class:`SlowRequestLog` retains, in bounded ring buffers, the full
:class:`~repro.obs.reqctx.RequestTrace` of every request that ran past
a threshold (the *slow* ring) plus a shorter tail of recent requests
regardless of speed (so ``/debug/trace/<id>`` can answer for an id the
client just saw, slow or not).  Entries are plain dicts — snapshotted
at record time — so the debug endpoints serialize them straight to
JSON without touching live request state.

:func:`chrome_trace_events` converts span dicts (the shape of
:meth:`repro.obs.tracing.Span.as_dict`) into the Chrome trace-event
JSON array format, loadable in ``chrome://tracing`` / Perfetto:
complete events (``ph: "X"``) with microsecond timestamps, one track
per originating thread.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Any, Iterable

from repro.obs.reqctx import RequestTrace

#: Requests at or above this many seconds are captured (default).
DEFAULT_SLOW_THRESHOLD = 0.25

#: Slow-ring capacity (full traces retained).
DEFAULT_CAPACITY = 64

#: Recent-ring capacity (every completed request, fast or slow).
DEFAULT_RECENT = 128


class SlowRequestLog:
    """Bounded in-memory capture of slow (and recent) request traces.

    :param threshold: seconds at/past which a request is *slow*.
    :param capacity: how many slow traces are retained (newest win).
    :param recent: how many recent traces (any speed) are retained for
        by-id lookup.
    """

    def __init__(self, threshold: float = DEFAULT_SLOW_THRESHOLD,
                 capacity: int = DEFAULT_CAPACITY,
                 recent: int = DEFAULT_RECENT) -> None:
        if threshold < 0:
            raise ValueError("slow threshold must be >= 0 seconds")
        if capacity < 1 or recent < 1:
            raise ValueError("slow log capacities must be >= 1")
        self.threshold = threshold
        self._slow: deque[dict[str, Any]] = deque(maxlen=capacity)
        self._recent: deque[dict[str, Any]] = deque(maxlen=recent)
        self._lock = threading.Lock()
        self.total_requests = 0
        self.captured = 0

    def record(self, trace: RequestTrace, force: bool = False) -> bool:
        """File a finished request; True when captured as slow.

        ``force`` captures into the slow ring regardless of duration —
        the serving layer uses it for deadline-expired (504) requests,
        whose partial trace is exactly the evidence worth keeping even
        when the deadline was shorter than the slow threshold.
        """
        snapshot = trace.as_dict()
        slow = force or trace.duration >= self.threshold
        with self._lock:
            self.total_requests += 1
            self._recent.append(snapshot)
            if slow:
                self.captured += 1
                self._slow.append(snapshot)
        return slow

    def entries(self, limit: int | None = None) -> list[dict[str, Any]]:
        """Slow traces, newest first."""
        with self._lock:
            ordered = list(self._slow)
        ordered.reverse()
        return ordered if limit is None else ordered[:max(0, limit)]

    def find(self, request_id: str) -> dict[str, Any] | None:
        """The trace for ``request_id`` — slow ring first, then recent."""
        with self._lock:
            for ring in (self._slow, self._recent):
                for entry in reversed(ring):
                    if entry.get("request_id") == request_id:
                        return entry
        return None

    def clear(self) -> None:
        with self._lock:
            self._slow.clear()
            self._recent.clear()
            self.total_requests = 0
            self.captured = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._slow)

    def stats(self) -> dict[str, Any]:
        with self._lock:
            return {
                "threshold_seconds": self.threshold,
                "captured": self.captured,
                "retained": len(self._slow),
                "recent_retained": len(self._recent),
                "total_requests": self.total_requests,
            }


# ----------------------------------------------------------------------
# Chrome trace export
# ----------------------------------------------------------------------

def chrome_trace_events(spans: Iterable[dict[str, Any]],
                        pid: int = 1,
                        label: str | None = None) -> list[dict[str, Any]]:
    """Span dicts -> Chrome trace-event *JSON array format*.

    Each finished span becomes one complete event (``ph: "X"``) whose
    ``ts``/``dur`` are microseconds; spans keep their originating
    thread as the track id, so handler-thread and writer-thread work
    render as separate rows.  Attributes ride along in ``args``.  The
    returned list serializes directly with ``json.dumps`` and loads in
    ``chrome://tracing`` or https://ui.perfetto.dev.
    """
    events: list[dict[str, Any]] = []
    threads_seen: set[int] = set()
    for span in spans:
        tid = int(span.get("thread_id") or 0)
        threads_seen.add(tid)
        args = {
            key: value
            for key, value in (span.get("attributes") or {}).items()
            if isinstance(value, (str, int, float, bool, type(None)))
        }
        if span.get("error"):
            args["error"] = span["error"]
        events.append({
            "name": str(span.get("name", "span")),
            "cat": "repro",
            "ph": "X",
            "ts": round(float(span.get("start_time", 0.0)) * 1e6, 3),
            "dur": round(float(span.get("duration", 0.0)) * 1e6, 3),
            "pid": pid,
            "tid": tid,
            "args": args,
        })
    if label:
        events.append({
            "name": "process_name", "ph": "M", "pid": pid, "tid": 0,
            "args": {"name": label},
        })
    for tid in sorted(threads_seen):
        events.append({
            "name": "thread_name", "ph": "M", "pid": pid, "tid": tid,
            "args": {"name": f"thread-{tid}"},
        })
    return events


def render_span_tree(spans: Iterable[dict[str, Any]],
                     indent: str = "  ") -> list[str]:
    """Human-readable lines for a request's span dicts.

    Spans are printed in start order, indented by recorded depth —
    the same convention ``repro trace`` uses for live spans.
    """
    lines: list[str] = []
    for span in sorted(spans, key=lambda s: s.get("start_time", 0.0)):
        attrs = " ".join(
            f"{key}={value}"
            for key, value in (span.get("attributes") or {}).items()
            if key != "request_id")
        line = (f"{indent * (int(span.get('depth', 0)) + 1)}"
                f"{span.get('name')}  "
                f"{float(span.get('duration', 0.0)) * 1000:.3f} ms")
        if attrs:
            line += f"  [{attrs}]"
        if span.get("error"):
            line += f"  !{span['error']}"
        lines.append(line)
    return lines

"""The metrics registry: counters, gauges, fixed-bucket histograms.

A :class:`MetricsRegistry` names and owns instruments; call sites hold
the instrument (``registry.counter("match.queries")``) and update it
with plain attribute math — no label cartesian products.  Updates are
thread-safe: every instrument guards its mutation with a small lock so
concurrent server handlers (see :mod:`repro.server`) never drop
increments, and the registry's get-or-create is atomic.  Two
exposition formats are built in: :meth:`MetricsRegistry.as_dict` (the
JSON surface used by ``repro stats --json``) and
:meth:`MetricsRegistry.prometheus_text` (the ``text/plain; version=0.0.4``
format, so a scrape endpoint needs no extra dependency).

The disabled path uses :data:`NULL_REGISTRY`, whose instruments share
single no-op objects — creating or updating them costs one method call
that does nothing, keeping observability near-zero-cost when off.
"""

from __future__ import annotations

import bisect
import math
import threading
from typing import Iterator, Sequence

#: Default histogram buckets (seconds): 100 us .. 10 s, roughly
#: logarithmic — matched to SQLite statement and span durations.
DEFAULT_TIME_BUCKETS: tuple[float, ...] = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
    0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0)

#: Default histogram buckets for row counts / cardinalities.
DEFAULT_COUNT_BUCKETS: tuple[float, ...] = (
    1, 2, 5, 10, 25, 50, 100, 250, 500, 1_000, 5_000, 10_000,
    50_000, 100_000)


def _sanitize_prometheus(name: str) -> str:
    """Dots and dashes become underscores; Prometheus names are
    ``[a-zA-Z_:][a-zA-Z0-9_:]*``."""
    cleaned = []
    for index, char in enumerate(name):
        # ASCII-strict: str.isalnum alone would pass unicode letters,
        # which Prometheus rejects.
        if (char.isascii() and char.isalnum()) or char in "_:":
            cleaned.append(char)
        else:
            cleaned.append("_")
        if index == 0 and char.isdigit():
            cleaned.insert(0, "_")
    return "".join(cleaned)


class Counter:
    """A monotonically increasing count (thread-safe)."""

    __slots__ = ("name", "help", "value", "_lock")

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self.value = 0.0
        self._lock = threading.Lock()

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self.value += amount

    def __repr__(self) -> str:
        return f"Counter({self.name}={self.value:g})"


class Gauge:
    """A value that can go up and down (thread-safe)."""

    __slots__ = ("name", "help", "value", "_lock")

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self.value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        with self._lock:
            self.value -= amount

    def __repr__(self) -> str:
        return f"Gauge({self.name}={self.value:g})"


class Histogram:
    """A fixed-bucket histogram with percentile estimation.

    Buckets are cumulative-upper-bound style (Prometheus ``le``): an
    observation lands in the first bucket whose bound is >= the value;
    larger values land in the implicit ``+Inf`` overflow bucket.
    Percentiles interpolate linearly inside the chosen bucket, which is
    exact enough for reporting p50/p95 over timing data.
    """

    __slots__ = ("name", "help", "bounds", "bucket_counts", "count",
                 "sum", "min", "max", "_lock")

    def __init__(self, name: str, help: str = "",
                 buckets: Sequence[float] = DEFAULT_TIME_BUCKETS) -> None:
        self.name = name
        self.help = help
        self.bounds = tuple(sorted(float(b) for b in buckets))
        if not self.bounds:
            raise ValueError("histogram needs at least one bucket bound")
        # One slot per finite bound plus the +Inf overflow slot.
        self.bucket_counts = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.sum = 0.0
        self.min = math.inf
        self.max = -math.inf
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        with self._lock:
            self.bucket_counts[bisect.bisect_left(self.bounds,
                                                  value)] += 1
            self.count += 1
            self.sum += value
            if value < self.min:
                self.min = value
            if value > self.max:
                self.max = value

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """Estimated q-quantile (``q`` in [0, 1]) from the buckets."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        with self._lock:
            if self.count == 0:
                return 0.0
            target = q * self.count
            cumulative = 0
            for index, bucket_count in enumerate(self.bucket_counts):
                if bucket_count == 0:
                    continue
                previous = cumulative
                cumulative += bucket_count
                if cumulative >= target:
                    if index >= len(self.bounds):
                        # Overflow bucket: best estimate is the max.
                        return self.max
                    lower = self.bounds[index - 1] if index else 0.0
                    upper = self.bounds[index]
                    fraction = ((target - previous) / bucket_count
                                if bucket_count else 1.0)
                    estimate = lower + (upper - lower) * fraction
                    # Never report outside the observed range.
                    return min(max(estimate, self.min), self.max)
            return self.max

    @property
    def p50(self) -> float:
        return self.percentile(0.50)

    @property
    def p95(self) -> float:
        return self.percentile(0.95)

    def __repr__(self) -> str:
        return (f"Histogram({self.name}: n={self.count}, "
                f"mean={self.mean:g})")


class MetricsRegistry:
    """Names and owns the instruments of one observed process.

    ``counter``/``gauge``/``histogram`` are get-or-create: the first
    call registers, later calls return the same instrument — so call
    sites never need module-level instrument globals.  Get-or-create is
    atomic under the registry lock, so two threads racing to register
    the same name always share one instrument.
    """

    #: Distinguishes a live registry from :class:`NullRegistry` without
    #: an isinstance check on the hot path.
    enabled = True

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}
        self._lock = threading.RLock()

    def counter(self, name: str, help: str = "") -> Counter:
        instrument = self._counters.get(name)
        if instrument is None:
            with self._lock:
                instrument = self._counters.get(name)
                if instrument is None:
                    instrument = self._counters[name] = Counter(name,
                                                                help)
        return instrument

    def gauge(self, name: str, help: str = "") -> Gauge:
        instrument = self._gauges.get(name)
        if instrument is None:
            with self._lock:
                instrument = self._gauges.get(name)
                if instrument is None:
                    instrument = self._gauges[name] = Gauge(name, help)
        return instrument

    def histogram(self, name: str, help: str = "",
                  buckets: Sequence[float] = DEFAULT_TIME_BUCKETS
                  ) -> Histogram:
        instrument = self._histograms.get(name)
        if instrument is None:
            with self._lock:
                instrument = self._histograms.get(name)
                if instrument is None:
                    instrument = self._histograms[name] = Histogram(
                        name, help, buckets)
        return instrument

    def __iter__(self) -> Iterator[Counter | Gauge | Histogram]:
        with self._lock:
            instruments = (list(self._counters.values())
                           + list(self._gauges.values())
                           + list(self._histograms.values()))
        return iter(instruments)

    def reset(self) -> None:
        """Forget every instrument (tests, bench trial isolation)."""
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()

    # ------------------------------------------------------------------
    # exposition
    # ------------------------------------------------------------------

    def _snapshot(self) -> tuple[list[Counter], list[Gauge],
                                 list[Histogram]]:
        """Stable instrument lists for exposition under concurrency."""
        with self._lock:
            return (list(self._counters.values()),
                    list(self._gauges.values()),
                    list(self._histograms.values()))

    def as_dict(self) -> dict:
        """The JSON-ready snapshot used by ``repro stats --json``."""
        counter_list, gauge_list, histogram_list = self._snapshot()
        counters = {c.name: c.value for c in counter_list}
        gauges = {g.name: g.value for g in gauge_list}
        histograms = {}
        for histogram in histogram_list:
            histograms[histogram.name] = {
                "count": histogram.count,
                "sum": histogram.sum,
                "mean": histogram.mean,
                "min": histogram.min if histogram.count else 0.0,
                "max": histogram.max if histogram.count else 0.0,
                "p50": histogram.p50,
                "p95": histogram.p95,
            }
        return {"counters": counters, "gauges": gauges,
                "histograms": histograms}

    def prometheus_text(self) -> str:
        """The Prometheus text exposition format (0.0.4)."""
        counter_list, gauge_list, histogram_list = self._snapshot()
        lines: list[str] = []
        for counter in counter_list:
            name = _sanitize_prometheus(counter.name)
            if counter.help:
                lines.append(f"# HELP {name} {counter.help}")
            lines.append(f"# TYPE {name} counter")
            lines.append(f"{name} {counter.value:g}")
        for gauge in gauge_list:
            name = _sanitize_prometheus(gauge.name)
            if gauge.help:
                lines.append(f"# HELP {name} {gauge.help}")
            lines.append(f"# TYPE {name} gauge")
            lines.append(f"{name} {gauge.value:g}")
        for histogram in histogram_list:
            name = _sanitize_prometheus(histogram.name)
            if histogram.help:
                lines.append(f"# HELP {name} {histogram.help}")
            lines.append(f"# TYPE {name} histogram")
            cumulative = 0
            for bound, bucket_count in zip(histogram.bounds,
                                           histogram.bucket_counts):
                cumulative += bucket_count
                lines.append(
                    f'{name}_bucket{{le="{bound:g}"}} {cumulative}')
            lines.append(
                f'{name}_bucket{{le="+Inf"}} {histogram.count}')
            lines.append(f"{name}_sum {histogram.sum:g}")
            lines.append(f"{name}_count {histogram.count}")
        return "\n".join(lines) + ("\n" if lines else "")


class _NullInstrument:
    """One shared object standing in for every disabled instrument."""

    __slots__ = ()
    name = ""
    help = ""
    value = 0.0
    count = 0
    sum = 0.0

    def inc(self, amount: float = 1.0) -> None:
        pass

    def dec(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass


_NULL_INSTRUMENT = _NullInstrument()


class NullRegistry(MetricsRegistry):
    """The disabled registry: every lookup returns the shared no-op."""

    enabled = False

    def __init__(self) -> None:
        super().__init__()

    def counter(self, name: str, help: str = ""):  # type: ignore[override]
        return _NULL_INSTRUMENT

    def gauge(self, name: str, help: str = ""):  # type: ignore[override]
        return _NULL_INSTRUMENT

    def histogram(self, name: str, help: str = "",
                  buckets: Sequence[float] = DEFAULT_TIME_BUCKETS
                  ):  # type: ignore[override]
        return _NULL_INSTRUMENT


#: The shared disabled registry.
NULL_REGISTRY = NullRegistry()

"""SQL-level instrumentation for the :class:`~repro.db.connection.Database`.

Three layers of visibility, all per-connection:

* a raw ``sqlite3`` trace callback (``set_trace_callback``) counting
  every statement the engine actually runs — including the ones inside
  ``executescript``/``executemany`` expansions that the Python wrapper
  never sees individually;
* timed execution: :meth:`SQLInstrumenter.record` aggregates duration,
  execution count, and affected/fetched row counts per *normalized*
  statement (literals stripped, whitespace collapsed), so the top-N
  report groups the thousands of parameterized executions of one
  statement shape into one line;
* slow-statement plans: the first execution of a normalized statement
  over the ``slow_threshold`` captures its ``EXPLAIN QUERY PLAN`` so a
  missing index shows up in ``repro stats --json`` without re-running
  the workload under a debugger.

This module never imports :mod:`repro.db` — the database imports *it* —
so the dependency arrow stays engine -> observability.
"""

from __future__ import annotations

import re
import sqlite3
import threading
from typing import TYPE_CHECKING, Any, Sequence

from repro.obs.reqctx import current_trace

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.metrics import MetricsRegistry

#: Statements slower than this (seconds) get an EXPLAIN QUERY PLAN.
DEFAULT_SLOW_THRESHOLD = 0.010

#: At most this many distinct slow-statement plans are retained.
DEFAULT_PLAN_LIMIT = 32

#: At most this many distinct normalized statements are aggregated;
#: beyond it, new shapes are counted under the overflow key.
DEFAULT_STATEMENT_LIMIT = 512

OVERFLOW_KEY = "<other statements>"

_STRING_LITERAL_RE = re.compile(r"'(?:[^']|'')*'")
_NUMBER_LITERAL_RE = re.compile(r"\b\d+(?:\.\d+)?\b")
_PLACEHOLDER_RUN_RE = re.compile(r"\?(?:\s*,\s*\?)+")
_WHITESPACE_RE = re.compile(r"\s+")


def normalize_statement(sql: str, max_length: int = 300) -> str:
    """Collapse one concrete statement to its aggregation shape.

    String and numeric literals become ``?``; runs of placeholders
    (``IN (?, ?, ?)`` from per-model or per-batch expansion) collapse to
    ``?+`` so batch size doesn't explode the statement cardinality.
    """
    text = _STRING_LITERAL_RE.sub("?", sql)
    text = _NUMBER_LITERAL_RE.sub("?", text)
    text = _WHITESPACE_RE.sub(" ", text).strip()
    text = _PLACEHOLDER_RUN_RE.sub("?+", text)
    if len(text) > max_length:
        text = text[:max_length] + " ..."
    return text


class StatementStats:
    """Aggregated figures for one normalized statement."""

    __slots__ = ("statement", "count", "total_time", "max_time", "rows")

    def __init__(self, statement: str) -> None:
        self.statement = statement
        self.count = 0
        self.total_time = 0.0
        self.max_time = 0.0
        self.rows = 0

    @property
    def mean_time(self) -> float:
        return self.total_time / self.count if self.count else 0.0

    def as_dict(self) -> dict[str, Any]:
        return {
            "statement": self.statement,
            "count": self.count,
            "total_seconds": self.total_time,
            "mean_seconds": self.mean_time,
            "max_seconds": self.max_time,
            "rows": self.rows,
        }

    def __repr__(self) -> str:
        return (f"StatementStats({self.statement[:40]!r}, "
                f"n={self.count}, total={self.total_time:.6f})")


class SQLInstrumenter:
    """Per-connection SQL statistics collector.

    :param metrics: registry receiving the rolled-up instruments
        (``sql.statements`` counter, ``sql.statement.seconds``
        histogram); pass :data:`~repro.obs.metrics.NULL_REGISTRY` to
        keep only the per-statement table.
    :param slow_threshold: duration (seconds) past which a statement's
        query plan is captured.
    :param capture_plans: disable to skip EXPLAIN QUERY PLAN entirely.
    """

    def __init__(self, metrics: "MetricsRegistry",
                 slow_threshold: float = DEFAULT_SLOW_THRESHOLD,
                 capture_plans: bool = True,
                 statement_limit: int = DEFAULT_STATEMENT_LIMIT,
                 plan_limit: int = DEFAULT_PLAN_LIMIT) -> None:
        self._statements: dict[str, StatementStats] = {}
        self._plans: dict[str, list[str]] = {}
        self._statement_limit = statement_limit
        self._plan_limit = plan_limit
        # One instrumenter may serve several pooled connections; the
        # aggregation tables are shared state across handler threads.
        self._lock = threading.RLock()
        self.slow_threshold = slow_threshold
        self.capture_plans = capture_plans
        #: Raw statements the engine ran (trace-callback count).
        self.engine_statements = 0
        # Per-thread: the trace callback fires on the executing thread,
        # so one thread's EXPLAIN capture must not mute the others.
        self._capturing = threading.local()
        self._statement_counter = metrics.counter(
            "sql.statements", "statements timed by the Database wrapper")
        self._engine_counter = metrics.counter(
            "sql.engine_statements",
            "raw statements seen by the sqlite3 trace callback")
        self._duration_histogram = metrics.histogram(
            "sql.statement.seconds", "per-statement wall time")

    # ------------------------------------------------------------------
    # connection hooks
    # ------------------------------------------------------------------

    def attach(self, connection: sqlite3.Connection) -> None:
        """Install the raw trace callback on ``connection``."""
        connection.set_trace_callback(self._trace)

    def detach(self, connection: sqlite3.Connection) -> None:
        connection.set_trace_callback(None)

    def _trace(self, _sql: str) -> None:
        if getattr(self._capturing, "flag", False):
            return
        with self._lock:
            self.engine_statements += 1
        self._engine_counter.inc()

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------

    def record(self, sql: str, duration: float, rows: int = 0,
               connection: sqlite3.Connection | None = None,
               parameters: Sequence[Any] = ()) -> None:
        """Aggregate one timed execution.

        :param rows: affected rows for DML (``cursor.rowcount``), or 0;
            fetched result rows are credited later via :meth:`add_rows`.
        :param connection: when given and the statement is slow, used to
            capture its EXPLAIN QUERY PLAN.
        """
        key = normalize_statement(sql)
        capture = False
        if duration >= self.slow_threshold:
            # A slow statement inside a request belongs to that
            # request: the slow-request log shows it with the id.
            request = current_trace()
            if request is not None:
                request.add_slow_sql(key, duration)
        with self._lock:
            stats = self._statements.get(key)
            if stats is None:
                if len(self._statements) >= self._statement_limit:
                    key = OVERFLOW_KEY
                    stats = self._statements.get(key)
                    if stats is None:
                        stats = self._statements[key] = \
                            StatementStats(key)
                else:
                    stats = self._statements[key] = StatementStats(key)
            stats.count += 1
            stats.total_time += duration
            if duration > stats.max_time:
                stats.max_time = duration
            if rows > 0:
                stats.rows += rows
            if (self.capture_plans and connection is not None
                    and duration >= self.slow_threshold
                    and key not in self._plans
                    and key != OVERFLOW_KEY
                    and len(self._plans) < self._plan_limit):
                # Reserve the slot under the lock; EXPLAIN runs outside
                # it (on the calling thread's own connection).
                self._plans[key] = []
                capture = True
        self._statement_counter.inc()
        self._duration_histogram.observe(duration)
        if capture:
            self._capture_plan(key, sql, parameters, connection)

    def add_rows(self, sql: str, rows: int) -> None:
        """Credit fetched result rows to an already-recorded statement."""
        with self._lock:
            stats = self._statements.get(normalize_statement(sql))
            if stats is not None:
                stats.rows += rows

    def _capture_plan(self, key: str, sql: str,
                      parameters: Sequence[Any],
                      connection: sqlite3.Connection) -> None:
        self._capturing.flag = True
        try:
            rows = connection.execute(
                f"EXPLAIN QUERY PLAN {sql}", parameters).fetchall()
            plan = [str(row[-1]) for row in rows]
        except sqlite3.Error:
            # Not every statement EXPLAINs (DDL, PRAGMA); skip quietly.
            plan = []
        finally:
            self._capturing.flag = False
        with self._lock:
            self._plans[key] = plan

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------

    @property
    def statement_count(self) -> int:
        """Distinct normalized statements aggregated so far."""
        with self._lock:
            return len(self._statements)

    def statements(self, top: int | None = None) -> list[StatementStats]:
        """Aggregates ordered by total time, heaviest first."""
        with self._lock:
            ordered = sorted(self._statements.values(),
                             key=lambda stats: -stats.total_time)
        return ordered if top is None else ordered[:top]

    def plan_for(self, sql: str) -> list[str] | None:
        """The captured EXPLAIN QUERY PLAN lines, if this statement was
        ever slow."""
        with self._lock:
            return self._plans.get(normalize_statement(sql))

    def reset(self) -> None:
        with self._lock:
            self._statements.clear()
            self._plans.clear()
            self.engine_statements = 0

    def as_dict(self, top: int = 25) -> dict[str, Any]:
        with self._lock:
            engine_statements = self.engine_statements
            distinct = len(self._statements)
            plans = {key: list(plan)
                     for key, plan in self._plans.items()}
        return {
            "engine_statements": engine_statements,
            "distinct_statements": distinct,
            "top_statements": [stats.as_dict()
                               for stats in self.statements(top)],
            "slow_plans": plans,
        }

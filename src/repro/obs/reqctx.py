"""Request-scoped trace context: one id and one span collector per request.

The serving layer (:mod:`repro.server`) handles each HTTP request on
its own thread, but parts of the request run elsewhere — write jobs
execute on the writer thread, pool acquires may block, and the SQL
layer records statements wherever the connection lives.  Process-wide
aggregates (PR 1's metrics) cannot answer "where did *this* request's
time go"; this module supplies the missing join key.

A :class:`RequestTrace` is created per request and *activated* on the
handling thread through a :mod:`contextvars` variable.  While active:

* every span the :class:`~repro.obs.tracing.Tracer` opens is stamped
  with the request id and, once finished, collected into the trace;
* the SQL instrumenter attributes slow statements to the request;
* the pool and writer queue annotate their wait times onto it.

``contextvars`` — not ``threading.local`` — so the context can hop
threads: :class:`~repro.db.pool.WriterQueue` captures the submitter's
context with :func:`contextvars.copy_context` and runs the job inside
it, which makes the writer thread's spans land in the right request.

Everything here is dependency-free (stdlib only, no other ``repro``
imports) so any layer may annotate the current request without
creating an import cycle.
"""

from __future__ import annotations

import contextvars
import threading
import time
import uuid
from typing import Any

#: The HTTP header carrying the request id end to end.
REQUEST_ID_HEADER = "X-Request-Id"

#: Longest client-supplied request id honored before we mint our own.
MAX_REQUEST_ID_LENGTH = 120

_current: contextvars.ContextVar["RequestTrace | None"] = \
    contextvars.ContextVar("repro_request_trace", default=None)


def new_request_id() -> str:
    """A fresh 16-hex-char request id (collision-safe per process)."""
    return uuid.uuid4().hex[:16]


def clean_request_id(raw: str | None) -> str:
    """An id safe to echo in a header: the client's, if usable.

    Control characters (header-splitting) or an over-long value fall
    back to a freshly minted id — the request still gets *an* id, it
    just isn't the hostile one.
    """
    if raw is None:
        return new_request_id()
    candidate = raw.strip()
    if (not candidate or len(candidate) > MAX_REQUEST_ID_LENGTH
            or any(ch < " " or ch == "\x7f" for ch in candidate)):
        return new_request_id()
    return candidate


class RequestTrace:
    """Everything observed about one request, keyed by its id.

    Mutated from several threads (handler, writer, tracer callbacks),
    so every write happens under one small lock.  ``as_dict`` snapshots
    under the same lock, giving the debug endpoints a torn-free view.
    """

    __slots__ = ("request_id", "method", "path", "start_time", "status",
                 "duration", "spans", "annotations", "slow_sql",
                 "_start", "_lock")

    def __init__(self, request_id: str, method: str = "",
                 path: str = "") -> None:
        self.request_id = request_id
        self.method = method
        self.path = path
        self.start_time = time.time()
        self.status = 0
        self.duration = 0.0
        #: Finished span dicts (:meth:`Span.as_dict`), finish order.
        self.spans: list[dict[str, Any]] = []
        #: Free-form request facts (plan cache status, pool waits, ...).
        self.annotations: dict[str, Any] = {}
        #: Normalized statements that crossed the SQL slow threshold.
        self.slow_sql: list[dict[str, Any]] = []
        self._start = time.perf_counter()
        self._lock = threading.Lock()

    # -- collection ----------------------------------------------------

    def add_span(self, span: dict[str, Any]) -> None:
        with self._lock:
            self.spans.append(span)

    def annotate(self, key: str, value: Any) -> None:
        with self._lock:
            self.annotations[key] = value

    def annotate_add(self, key: str, amount: float) -> None:
        """Accumulate a float annotation (e.g. repeated pool waits)."""
        with self._lock:
            self.annotations[key] = round(
                self.annotations.get(key, 0.0) + amount, 9)

    def add_slow_sql(self, statement: str, duration: float) -> None:
        with self._lock:
            self.slow_sql.append({
                "statement": statement,
                "seconds": round(duration, 6),
            })

    def finish(self, status: int) -> float:
        """Stamp the final status; returns the request duration."""
        self.duration = time.perf_counter() - self._start
        self.status = status
        return self.duration

    # -- reporting -----------------------------------------------------

    @property
    def elapsed(self) -> float:
        """Seconds since the request started (live, pre-``finish``)."""
        return time.perf_counter() - self._start

    def as_dict(self, include_spans: bool = True) -> dict[str, Any]:
        with self._lock:
            payload: dict[str, Any] = {
                "request_id": self.request_id,
                "method": self.method,
                "path": self.path,
                "start_time": self.start_time,
                "status": self.status,
                "duration": self.duration,
                "annotations": dict(self.annotations),
                "slow_sql": [dict(entry) for entry in self.slow_sql],
            }
            if include_spans:
                payload["spans"] = [dict(span) for span in self.spans]
            return payload

    def __repr__(self) -> str:
        return (f"RequestTrace({self.request_id!r}, {self.method} "
                f"{self.path}, spans={len(self.spans)})")


def activate(trace: RequestTrace) -> contextvars.Token:
    """Make ``trace`` the calling context's current request."""
    return _current.set(trace)


def deactivate(token: contextvars.Token) -> None:
    """Restore whatever was current before :func:`activate`."""
    _current.reset(token)


def current_trace() -> RequestTrace | None:
    """The active request's trace, or None outside any request."""
    return _current.get()

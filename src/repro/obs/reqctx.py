"""Request-scoped trace context: one id and one span collector per request.

The serving layer (:mod:`repro.server`) handles each HTTP request on
its own thread, but parts of the request run elsewhere — write jobs
execute on the writer thread, pool acquires may block, and the SQL
layer records statements wherever the connection lives.  Process-wide
aggregates (PR 1's metrics) cannot answer "where did *this* request's
time go"; this module supplies the missing join key.

A :class:`RequestTrace` is created per request and *activated* on the
handling thread through a :mod:`contextvars` variable.  While active:

* every span the :class:`~repro.obs.tracing.Tracer` opens is stamped
  with the request id and, once finished, collected into the trace;
* the SQL instrumenter attributes slow statements to the request;
* the pool and writer queue annotate their wait times onto it.

``contextvars`` — not ``threading.local`` — so the context can hop
threads: :class:`~repro.db.pool.WriterQueue` captures the submitter's
context with :func:`contextvars.copy_context` and runs the job inside
it, which makes the writer thread's spans land in the right request.

Everything here is dependency-free (stdlib only, no other ``repro``
imports) so any layer may annotate the current request without
creating an import cycle.
"""

from __future__ import annotations

import contextvars
import threading
import time
import uuid
from typing import Any

#: The HTTP header carrying the request id end to end.
REQUEST_ID_HEADER = "X-Request-Id"

#: The HTTP header carrying the client's remaining time budget (ms).
DEADLINE_HEADER = "X-Deadline-Ms"

#: The HTTP header carrying the request's shedding priority (0-9;
#: higher survives degraded mode longer).
PRIORITY_HEADER = "X-Priority"

#: Priority assumed when the client sends no ``X-Priority`` header.
DEFAULT_PRIORITY = 5

#: The HTTP header keying the exactly-once write ledger.
IDEMPOTENCY_KEY_HEADER = "Idempotency-Key"

#: Longest client-supplied request id honored before we mint our own.
MAX_REQUEST_ID_LENGTH = 120

#: Longest idempotency key honored (ledger rows are bounded).
MAX_IDEMPOTENCY_KEY_LENGTH = 200


class Deadline:
    """An absolute point in time a request must not run past.

    Built once at admission from the client's ``X-Deadline-Ms`` budget
    and carried on the :class:`RequestTrace`, so every layer a request
    crosses — admission gate, pool acquire, writer-queue wait, SQL
    execution — can bound its own wait by :meth:`remaining` instead of
    a fixed timeout.  Monotonic-clock based: wall-clock jumps cannot
    expire (or resurrect) a request.
    """

    __slots__ = ("budget", "_expires_at")

    def __init__(self, budget_seconds: float) -> None:
        #: The budget the deadline was created with, in seconds.
        self.budget = float(budget_seconds)
        self._expires_at = time.monotonic() + self.budget

    @classmethod
    def after_ms(cls, milliseconds: float) -> "Deadline":
        return cls(float(milliseconds) / 1000.0)

    @property
    def expired(self) -> bool:
        return time.monotonic() >= self._expires_at

    def remaining(self) -> float:
        """Seconds left before expiry (never negative)."""
        return max(0.0, self._expires_at - time.monotonic())

    def bound(self, timeout: float | None) -> float:
        """``timeout`` capped by the remaining budget.

        ``None`` (wait forever) becomes the remaining budget itself.
        """
        left = self.remaining()
        return left if timeout is None else min(timeout, left)

    def __repr__(self) -> str:
        return (f"Deadline(budget={self.budget:.3f}s, "
                f"remaining={self.remaining():.3f}s)")


def parse_deadline_ms(raw: str | None) -> Deadline | None:
    """The ``X-Deadline-Ms`` header as a :class:`Deadline`.

    ``None``/empty means no deadline; a non-numeric or non-positive
    value raises :class:`ValueError` (the server answers 400 — a
    client that sends a budget means it, so a garbled one is a bug
    worth surfacing, not ignoring).
    """
    if raw is None or not raw.strip():
        return None
    try:
        milliseconds = float(raw.strip())
    except ValueError:
        raise ValueError(
            f"{DEADLINE_HEADER} must be a number of milliseconds, "
            f"got {raw!r}") from None
    if milliseconds <= 0:
        raise ValueError(
            f"{DEADLINE_HEADER} must be positive, got {raw!r}")
    return Deadline.after_ms(milliseconds)


def clean_idempotency_key(raw: str | None) -> str | None:
    """A usable ``Idempotency-Key``, or ``None`` when absent/unsafe.

    Unlike request ids there is no minting fallback — a key the server
    invented could never match the client's retry, so an unusable key
    (empty, over-long, control characters) degrades to "no key": the
    write is applied normally, just without replay protection.
    """
    if raw is None:
        return None
    candidate = raw.strip()
    if (not candidate or len(candidate) > MAX_IDEMPOTENCY_KEY_LENGTH
            or any(ch < " " or ch == "\x7f" for ch in candidate)):
        return None
    return candidate


def parse_priority(raw: str | None) -> int:
    """The ``X-Priority`` header as an int clamped to 0..9.

    Unparseable values fall back to :data:`DEFAULT_PRIORITY` — unlike
    a garbled deadline, a garbled priority is safe to ignore.
    """
    if raw is None or not raw.strip():
        return DEFAULT_PRIORITY
    try:
        return max(0, min(9, int(raw.strip())))
    except ValueError:
        return DEFAULT_PRIORITY

_current: contextvars.ContextVar["RequestTrace | None"] = \
    contextvars.ContextVar("repro_request_trace", default=None)


def new_request_id() -> str:
    """A fresh 16-hex-char request id (collision-safe per process)."""
    return uuid.uuid4().hex[:16]


def clean_request_id(raw: str | None) -> str:
    """An id safe to echo in a header: the client's, if usable.

    Control characters (header-splitting) or an over-long value fall
    back to a freshly minted id — the request still gets *an* id, it
    just isn't the hostile one.
    """
    if raw is None:
        return new_request_id()
    candidate = raw.strip()
    if (not candidate or len(candidate) > MAX_REQUEST_ID_LENGTH
            or any(ch < " " or ch == "\x7f" for ch in candidate)):
        return new_request_id()
    return candidate


class RequestTrace:
    """Everything observed about one request, keyed by its id.

    Mutated from several threads (handler, writer, tracer callbacks),
    so every write happens under one small lock.  ``as_dict`` snapshots
    under the same lock, giving the debug endpoints a torn-free view.
    """

    __slots__ = ("request_id", "method", "path", "start_time", "status",
                 "duration", "spans", "annotations", "slow_sql",
                 "deadline", "priority", "_start", "_lock")

    def __init__(self, request_id: str, method: str = "",
                 path: str = "", deadline: "Deadline | None" = None,
                 priority: int = DEFAULT_PRIORITY) -> None:
        self.request_id = request_id
        self.method = method
        self.path = path
        #: The request's time budget, if the client sent one; pool
        #: acquires and writer waits bound themselves by it.
        self.deadline = deadline
        #: Shedding priority (0-9); degraded mode sheds low first.
        self.priority = priority
        self.start_time = time.time()
        self.status = 0
        self.duration = 0.0
        #: Finished span dicts (:meth:`Span.as_dict`), finish order.
        self.spans: list[dict[str, Any]] = []
        #: Free-form request facts (plan cache status, pool waits, ...).
        self.annotations: dict[str, Any] = {}
        #: Normalized statements that crossed the SQL slow threshold.
        self.slow_sql: list[dict[str, Any]] = []
        self._start = time.perf_counter()
        self._lock = threading.Lock()

    # -- collection ----------------------------------------------------

    def add_span(self, span: dict[str, Any]) -> None:
        with self._lock:
            self.spans.append(span)

    def annotate(self, key: str, value: Any) -> None:
        with self._lock:
            self.annotations[key] = value

    def annotate_add(self, key: str, amount: float) -> None:
        """Accumulate a float annotation (e.g. repeated pool waits)."""
        with self._lock:
            self.annotations[key] = round(
                self.annotations.get(key, 0.0) + amount, 9)

    def add_slow_sql(self, statement: str, duration: float) -> None:
        with self._lock:
            self.slow_sql.append({
                "statement": statement,
                "seconds": round(duration, 6),
            })

    def finish(self, status: int) -> float:
        """Stamp the final status; returns the request duration."""
        self.duration = time.perf_counter() - self._start
        self.status = status
        return self.duration

    # -- reporting -----------------------------------------------------

    @property
    def elapsed(self) -> float:
        """Seconds since the request started (live, pre-``finish``)."""
        return time.perf_counter() - self._start

    def as_dict(self, include_spans: bool = True) -> dict[str, Any]:
        with self._lock:
            payload: dict[str, Any] = {
                "request_id": self.request_id,
                "method": self.method,
                "path": self.path,
                "start_time": self.start_time,
                "status": self.status,
                "duration": self.duration,
                "annotations": dict(self.annotations),
                "slow_sql": [dict(entry) for entry in self.slow_sql],
            }
            if self.deadline is not None:
                payload["deadline_budget_seconds"] = round(
                    self.deadline.budget, 6)
            if self.priority != DEFAULT_PRIORITY:
                payload["priority"] = self.priority
            if include_spans:
                payload["spans"] = [dict(span) for span in self.spans]
            return payload

    def __repr__(self) -> str:
        return (f"RequestTrace({self.request_id!r}, {self.method} "
                f"{self.path}, spans={len(self.spans)})")


def activate(trace: RequestTrace) -> contextvars.Token:
    """Make ``trace`` the calling context's current request."""
    return _current.set(trace)


def deactivate(token: contextvars.Token) -> None:
    """Restore whatever was current before :func:`activate`."""
    _current.reset(token)


def current_trace() -> RequestTrace | None:
    """The active request's trace, or None outside any request."""
    return _current.get()

"""Observability: metrics, tracing, SQL instrumentation, logging.

The paper's whole evaluation is about *measuring* the central-schema
store (Tables 1-2, Figure 8); this subpackage gives the reproduction the
same visibility into its own hot paths:

* :mod:`repro.obs.metrics` — a registry of counters, gauges, and
  fixed-bucket histograms with JSON and Prometheus-text exposition;
* :mod:`repro.obs.tracing` — nested spans with attributes and a
  ring-buffer exporter (``with observer.span("match.execute"): ...``);
* :mod:`repro.obs.sqltrace` — per-statement SQL timing, rows-fetched
  counts, normalized-statement aggregation, and ``EXPLAIN QUERY PLAN``
  capture for slow statements;
* :mod:`repro.obs.logjson` — structured (JSON-lines) stdlib logging,
  switched on via the ``REPRO_LOG`` environment variable;
* :mod:`repro.obs.reqctx` — request-scoped trace context: a per-request
  id plus span/annotation collector that follows the request across
  threads (handler -> pool -> writer queue);
* :mod:`repro.obs.slowlog` — the bounded slow-request log behind the
  server's ``/debug/slow``, and the Chrome-trace exporter;
* :mod:`repro.obs.observer` — the :class:`Observer` facade bundling all
  of the above, and the shared no-op :data:`NULL_OBSERVER` that keeps
  the disabled path near-zero-cost.

Everything is off by default: :class:`repro.db.connection.Database` and
:class:`repro.core.store.RDFStore` carry :data:`NULL_OBSERVER` unless
observation is requested explicitly (``RDFStore(observe=True)``) or via
the ``REPRO_OBSERVE`` environment variable.
"""

from repro.obs.logjson import JsonFormatter, configure_logging
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NULL_REGISTRY,
)
from repro.obs.observer import NULL_OBSERVER, Observer, observe_from_env
from repro.obs.reqctx import (
    RequestTrace,
    activate,
    clean_request_id,
    current_trace,
    deactivate,
    new_request_id,
)
from repro.obs.slowlog import (
    SlowRequestLog,
    chrome_trace_events,
    render_span_tree,
)
from repro.obs.sqltrace import SQLInstrumenter, normalize_statement
from repro.obs.tracing import NULL_TRACER, Span, Tracer

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "JsonFormatter",
    "MetricsRegistry",
    "NULL_OBSERVER",
    "NULL_REGISTRY",
    "NULL_TRACER",
    "Observer",
    "RequestTrace",
    "SQLInstrumenter",
    "SlowRequestLog",
    "Span",
    "Tracer",
    "activate",
    "chrome_trace_events",
    "clean_request_id",
    "configure_logging",
    "current_trace",
    "deactivate",
    "new_request_id",
    "normalize_statement",
    "observe_from_env",
    "render_span_tree",
]

"""The Jena2 store: per-model table management.

"Models are stored in separate tables, and each model stores asserted
statements in one table and reified statements in another" (paper
section 3.1).  :class:`Jena2Store` creates those tables — with the
indexes a deployed Jena2-on-Oracle would carry — and hands out
:class:`repro.jena2.model.JenaModel` views.
"""

from __future__ import annotations

import json
from typing import TYPE_CHECKING, Iterator, Sequence

from repro.db.connection import Database, quote_identifier
from repro.errors import ModelExistsError, ModelNotFoundError
from repro.jena2.model import JenaModel
from repro.jena2.property_tables import PropertyTable
from repro.rdf.terms import URI

if TYPE_CHECKING:  # pragma: no cover - typing only
    from pathlib import Path

_CATALOG = "jena_models$"
_PROP_CATALOG = "jena_prop_tables$"


class Jena2Store:
    """Multi-model Jena2 layout on one database.

    :param database: the hosting database; a path or None (in-memory)
        is also accepted.
    """

    def __init__(self, database: "Database | str | Path | None" = None
                 ) -> None:
        if database is None:
            database = Database()
        elif not isinstance(database, Database):
            database = Database(database)
        self._db = database
        self._db.execute(
            f"CREATE TABLE IF NOT EXISTS {quote_identifier(_CATALOG)} ("
            " model_name TEXT PRIMARY KEY)")
        self._db.execute(
            f"CREATE TABLE IF NOT EXISTS "
            f"{quote_identifier(_PROP_CATALOG)} ("
            " model_name TEXT NOT NULL,"
            " table_name TEXT NOT NULL,"
            " predicates TEXT NOT NULL,"
            " PRIMARY KEY (model_name, table_name))")

    @property
    def database(self) -> Database:
        return self._db

    def close(self) -> None:
        self._db.close()

    # ------------------------------------------------------------------
    # naming
    # ------------------------------------------------------------------

    @staticmethod
    def statement_table(model_name: str) -> str:
        """The asserted-statement table of a model."""
        return f"jena_{model_name.lower()}_stmt"

    @staticmethod
    def reified_table(model_name: str) -> str:
        """The reified-statement property-class table of a model."""
        return f"jena_{model_name.lower()}_reif"

    # ------------------------------------------------------------------
    # model management
    # ------------------------------------------------------------------

    def create_model(self, model_name: str,
                     property_tables: Sequence[
                         tuple[str, Sequence[URI]]] = ()) -> JenaModel:
        """Create a model's tables and indexes.

        ``property_tables`` configures section 3.1's optional property
        tables at graph-creation time: each (table_name, predicates)
        entry becomes a :class:`~repro.jena2.property_tables.
        PropertyTable`; statements whose predicate is covered are routed
        there instead of the statement table.
        """
        name = model_name.lower()
        if self.model_exists(name):
            raise ModelExistsError(model_name)
        stmt = self.statement_table(name)
        reif = self.reified_table(name)
        self._db.executescript(f"""
            CREATE TABLE {quote_identifier(stmt)} (
                subj TEXT NOT NULL,
                prop TEXT NOT NULL,
                obj  TEXT NOT NULL);
            CREATE INDEX {quote_identifier(stmt + '_subj')}
                ON {quote_identifier(stmt)} (subj);
            CREATE INDEX {quote_identifier(stmt + '_prop')}
                ON {quote_identifier(stmt)} (prop);
            CREATE INDEX {quote_identifier(stmt + '_obj')}
                ON {quote_identifier(stmt)} (obj);
            CREATE TABLE {quote_identifier(reif)} (
                stmt_uri TEXT PRIMARY KEY,
                subj     TEXT,
                prop     TEXT,
                obj      TEXT,
                rdf_type TEXT);
            CREATE INDEX {quote_identifier(reif + '_spo')}
                ON {quote_identifier(reif)} (subj, prop, obj);
        """)
        self._db.execute(
            f"INSERT INTO {quote_identifier(_CATALOG)} VALUES (?)",
            (name,))
        for table_name, predicates in property_tables:
            PropertyTable.create(self._db, table_name, list(predicates))
            self._db.execute(
                f"INSERT INTO {quote_identifier(_PROP_CATALOG)} "
                "VALUES (?, ?, ?)",
                (name, table_name,
                 json.dumps([p.value for p in predicates])))
        return JenaModel(self, name)

    def property_tables(self, model_name: str) -> list[PropertyTable]:
        """The configured property tables of a model."""
        tables: list[PropertyTable] = []
        for row in self._db.query_all(
                f"SELECT table_name, predicates FROM "
                f"{quote_identifier(_PROP_CATALOG)} "
                "WHERE model_name = ? ORDER BY table_name",
                (model_name.lower(),)):
            predicates = [URI(value)
                          for value in json.loads(row["predicates"])]
            tables.append(PropertyTable(self._db, row["table_name"],
                                        predicates))
        return tables

    def open_model(self, model_name: str) -> JenaModel:
        """Open an existing model."""
        name = model_name.lower()
        if not self.model_exists(name):
            raise ModelNotFoundError(model_name)
        return JenaModel(self, name)

    def drop_model(self, model_name: str) -> None:
        """Drop a model and its tables (property tables included)."""
        name = model_name.lower()
        if not self.model_exists(name):
            raise ModelNotFoundError(model_name)
        self._db.drop_table(self.statement_table(name))
        self._db.drop_table(self.reified_table(name))
        for table in self.property_tables(name):
            self._db.drop_table(table.table_name)
        self._db.execute(
            f"DELETE FROM {quote_identifier(_PROP_CATALOG)} "
            "WHERE model_name = ?", (name,))
        self._db.execute(
            f"DELETE FROM {quote_identifier(_CATALOG)} "
            "WHERE model_name = ?", (name,))

    def model_exists(self, model_name: str) -> bool:
        return self._db.query_one(
            f"SELECT 1 FROM {quote_identifier(_CATALOG)} "
            "WHERE model_name = ?", (model_name.lower(),)) is not None

    def model_names(self) -> Iterator[str]:
        for row in self._db.query_all(
                f"SELECT model_name FROM {quote_identifier(_CATALOG)} "
                "ORDER BY model_name"):
            yield row["model_name"]

"""The Jena2 baseline: denormalized multi-model relational RDF storage.

Section 3.1 of the paper reviews the Jena2 schema the experiments
compare against:

* a *multi-model* layout — each model stores asserted statements in one
  table and reified statements in another;
* the asserted statement table stores **actual text values** in
  subject/predicate/object columns (denormalized; more space, fewer
  joins);
* reified statements live in a *property-class table* with columns
  StmtURI, rdf:subject, rdf:predicate, rdf:object, rdf:type — "a single
  row with all attributes present represents a reified triple";
* optional *property tables* cluster subject-value pairs for chosen
  predicates (the Dublin Core example);
* Jena1's normalized layout (statement table + resource/literal tables,
  three-way join on find) is provided for the ABL-SCHEMA ablation.

The API mirrors Jena's Model: ``list_statements``, ``create_statement``,
``is_reified`` — so the Experiment II/III queries read like the paper's
Java snippets.
"""

from repro.jena2.store import Jena2Store
from repro.jena2.model import JenaModel, Statement
from repro.jena2.property_tables import PropertyTable
from repro.jena2.jena1 import Jena1Store

__all__ = [
    "Jena1Store",
    "Jena2Store",
    "JenaModel",
    "PropertyTable",
    "Statement",
]

"""Jena2 property tables.

"Jena2 can be configured to include property tables on graph creation
... these tables store subject-value pairs for specified predicates"
(paper section 3.1).  A property table has a subject column plus one
column per configured predicate; a row stores the values of those
predicates for a common subject.  Predicate URIs themselves are not
stored (the "modest storage reduction"), and commonly co-accessed
properties cluster in one row (the performance motivation).

The Dublin Core example of the paper::

    PropertyTable.create(db, "dc_props", "docs", [DC.title,
                         DC.publisher, DC.description])
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator, Sequence

from repro.db.connection import quote_identifier
from repro.errors import StorageError
from repro.jena2.encoding import decode_term, encode_term
from repro.rdf.terms import RDFTerm, URI
from repro.rdf.triple import Triple

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.db.connection import Database


def _column_for(predicate: URI) -> str:
    """A column name derived from a predicate's local name."""
    local = predicate.value
    for separator in ("#", "/", ":"):
        if separator in local:
            local = local.rsplit(separator, 1)[1]
    cleaned = "".join(ch if ch.isalnum() else "_" for ch in local)
    if not cleaned or not cleaned[0].isalpha():
        cleaned = "p_" + cleaned
    return cleaned.lower()


class PropertyTable:
    """One property table: subject + one column per predicate."""

    def __init__(self, database: "Database", table_name: str,
                 predicates: Sequence[URI]) -> None:
        if not predicates:
            raise StorageError("a property table needs >= 1 predicate")
        self._db = database
        self.table_name = table_name
        self.predicates = tuple(predicates)
        self._columns = {predicate: _column_for(predicate)
                         for predicate in self.predicates}
        if len(set(self._columns.values())) != len(self._columns):
            raise StorageError(
                "property-table predicates collide on column names: "
                f"{sorted(self._columns.values())}")

    @classmethod
    def create(cls, database: "Database", table_name: str,
               predicates: Sequence[URI]) -> "PropertyTable":
        """Create the table for the given predicates."""
        table = cls(database, table_name, predicates)
        columns = ", ".join(
            f"{quote_identifier(column)} TEXT"
            for column in table._columns.values())
        database.execute(
            f"CREATE TABLE {quote_identifier(table_name)} "
            f"(subject TEXT PRIMARY KEY, {columns})")
        return table

    def column_for(self, predicate: URI) -> str:
        column = self._columns.get(predicate)
        if column is None:
            raise StorageError(
                f"{predicate} is not covered by property table "
                f"{self.table_name}")
        return column

    def covers(self, predicate: URI) -> bool:
        return predicate in self._columns

    # ------------------------------------------------------------------
    # writes
    # ------------------------------------------------------------------

    def set_value(self, subject: RDFTerm, predicate: URI,
                  obj: RDFTerm) -> None:
        """Upsert one predicate value for a subject."""
        column = self.column_for(predicate)
        self._db.execute(
            f"INSERT INTO {quote_identifier(self.table_name)} "
            f"(subject, {quote_identifier(column)}) VALUES (?, ?) "
            f"ON CONFLICT(subject) DO UPDATE SET "
            f"{quote_identifier(column)} = excluded."
            f"{quote_identifier(column)}",
            (encode_term(subject), encode_term(obj)))

    def add_triple(self, triple: Triple) -> bool:
        """Route a triple into the table; False when not covered."""
        if not self.covers(triple.predicate):
            return False
        self.set_value(triple.subject, triple.predicate, triple.object)
        return True

    # ------------------------------------------------------------------
    # reads
    # ------------------------------------------------------------------

    def get_value(self, subject: RDFTerm, predicate: URI) -> RDFTerm | None:
        """The stored value, or None."""
        column = self.column_for(predicate)
        row = self._db.query_one(
            f"SELECT {quote_identifier(column)} FROM "
            f"{quote_identifier(self.table_name)} WHERE subject = ?",
            (encode_term(subject),))
        if row is None or row[0] is None:
            return None
        return decode_term(row[0])

    def subject_row(self, subject: RDFTerm) -> dict[URI, RDFTerm]:
        """All clustered values of one subject (one-row fetch)."""
        row = self._db.query_one(
            f"SELECT * FROM {quote_identifier(self.table_name)} "
            "WHERE subject = ?", (encode_term(subject),))
        if row is None:
            return {}
        values: dict[URI, RDFTerm] = {}
        for predicate, column in self._columns.items():
            text = row[column]
            if text is not None:
                values[predicate] = decode_term(text)
        return values

    def triples(self) -> Iterator[Triple]:
        """Expand the table back into triples."""
        for row in self._db.execute(
                f"SELECT * FROM {quote_identifier(self.table_name)}"):
            subject = decode_term(row["subject"])
            for predicate, column in self._columns.items():
                text = row[column]
                if text is not None:
                    yield Triple(subject, predicate,
                                 decode_term(text))

    def __len__(self) -> int:
        return self._db.row_count(self.table_name)

"""Term encoding for the Jena relational layouts.

Jena's database layouts store typed columns of encoded term text (its
own ``Uv::``/``Lv::`` prefixes); what matters for fidelity is that the
encoding is *lossless* — a typed literal must come back typed.  We use
the N-Triples spelling for literals (it carries language tags and
datatypes) and the raw lexical form for URIs and blank nodes, which
keeps the common case (URI columns) human-readable and index-friendly.
"""

from __future__ import annotations

from repro.rdf.ntriples import term_to_ntriples
from repro.rdf.terms import Literal, RDFTerm, parse_term_text


def encode_term(term: RDFTerm) -> str:
    """The column text for ``term`` (lossless)."""
    if isinstance(term, Literal):
        return term_to_ntriples(term)
    return term.lexical


def decode_term(text: str) -> RDFTerm:
    """Rebuild the term from its column text."""
    return parse_term_text(text)

"""The Jena1 baseline: the normalized triple store.

"Jena1 utilized a normalized triple store approach: a statement table
stored references to the subject, predicate, and object, and the actual
text values for the URIs and the literals were stored in two additional
tables.  This design was efficient on space ... however, a three-way
join was required for find operations" (paper section 3.1).

:class:`Jena1Store` implements exactly that layout — a statement table
of IDs, a resources table, and a literals table — so the ABL-SCHEMA
ablation can measure the space/time trade-off against Jena2 and the RDF
objects.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator

from repro.db.connection import Database, quote_identifier
from repro.db.storage import StorageReport, combined_storage, table_storage
from repro.jena2.encoding import decode_term, encode_term
from repro.rdf.terms import Literal, RDFTerm, URI, parse_term_text
from repro.rdf.triple import Triple

if TYPE_CHECKING:  # pragma: no cover - typing only
    from pathlib import Path

_STMT = "jena1_stmt"
_RESOURCES = "jena1_resources"
_LITERALS = "jena1_literals"


class Jena1Store:
    """The single-statement-table normalized layout."""

    def __init__(self, database: "Database | str | Path | None" = None
                 ) -> None:
        if database is None:
            database = Database()
        elif not isinstance(database, Database):
            database = Database(database)
        self._db = database
        self._db.executescript(f"""
            CREATE TABLE IF NOT EXISTS {quote_identifier(_RESOURCES)} (
                res_id INTEGER PRIMARY KEY,
                uri TEXT NOT NULL UNIQUE);
            CREATE TABLE IF NOT EXISTS {quote_identifier(_LITERALS)} (
                lit_id INTEGER PRIMARY KEY,
                value TEXT NOT NULL UNIQUE);
            CREATE TABLE IF NOT EXISTS {quote_identifier(_STMT)} (
                subj_id INTEGER NOT NULL,
                prop_id INTEGER NOT NULL,
                obj_id  INTEGER NOT NULL,
                obj_is_literal INTEGER NOT NULL DEFAULT 0);
            CREATE INDEX IF NOT EXISTS jena1_stmt_s
                ON {quote_identifier(_STMT)} (subj_id);
            CREATE INDEX IF NOT EXISTS jena1_stmt_p
                ON {quote_identifier(_STMT)} (prop_id);
            CREATE INDEX IF NOT EXISTS jena1_stmt_o
                ON {quote_identifier(_STMT)} (obj_id, obj_is_literal);
        """)

    @property
    def database(self) -> Database:
        return self._db

    def close(self) -> None:
        self._db.close()

    # ------------------------------------------------------------------
    # value tables
    # ------------------------------------------------------------------

    def _resource_id(self, term: RDFTerm) -> int:
        row = self._db.query_one(
            f"SELECT res_id FROM {quote_identifier(_RESOURCES)} "
            "WHERE uri = ?", (term.lexical,))
        if row is not None:
            return int(row["res_id"])
        cursor = self._db.execute(
            f"INSERT INTO {quote_identifier(_RESOURCES)} (uri) "
            "VALUES (?)", (term.lexical,))
        return int(cursor.lastrowid)

    def _literal_id(self, term: Literal) -> int:
        row = self._db.query_one(
            f"SELECT lit_id FROM {quote_identifier(_LITERALS)} "
            "WHERE value = ?", (encode_term(term),))
        if row is not None:
            return int(row["lit_id"])
        cursor = self._db.execute(
            f"INSERT INTO {quote_identifier(_LITERALS)} (value) "
            "VALUES (?)", (encode_term(term),))
        return int(cursor.lastrowid)

    # ------------------------------------------------------------------
    # statements
    # ------------------------------------------------------------------

    def add(self, triple: Triple) -> None:
        """Insert a statement (references only)."""
        subj_id = self._resource_id(triple.subject)
        prop_id = self._resource_id(triple.predicate)
        if isinstance(triple.object, Literal):
            obj_id, is_literal = self._literal_id(triple.object), 1
        else:
            obj_id, is_literal = self._resource_id(triple.object), 0
        self._db.execute(
            f"INSERT INTO {quote_identifier(_STMT)} VALUES (?, ?, ?, ?)",
            (subj_id, prop_id, obj_id, is_literal))

    def add_all(self, triples) -> int:
        count = 0
        with self._db.transaction():
            for triple in triples:
                self.add(triple)
                count += 1
        return count

    def find_by_subject(self, subject_text: str) -> Iterator[Triple]:
        """The find operation: the three-way join of the paper.

        Joins the statement table with the resources table (for subject,
        predicate, and resource objects) and the literals table (for
        literal objects).
        """
        stmt = quote_identifier(_STMT)
        res = quote_identifier(_RESOURCES)
        lit = quote_identifier(_LITERALS)
        sql = (
            f"SELECT rs.uri AS subj, rp.uri AS prop, "
            f"ro.uri AS obj_res, lo.value AS obj_lit, "
            f"st.obj_is_literal AS is_lit "
            f"FROM {stmt} st "
            f"JOIN {res} rs ON rs.res_id = st.subj_id "
            f"JOIN {res} rp ON rp.res_id = st.prop_id "
            f"LEFT JOIN {res} ro ON ro.res_id = st.obj_id "
            f"AND st.obj_is_literal = 0 "
            f"LEFT JOIN {lit} lo ON lo.lit_id = st.obj_id "
            f"AND st.obj_is_literal = 1 "
            f"WHERE rs.uri = ?")
        for row in self._db.execute(sql, (subject_text,)):
            yield self._triple_from_row(row)

    @staticmethod
    def _triple_from_row(row) -> Triple:
        subject = parse_term_text(row["subj"])
        predicate = parse_term_text(row["prop"])
        assert isinstance(predicate, URI)
        if row["is_lit"]:
            obj: RDFTerm = decode_term(row["obj_lit"])
        else:
            obj = parse_term_text(row["obj_res"])
        return Triple(subject, predicate, obj)

    def size(self) -> int:
        return self._db.row_count(_STMT)

    def storage(self) -> StorageReport:
        """Combined storage of the three tables (ABL-SCHEMA metric)."""
        return combined_storage(
            [table_storage(self._db, table)
             for table in (_STMT, _RESOURCES, _LITERALS)],
            label="jena1")

"""The Jena-style Model API over the Jena2 relational layout.

Mirrors the Jena calls the paper's experiments use (Figures 10 and 11)::

    StmtIterator iter = m.listStatements(m.getResource(uri), null, null);
    boolean isReif = m.isReified(stmt);

A :class:`Statement` is the Jena statement object: subject/predicate/
object terms.  :class:`JenaModel` is one model's view over its asserted
and reified statement tables (created by
:class:`repro.jena2.store.Jena2Store`).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterator

from repro.db.connection import quote_identifier
from repro.jena2.encoding import decode_term, encode_term
from repro.rdf.terms import RDFTerm, URI, parse_term_text
from repro.rdf.triple import Triple

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.db.connection import Database
    from repro.jena2.store import Jena2Store

_reif_uri_counter = itertools.count(1)


@dataclass(frozen=True, slots=True)
class Statement:
    """A Jena statement: the term triple plus convenience accessors."""

    subject: RDFTerm
    predicate: URI
    object: RDFTerm

    @classmethod
    def from_triple(cls, triple: Triple) -> "Statement":
        return cls(triple.subject, triple.predicate, triple.object)

    def as_triple(self) -> Triple:
        return Triple(self.subject, self.predicate, self.object)

    def __str__(self) -> str:
        return f"[{self.subject}, {self.predicate}, {self.object}]"


class JenaModel:
    """One Jena2 model: asserted + reified statement tables."""

    def __init__(self, store: "Jena2Store", model_name: str) -> None:
        self._store = store
        self._db: "Database" = store.database
        self.model_name = model_name
        self._property_tables = None

    def _tables_for_properties(self):
        """The model's configured property tables (lazy)."""
        if self._property_tables is None:
            self._property_tables = self._store.property_tables(
                self.model_name)
        return self._property_tables

    def _route_to_property_table(self, triple: Triple) -> bool:
        """Store ``triple`` in a covering property table, if any."""
        for table in self._tables_for_properties():
            if table.add_triple(triple):
                return True
        return False

    @property
    def statement_table(self) -> str:
        return self._store.statement_table(self.model_name)

    @property
    def reified_table(self) -> str:
        return self._store.reified_table(self.model_name)

    # ------------------------------------------------------------------
    # resource/statement factories (Jena API shims)
    # ------------------------------------------------------------------

    @staticmethod
    def get_resource(uri: str) -> RDFTerm:
        """``m.getResource(uri)``."""
        return parse_term_text(uri)

    @staticmethod
    def get_property(uri: str) -> URI:
        """``m.getProperty(uri)``."""
        term = parse_term_text(uri)
        assert isinstance(term, URI)
        return term

    @staticmethod
    def create_statement(subject: RDFTerm, predicate: URI,
                         obj: RDFTerm) -> Statement:
        """``m.createStatement(s, p, o)``."""
        return Statement(subject, predicate, obj)

    # ------------------------------------------------------------------
    # asserted statements
    # ------------------------------------------------------------------

    def add(self, statement: Statement | Triple) -> None:
        """Insert an asserted statement (text stored inline).

        With property tables configured (section 3.1), statements whose
        predicate is covered are clustered there instead.
        """
        triple = statement.as_triple() if isinstance(statement, Statement) \
            else statement
        if self._route_to_property_table(triple):
            return
        self._db.execute(
            f"INSERT INTO {quote_identifier(self.statement_table)} "
            "(subj, prop, obj) VALUES (?, ?, ?)",
            (encode_term(triple.subject), encode_term(triple.predicate),
             encode_term(triple.object)))

    def add_all(self, statements) -> int:
        """Bulk insert; returns the statement count added."""
        rows = []
        routed = 0
        for statement in statements:
            triple = statement.as_triple() \
                if isinstance(statement, Statement) else statement
            if self._route_to_property_table(triple):
                routed += 1
                continue
            rows.append((encode_term(triple.subject),
                         encode_term(triple.predicate),
                         encode_term(triple.object)))
        self._db.executemany(
            f"INSERT INTO {quote_identifier(self.statement_table)} "
            "(subj, prop, obj) VALUES (?, ?, ?)", rows)
        return len(rows) + routed

    def remove(self, statement: Statement | Triple) -> int:
        triple = statement.as_triple() if isinstance(statement, Statement) \
            else statement
        cursor = self._db.execute(
            f"DELETE FROM {quote_identifier(self.statement_table)} "
            "WHERE subj = ? AND prop = ? AND obj = ?",
            (encode_term(triple.subject), encode_term(triple.predicate),
             encode_term(triple.object)))
        return cursor.rowcount

    def list_statements(self, subject: RDFTerm | None = None,
                        predicate: URI | None = None,
                        obj: RDFTerm | None = None
                        ) -> Iterator[Statement]:
        """``m.listStatements(s, p, o)`` with null wildcards.

        One single-table SQL query — the design point of Jena2's
        denormalized layout (no joins on find).
        """
        clauses: list[str] = []
        params: list[str] = []
        for column, term in (("subj", subject), ("prop", predicate),
                             ("obj", obj)):
            if term is not None:
                clauses.append(f"{column} = ?")
                params.append(encode_term(term))
        sql = (f"SELECT subj, prop, obj FROM "
               f"{quote_identifier(self.statement_table)}")
        if clauses:
            sql += " WHERE " + " AND ".join(clauses)
        for row in self._db.execute(sql, params):
            yield self._statement_from_row(row)
        for triple in self._property_table_matches(subject, predicate,
                                                   obj):
            yield Statement.from_triple(triple)

    def _property_table_matches(self, subject, predicate, obj):
        """Statements from the property tables matching the pattern."""
        for table in self._tables_for_properties():
            for triple in table.triples():
                if subject is not None and triple.subject != subject:
                    continue
                if predicate is not None and \
                        triple.predicate != predicate:
                    continue
                if obj is not None and triple.object != obj:
                    continue
                yield triple

    def contains(self, statement: Statement | Triple) -> bool:
        triple = statement.as_triple() if isinstance(statement, Statement) \
            else statement
        in_statement_table = self._db.query_one(
            f"SELECT 1 FROM {quote_identifier(self.statement_table)} "
            "WHERE subj = ? AND prop = ? AND obj = ? LIMIT 1",
            (encode_term(triple.subject), encode_term(triple.predicate),
             encode_term(triple.object))) is not None
        if in_statement_table:
            return True
        for table in self._tables_for_properties():
            if table.covers(triple.predicate) and table.get_value(
                    triple.subject, triple.predicate) == triple.object:
                return True
        return False

    def size(self) -> int:
        """``m.size()``: asserted statement count (all tables)."""
        count = self._db.row_count(self.statement_table)
        for table in self._tables_for_properties():
            count += sum(1 for _triple in table.triples())
        return count

    @staticmethod
    def _statement_from_row(row) -> Statement:
        subject = decode_term(row["subj"])
        predicate = decode_term(row["prop"])
        obj = decode_term(row["obj"])
        assert isinstance(predicate, URI)
        return Statement(subject, predicate, obj)

    # ------------------------------------------------------------------
    # reified statements (property-class table)
    # ------------------------------------------------------------------

    def create_reified_statement(self, statement: Statement | Triple,
                                 stmt_uri: str | None = None) -> str:
        """Reify a statement: one property-class row with all attributes.

        Returns the StmtURI.  Idempotent per (statement, auto-URI): an
        existing reification row for the same statement is reused when
        no explicit URI is given, matching Jena's reified-statement
        cache.
        """
        triple = statement.as_triple() if isinstance(statement, Statement) \
            else statement
        if stmt_uri is None:
            existing = self._find_reified(triple)
            if existing is not None:
                return existing
            stmt_uri = (f"urn:jena:reified:{self.model_name}:"
                        f"{next(_reif_uri_counter)}")
        self._db.execute(
            f"INSERT INTO {quote_identifier(self.reified_table)} "
            "(stmt_uri, subj, prop, obj, rdf_type) VALUES (?, ?, ?, ?, ?)",
            (stmt_uri, encode_term(triple.subject),
             encode_term(triple.predicate),
             encode_term(triple.object),
             "http://www.w3.org/1999/02/22-rdf-syntax-ns#Statement"))
        return stmt_uri

    def _find_reified(self, triple: Triple) -> str | None:
        row = self._db.query_one(
            f"SELECT stmt_uri FROM {quote_identifier(self.reified_table)} "
            "WHERE subj = ? AND prop = ? AND obj = ? LIMIT 1",
            (encode_term(triple.subject), encode_term(triple.predicate),
             encode_term(triple.object)))
        return None if row is None else row["stmt_uri"]

    def is_reified(self, statement: Statement | Triple) -> bool:
        """``m.isReified(stmt)``: one indexed lookup on the
        property-class table — Jena2's optimised reification check."""
        triple = statement.as_triple() if isinstance(statement, Statement) \
            else statement
        return self._find_reified(triple) is not None

    def reified_count(self) -> int:
        return self._db.row_count(self.reified_table)

    def list_reified(self) -> Iterator[tuple[str, Statement]]:
        """All (StmtURI, statement) reifications of this model."""
        for row in self._db.execute(
                f"SELECT stmt_uri, subj, prop, obj FROM "
                f"{quote_identifier(self.reified_table)}"):
            yield row["stmt_uri"], self._statement_from_row(row)

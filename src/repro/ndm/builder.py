"""Creating and editing standalone NDM logical networks.

The RDF store rides on NDM, but NDM itself is a general network
facility — "Oracle's optimal solution for storing, managing, and
analyzing networks or graphs in the database".  This module provides
the *managing* part for networks that are not RDF models: creating a
network's node/link tables, inserting and removing nodes and links,
and updating link costs.  The resulting networks are ordinary catalog
entries, so :class:`repro.ndm.network.LogicalNetwork` and the analysis
suite work on them unchanged.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.db.connection import quote_identifier
from repro.errors import NetworkError
from repro.ndm.catalog import NetworkCatalog, NetworkMetadata
from repro.ndm.network import Link, LogicalNetwork

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.db.connection import Database


class NetworkBuilder:
    """Create and mutate one standalone logical network.

    :param database: the hosting database.
    :param network_name: catalog name; the backing tables are
        ``ndm_<name>_node$`` and ``ndm_<name>_link$``.
    """

    def __init__(self, database: "Database", network_name: str,
                 directed: bool = True) -> None:
        self._db = database
        self.network_name = network_name
        self._catalog = NetworkCatalog(database)
        if not self._catalog.exists(network_name):
            self._create(directed)
        self._meta = self._catalog.get(network_name)

    def _table(self, kind: str) -> str:
        return f"ndm_{self.network_name.lower()}_{kind}$"

    def _create(self, directed: bool) -> None:
        node_table = self._table("node")
        link_table = self._table("link")
        self._db.executescript(f"""
            CREATE TABLE {quote_identifier(node_table)} (
                node_id   INTEGER PRIMARY KEY,
                node_name TEXT UNIQUE,
                active    TEXT NOT NULL DEFAULT 'Y');
            CREATE TABLE {quote_identifier(link_table)} (
                link_id       INTEGER PRIMARY KEY,
                link_name     TEXT,
                start_node_id INTEGER NOT NULL REFERENCES
                              {quote_identifier(node_table)} (node_id),
                end_node_id   INTEGER NOT NULL REFERENCES
                              {quote_identifier(node_table)} (node_id),
                cost          REAL NOT NULL DEFAULT 1.0);
            CREATE INDEX {quote_identifier(link_table + '_s')}
                ON {quote_identifier(link_table)} (start_node_id);
            CREATE INDEX {quote_identifier(link_table + '_e')}
                ON {quote_identifier(link_table)} (end_node_id);
        """)
        self._catalog.register(NetworkMetadata(
            network_name=self.network_name,
            node_table=node_table,
            link_table=link_table,
            node_id_column="node_id",
            link_id_column="link_id",
            start_node_column="start_node_id",
            end_node_column="end_node_id",
            cost_column="cost",
            directed=directed))

    # ------------------------------------------------------------------
    # nodes
    # ------------------------------------------------------------------

    def add_node(self, node_name: str | None = None) -> int:
        """Insert a node; returns its NODE_ID.

        Named nodes are idempotent: re-adding a name returns the
        existing ID.
        """
        if node_name is not None:
            existing = self.node_id(node_name)
            if existing is not None:
                return existing
        cursor = self._db.execute(
            f"INSERT INTO {quote_identifier(self._table('node'))} "
            "(node_name) VALUES (?)", (node_name,))
        return int(cursor.lastrowid)

    def node_id(self, node_name: str) -> int | None:
        """The NODE_ID of a named node, or None."""
        return self._db.query_value(
            f"SELECT node_id FROM "
            f"{quote_identifier(self._table('node'))} "
            "WHERE node_name = ?", (node_name,))

    def remove_node(self, node_id: int) -> None:
        """Remove a node; refuses while links reference it."""
        in_use = self._db.query_one(
            f"SELECT 1 FROM {quote_identifier(self._table('link'))} "
            "WHERE start_node_id = ? OR end_node_id = ? LIMIT 1",
            (node_id, node_id))
        if in_use is not None:
            raise NetworkError(
                f"node {node_id} still has links; remove them first")
        self._db.execute(
            f"DELETE FROM {quote_identifier(self._table('node'))} "
            "WHERE node_id = ?", (node_id,))

    # ------------------------------------------------------------------
    # links
    # ------------------------------------------------------------------

    def add_link(self, start_node_id: int, end_node_id: int,
                 cost: float = 1.0,
                 link_name: str | None = None) -> Link:
        """Insert a directed link; returns it."""
        if cost < 0:
            raise NetworkError(f"link cost must be >= 0, got {cost}")
        cursor = self._db.execute(
            f"INSERT INTO {quote_identifier(self._table('link'))} "
            "(link_name, start_node_id, end_node_id, cost) "
            "VALUES (?, ?, ?, ?)",
            (link_name, start_node_id, end_node_id, cost))
        return Link(int(cursor.lastrowid), start_node_id, end_node_id,
                    cost)

    def connect(self, start_name: str, end_name: str,
                cost: float = 1.0) -> Link:
        """Name-based convenience: add (and auto-create) named nodes
        and a link between them."""
        return self.add_link(self.add_node(start_name),
                             self.add_node(end_name), cost=cost)

    def set_cost(self, link_id: int, cost: float) -> None:
        """Update one link's traversal cost."""
        if cost < 0:
            raise NetworkError(f"link cost must be >= 0, got {cost}")
        cursor = self._db.execute(
            f"UPDATE {quote_identifier(self._table('link'))} "
            "SET cost = ? WHERE link_id = ?", (cost, link_id))
        if cursor.rowcount == 0:
            raise NetworkError(f"no link with LINK_ID={link_id}")

    def remove_link(self, link_id: int) -> None:
        cursor = self._db.execute(
            f"DELETE FROM {quote_identifier(self._table('link'))} "
            "WHERE link_id = ?", (link_id,))
        if cursor.rowcount == 0:
            raise NetworkError(f"no link with LINK_ID={link_id}")

    # ------------------------------------------------------------------
    # handoff
    # ------------------------------------------------------------------

    def network(self) -> LogicalNetwork:
        """The read/analysis view over this network."""
        return LogicalNetwork(self._db, self._meta)

    def node_names(self) -> dict[int, str]:
        """NODE_ID -> node_name for named nodes."""
        return {row["node_id"]: row["node_name"]
                for row in self._db.query_all(
                    f"SELECT node_id, node_name FROM "
                    f"{quote_identifier(self._table('node'))} "
                    "WHERE node_name IS NOT NULL")}

    def drop(self) -> None:
        """Drop the network: catalog entry and both tables."""
        self._catalog.drop(self.network_name)
        self._db.drop_table(self._table("link"))
        self._db.drop_table(self._table("node"))

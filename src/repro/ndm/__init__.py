"""Network Data Model (NDM) substrate.

Oracle Spatial's NDM stores, manages, and analyses networks in the
database; the paper builds the RDF store on top of it, modelling RDF
graphs as *directed logical networks* whose node and link tables are the
central-schema ``rdf_node$`` / ``rdf_link$`` tables.

This subpackage reimplements the part of NDM the RDF store relies on:

* a network **catalog** (:mod:`repro.ndm.catalog`) registering logical
  networks and the tables that back them;
* the :class:`repro.ndm.network.LogicalNetwork` API over node/link tables
  (nodes, links, degrees, neighbours);
* **analysis** (:mod:`repro.ndm.analysis`): shortest paths, reachability,
  connected components, traversals — the "analyzed as networks" promise
  of the paper's abstract.
"""

from repro.ndm.builder import NetworkBuilder
from repro.ndm.catalog import NetworkCatalog, NetworkMetadata
from repro.ndm.network import Link, LogicalNetwork, Node
from repro.ndm.analysis import (
    NetworkAnalyzer,
    Path,
    bfs_order,
    connected_components,
    nearest_neighbors,
    reachable_nodes,
    shortest_path,
    within_cost,
)

__all__ = [
    "Link",
    "LogicalNetwork",
    "NetworkAnalyzer",
    "NetworkBuilder",
    "NetworkCatalog",
    "NetworkMetadata",
    "Node",
    "Path",
    "bfs_order",
    "connected_components",
    "nearest_neighbors",
    "reachable_nodes",
    "shortest_path",
    "within_cost",
]

"""NDM network analysis: traversal, shortest paths, connectivity.

These are the "analyze as networks" capabilities the paper inherits from
NDM.  All algorithms run over an adjacency snapshot taken from a
:class:`repro.ndm.network.LogicalNetwork` so repeated analyses don't
re-query the database, and all are implemented from scratch (BFS, DFS,
Dijkstra, union-find components) — no external graph library.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Iterator

from repro.errors import NetworkError
from repro.ndm.network import LogicalNetwork

Adjacency = dict[int, list[tuple[int, float, int]]]


@dataclass(frozen=True, slots=True)
class Path:
    """A path through a network: node sequence, link sequence, total cost."""

    nodes: tuple[int, ...]
    links: tuple[int, ...]
    cost: float

    @property
    def start(self) -> int:
        return self.nodes[0]

    @property
    def end(self) -> int:
        return self.nodes[-1]

    def __len__(self) -> int:
        """Number of links (hops) in the path."""
        return len(self.links)


def shortest_path(adjacency: Adjacency, source: int,
                  target: int) -> Path | None:
    """Dijkstra shortest path from ``source`` to ``target``.

    Returns None when the target is unreachable.  A zero-length path is
    returned when source == target.
    """
    if source not in adjacency:
        raise NetworkError(f"node {source} is not in the network")
    if source == target:
        return Path((source,), (), 0.0)
    distances: dict[int, float] = {source: 0.0}
    previous: dict[int, tuple[int, int]] = {}
    queue: list[tuple[float, int]] = [(0.0, source)]
    visited: set[int] = set()
    while queue:
        distance, node = heapq.heappop(queue)
        if node in visited:
            continue
        visited.add(node)
        if node == target:
            break
        for neighbor, cost, link_id in adjacency.get(node, ()):
            if cost < 0:
                raise NetworkError(
                    f"negative link cost {cost} on link {link_id}")
            candidate = distance + cost
            if candidate < distances.get(neighbor, float("inf")):
                distances[neighbor] = candidate
                previous[neighbor] = (node, link_id)
                heapq.heappush(queue, (candidate, neighbor))
    if target not in previous:
        return None
    nodes: list[int] = [target]
    links: list[int] = []
    cursor = target
    while cursor != source:
        parent, link_id = previous[cursor]
        nodes.append(parent)
        links.append(link_id)
        cursor = parent
    nodes.reverse()
    links.reverse()
    return Path(tuple(nodes), tuple(links), distances[target])


def within_cost(adjacency: Adjacency, source: int,
                max_cost: float) -> dict[int, float]:
    """All nodes reachable within ``max_cost``, with their distances.

    Oracle NDM's "within cost" analysis: a bounded Dijkstra from the
    source.  The source is included at distance 0.
    """
    if source not in adjacency:
        raise NetworkError(f"node {source} is not in the network")
    distances: dict[int, float] = {source: 0.0}
    queue: list[tuple[float, int]] = [(0.0, source)]
    settled: dict[int, float] = {}
    while queue:
        distance, node = heapq.heappop(queue)
        if node in settled:
            continue
        settled[node] = distance
        for neighbor, cost, link_id in adjacency.get(node, ()):
            if cost < 0:
                raise NetworkError(
                    f"negative link cost {cost} on link {link_id}")
            candidate = distance + cost
            if candidate > max_cost:
                continue
            if candidate < distances.get(neighbor, float("inf")):
                distances[neighbor] = candidate
                heapq.heappush(queue, (candidate, neighbor))
    return settled


def nearest_neighbors(adjacency: Adjacency, source: int,
                      count: int) -> list[tuple[int, float]]:
    """The ``count`` nearest nodes to ``source`` by path cost.

    Oracle NDM's nearest-neighbours analysis: Dijkstra until ``count``
    nodes (excluding the source) are settled.  Returns (node, cost)
    pairs ordered by distance; fewer when the component is small.
    """
    if source not in adjacency:
        raise NetworkError(f"node {source} is not in the network")
    if count < 0:
        raise NetworkError("neighbor count must be non-negative")
    distances: dict[int, float] = {source: 0.0}
    queue: list[tuple[float, int]] = [(0.0, source)]
    settled: set[int] = set()
    neighbors: list[tuple[int, float]] = []
    while queue and len(neighbors) < count:
        distance, node = heapq.heappop(queue)
        if node in settled:
            continue
        settled.add(node)
        if node != source:
            neighbors.append((node, distance))
        for neighbor, cost, link_id in adjacency.get(node, ()):
            if cost < 0:
                raise NetworkError(
                    f"negative link cost {cost} on link {link_id}")
            candidate = distance + cost
            if candidate < distances.get(neighbor, float("inf")):
                distances[neighbor] = candidate
                heapq.heappush(queue, (candidate, neighbor))
    return neighbors


def reachable_nodes(adjacency: Adjacency, source: int,
                    max_hops: int | None = None) -> set[int]:
    """All nodes reachable from ``source`` (source included).

    ``max_hops`` bounds the BFS depth; None means unbounded.
    """
    if source not in adjacency:
        raise NetworkError(f"node {source} is not in the network")
    seen = {source}
    frontier = [source]
    hops = 0
    while frontier and (max_hops is None or hops < max_hops):
        next_frontier: list[int] = []
        for node in frontier:
            for neighbor, _cost, _link in adjacency.get(node, ()):
                if neighbor not in seen:
                    seen.add(neighbor)
                    next_frontier.append(neighbor)
        frontier = next_frontier
        hops += 1
    return seen


def bfs_order(adjacency: Adjacency, source: int) -> list[int]:
    """Breadth-first visit order from ``source``."""
    if source not in adjacency:
        raise NetworkError(f"node {source} is not in the network")
    order: list[int] = []
    seen = {source}
    frontier = [source]
    while frontier:
        next_frontier: list[int] = []
        for node in frontier:
            order.append(node)
            for neighbor, _cost, _link in adjacency.get(node, ()):
                if neighbor not in seen:
                    seen.add(neighbor)
                    next_frontier.append(neighbor)
        frontier = next_frontier
    return order


def dfs_order(adjacency: Adjacency, source: int) -> list[int]:
    """Depth-first visit order from ``source`` (iterative)."""
    if source not in adjacency:
        raise NetworkError(f"node {source} is not in the network")
    order: list[int] = []
    seen: set[int] = set()
    stack = [source]
    while stack:
        node = stack.pop()
        if node in seen:
            continue
        seen.add(node)
        order.append(node)
        neighbors = [n for n, _c, _l in adjacency.get(node, ())]
        stack.extend(reversed(neighbors))
    return order


def minimum_spanning_forest(adjacency: Adjacency
                            ) -> list[tuple[int, int, float, int]]:
    """Kruskal's minimum spanning forest over the undirected view.

    Treats every link as undirected (NDM's MST analysis ignores
    direction) and returns the chosen edges as (start, end, cost,
    link_id), one forest tree per connected component.  Deterministic:
    ties break on link_id.
    """
    edges: list[tuple[float, int, int, int]] = []
    seen_links: set[int] = set()
    for start, neighbors in adjacency.items():
        for end, cost, link_id in neighbors:
            if cost < 0:
                raise NetworkError(
                    f"negative link cost {cost} on link {link_id}")
            if link_id in seen_links:
                continue  # mirrored undirected edge
            seen_links.add(link_id)
            edges.append((cost, link_id, start, end))
    edges.sort()
    parent: dict[int, int] = {node: node for node in adjacency}

    def find(node: int) -> int:
        while parent[node] != node:
            parent[node] = parent[parent[node]]
            node = parent[node]
        return node

    forest: list[tuple[int, int, float, int]] = []
    for cost, link_id, start, end in edges:
        root_start, root_end = find(start), find(end)
        if root_start == root_end:
            continue
        parent[root_start] = root_end
        forest.append((start, end, cost, link_id))
    return forest


def connected_components(adjacency: Adjacency) -> list[set[int]]:
    """Weakly connected components, largest first.

    The adjacency must already be undirected (see
    ``LogicalNetwork.adjacency(undirected=True)``); for a directed
    adjacency this computes components of the directed reachability
    relation's symmetric closure *as given*.
    """
    components: list[set[int]] = []
    unvisited = set(adjacency)
    while unvisited:
        root = next(iter(unvisited))
        component = _flood(adjacency, root)
        components.append(component)
        unvisited -= component
    components.sort(key=len, reverse=True)
    return components


def _flood(adjacency: Adjacency, root: int) -> set[int]:
    seen = {root}
    stack = [root]
    while stack:
        node = stack.pop()
        for neighbor, _cost, _link in adjacency.get(node, ()):
            if neighbor not in seen:
                seen.add(neighbor)
                stack.append(neighbor)
    return seen


class NetworkAnalyzer:
    """Convenience facade binding the algorithms to one network.

    Takes the adjacency snapshot once and exposes the NDM-style analysis
    entry points.  ``undirected=True`` analyses the symmetric closure —
    appropriate for connectivity questions over RDF graphs, where link
    direction encodes subject/object roles rather than traversability.
    """

    def __init__(self, network: LogicalNetwork,
                 undirected: bool = False) -> None:
        self._network = network
        self._observer = network.database.observer
        with self._observer.span("ndm.snapshot",
                                 undirected=undirected) as span:
            self._adjacency = network.adjacency(undirected=undirected)
            span.set("nodes", len(self._adjacency))
        self._undirected = undirected

    @property
    def adjacency(self) -> Adjacency:
        return self._adjacency

    def has_node(self, node_id: int) -> bool:
        return node_id in self._adjacency

    def shortest_path(self, source: int, target: int) -> Path | None:
        with self._observer.span("ndm.shortest_path", source=source,
                                 target=target) as span:
            found = shortest_path(self._adjacency, source, target)
            span.set("hops", len(found) if found is not None else -1)
        return found

    def within_cost(self, source: int,
                    max_cost: float) -> dict[int, float]:
        return within_cost(self._adjacency, source, max_cost)

    def nearest_neighbors(self, source: int,
                          count: int) -> list[tuple[int, float]]:
        return nearest_neighbors(self._adjacency, source, count)

    def reachable(self, source: int,
                  max_hops: int | None = None) -> set[int]:
        return reachable_nodes(self._adjacency, source, max_hops=max_hops)

    def is_reachable(self, source: int, target: int) -> bool:
        return target in self.reachable(source)

    def bfs(self, source: int) -> list[int]:
        return bfs_order(self._adjacency, source)

    def dfs(self, source: int) -> list[int]:
        return dfs_order(self._adjacency, source)

    def components(self) -> list[set[int]]:
        with self._observer.span("ndm.components") as span:
            components = connected_components(self._adjacency)
            span.set("components", len(components))
        return components

    def minimum_spanning_forest(self):
        return minimum_spanning_forest(self._adjacency)

    def degrees(self) -> dict[int, int]:
        """Out-degree per node over the snapshot."""
        return {node: len(edges) for node, edges in self._adjacency.items()}

    def hubs(self, top: int = 10) -> list[tuple[int, int]]:
        """The ``top`` highest out-degree nodes as (node, degree)."""
        degrees = self.degrees()
        ranked = sorted(degrees.items(), key=lambda kv: (-kv[1], kv[0]))
        return ranked[:top]

    def nodes(self) -> Iterator[int]:
        return iter(self._adjacency)

"""The NDM network catalog.

Oracle NDM keeps network metadata in catalog views (which tables back a
network, whether it is directed, logical or spatial).  Our catalog is a
single table ``ndm_network$`` with one row per registered logical
network.  The RDF store registers its universe network here at schema
creation time, so generic NDM tooling can discover it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterator

from repro.db.connection import quote_identifier
from repro.errors import NetworkError, NetworkNotFoundError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.db.connection import Database

CATALOG_TABLE = "ndm_network$"


@dataclass(frozen=True, slots=True)
class NetworkMetadata:
    """One catalog row: how a logical network is stored.

    ``partition_column`` names an optional column of the link table that
    logically partitions the network (MODEL_ID for the RDF universe
    network); analyses can then be restricted to one partition.
    """

    network_name: str
    node_table: str
    link_table: str
    node_id_column: str
    link_id_column: str
    start_node_column: str
    end_node_column: str
    cost_column: str | None = None
    directed: bool = True
    partition_column: str | None = None


class NetworkCatalog:
    """CRUD over the ``ndm_network$`` catalog."""

    def __init__(self, database: "Database") -> None:
        self._db = database
        self._ensure_table()

    def _ensure_table(self) -> None:
        self._db.execute(
            f"CREATE TABLE IF NOT EXISTS {quote_identifier(CATALOG_TABLE)} ("
            " network_name TEXT PRIMARY KEY,"
            " node_table TEXT NOT NULL,"
            " link_table TEXT NOT NULL,"
            " node_id_column TEXT NOT NULL,"
            " link_id_column TEXT NOT NULL,"
            " start_node_column TEXT NOT NULL,"
            " end_node_column TEXT NOT NULL,"
            " cost_column TEXT,"
            " directed INTEGER NOT NULL DEFAULT 1,"
            " partition_column TEXT)")

    def register(self, metadata: NetworkMetadata) -> None:
        """Register a network; raises on duplicate names."""
        if self.exists(metadata.network_name):
            raise NetworkError(
                f"network {metadata.network_name!r} is already registered")
        self._db.execute(
            f"INSERT INTO {quote_identifier(CATALOG_TABLE)} VALUES "
            "(?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
            (metadata.network_name, metadata.node_table,
             metadata.link_table, metadata.node_id_column,
             metadata.link_id_column, metadata.start_node_column,
             metadata.end_node_column, metadata.cost_column,
             1 if metadata.directed else 0, metadata.partition_column))

    def drop(self, network_name: str) -> None:
        """Remove a network's catalog entry (its tables are untouched)."""
        cursor = self._db.execute(
            f"DELETE FROM {quote_identifier(CATALOG_TABLE)} "
            "WHERE network_name = ?", (network_name,))
        if cursor.rowcount == 0:
            raise NetworkNotFoundError(network_name)

    def exists(self, network_name: str) -> bool:
        return self._db.query_one(
            f"SELECT 1 FROM {quote_identifier(CATALOG_TABLE)} "
            "WHERE network_name = ?", (network_name,)) is not None

    def get(self, network_name: str) -> NetworkMetadata:
        row = self._db.query_one(
            f"SELECT * FROM {quote_identifier(CATALOG_TABLE)} "
            "WHERE network_name = ?", (network_name,))
        if row is None:
            raise NetworkNotFoundError(network_name)
        return self._metadata_from_row(row)

    def __iter__(self) -> Iterator[NetworkMetadata]:
        for row in self._db.query_all(
                f"SELECT * FROM {quote_identifier(CATALOG_TABLE)} "
                "ORDER BY network_name"):
            yield self._metadata_from_row(row)

    @staticmethod
    def _metadata_from_row(row) -> NetworkMetadata:
        return NetworkMetadata(
            network_name=row["network_name"],
            node_table=row["node_table"],
            link_table=row["link_table"],
            node_id_column=row["node_id_column"],
            link_id_column=row["link_id_column"],
            start_node_column=row["start_node_column"],
            end_node_column=row["end_node_column"],
            cost_column=row["cost_column"],
            directed=bool(row["directed"]),
            partition_column=row["partition_column"])

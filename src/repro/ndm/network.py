"""The logical-network API over node/link tables.

A *logical network* in NDM is a graph without geometry: nodes and directed
links stored in two tables.  :class:`LogicalNetwork` gives a graph-shaped
view over whatever tables the catalog entry names — for the RDF store that
is ``rdf_node$`` / ``rdf_link$``, so every RDF model *is* an NDM network
partition and all the analysis below applies to it directly (the paper's
"RDF data ... analyzed as networks").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterator

from repro.db.connection import quote_identifier
from repro.errors import NetworkError
from repro.ndm.catalog import NetworkCatalog, NetworkMetadata

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.db.connection import Database


@dataclass(frozen=True, slots=True)
class Node:
    """One network node."""

    node_id: int


@dataclass(frozen=True, slots=True)
class Link:
    """One directed network link with an optional traversal cost."""

    link_id: int
    start_node_id: int
    end_node_id: int
    cost: float = 1.0


class LogicalNetwork:
    """A graph view over the node/link tables of one catalog entry.

    :param database: the hosting database.
    :param metadata: the catalog entry describing the backing tables.
    :param partition: optional partition key value; when the metadata
        declares a ``partition_column`` (MODEL_ID for RDF), restricts the
        network to that partition — i.e. to one RDF model.
    """

    def __init__(self, database: "Database", metadata: NetworkMetadata,
                 partition: int | None = None) -> None:
        if partition is not None and metadata.partition_column is None:
            raise NetworkError(
                f"network {metadata.network_name!r} is not partitioned")
        self._db = database
        self._meta = metadata
        self._partition = partition

    @property
    def database(self) -> "Database":
        """The hosting database engine."""
        return self._db

    @classmethod
    def open(cls, database: "Database", network_name: str,
             partition: int | None = None) -> "LogicalNetwork":
        """Open a network by catalog name."""
        metadata = NetworkCatalog(database).get(network_name)
        return cls(database, metadata, partition=partition)

    @property
    def metadata(self) -> NetworkMetadata:
        return self._meta

    @property
    def directed(self) -> bool:
        return self._meta.directed

    @property
    def partition(self) -> int | None:
        return self._partition

    # ------------------------------------------------------------------
    # SQL assembly
    # ------------------------------------------------------------------

    def _link_filter(self) -> tuple[str, tuple]:
        if self._partition is None:
            return "", ()
        return (f" WHERE {quote_identifier(self._meta.partition_column)} = ?",
                (self._partition,))

    def _link_select(self, extra_where: str = "",
                     extra_params: tuple = ()) -> tuple[str, tuple]:
        meta = self._meta
        cost_expr = (quote_identifier(meta.cost_column)
                     if meta.cost_column else "1.0")
        sql = (f"SELECT {quote_identifier(meta.link_id_column)} AS link_id,"
               f" {quote_identifier(meta.start_node_column)} AS start_id,"
               f" {quote_identifier(meta.end_node_column)} AS end_id,"
               f" {cost_expr} AS cost"
               f" FROM {quote_identifier(meta.link_table)}")
        where, params = self._link_filter()
        if extra_where:
            connective = " AND " if where else " WHERE "
            where += connective + extra_where
            params = params + extra_params
        return sql + where, params

    # ------------------------------------------------------------------
    # graph access
    # ------------------------------------------------------------------

    def links(self) -> Iterator[Link]:
        """All links of the (partitioned) network."""
        sql, params = self._link_select()
        for row in self._db.execute(sql, params):
            yield Link(row["link_id"], row["start_id"], row["end_id"],
                       float(row["cost"]))

    def nodes(self) -> set[int]:
        """All node IDs participating in any link."""
        sql, params = self._link_select()
        node_ids: set[int] = set()
        for row in self._db.execute(sql, params):
            node_ids.add(row["start_id"])
            node_ids.add(row["end_id"])
        return node_ids

    def link_count(self) -> int:
        where, params = self._link_filter()
        return int(self._db.query_value(
            f"SELECT COUNT(*) FROM "
            f"{quote_identifier(self._meta.link_table)}{where}",
            params, default=0))

    def node_count(self) -> int:
        return len(self.nodes())

    def successors(self, node_id: int) -> list[Link]:
        """Links leaving ``node_id``."""
        sql, params = self._link_select(
            f"{quote_identifier(self._meta.start_node_column)} = ?",
            (node_id,))
        return [Link(row["link_id"], row["start_id"], row["end_id"],
                     float(row["cost"]))
                for row in self._db.execute(sql, params)]

    def predecessors(self, node_id: int) -> list[Link]:
        """Links arriving at ``node_id``."""
        sql, params = self._link_select(
            f"{quote_identifier(self._meta.end_node_column)} = ?",
            (node_id,))
        return [Link(row["link_id"], row["start_id"], row["end_id"],
                     float(row["cost"]))
                for row in self._db.execute(sql, params)]

    def out_degree(self, node_id: int) -> int:
        return len(self.successors(node_id))

    def in_degree(self, node_id: int) -> int:
        return len(self.predecessors(node_id))

    def degree(self, node_id: int) -> int:
        """Total degree (in + out for directed networks)."""
        return self.in_degree(node_id) + self.out_degree(node_id)

    def has_link(self, start_node_id: int, end_node_id: int) -> bool:
        """True when a link start -> end exists."""
        meta = self._meta
        sql, params = self._link_select(
            f"{quote_identifier(meta.start_node_column)} = ? AND "
            f"{quote_identifier(meta.end_node_column)} = ?",
            (start_node_id, end_node_id))
        return self._db.query_one(sql, params) is not None

    # ------------------------------------------------------------------
    # adjacency snapshot for the analyzer
    # ------------------------------------------------------------------

    def adjacency(self, undirected: bool = False
                  ) -> dict[int, list[tuple[int, float, int]]]:
        """In-memory adjacency: node -> [(neighbor, cost, link_id)].

        With ``undirected=True`` every link is mirrored, which is how NDM
        treats directed networks for connectivity-style analyses.
        """
        adjacency: dict[int, list[tuple[int, float, int]]] = {}
        for link in self.links():
            adjacency.setdefault(link.start_node_id, []).append(
                (link.end_node_id, link.cost, link.link_id))
            adjacency.setdefault(link.end_node_id, [])
            if undirected:
                adjacency[link.end_node_id].append(
                    (link.start_node_id, link.cost, link.link_id))
        return adjacency

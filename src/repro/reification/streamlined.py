"""Reporting helpers over the streamlined reification scheme.

The mutation primitives (``reify_triple``, ``assert_about``,
``assert_implied``, ``is_reified``) live on
:class:`repro.core.store.RDFStore`; this module adds the read side used
by tools, tests, and the storage experiment: enumerating reification
statements, resolving them to their base triples, and measuring what
they cost.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator

from repro.core.links import LinkRow
from repro.core.schema import LINK_TABLE, VALUE_TABLE
from repro.db.dburi import DBUri, is_dburi
from repro.db.storage import StorageReport, combined_storage
from repro.rdf.namespaces import RDF

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.store import RDFStore


def reification_statements(store: "RDFStore",
                           model_name: str) -> Iterator[LinkRow]:
    """All streamlined reification statements of a model.

    These are the ``<DBUri, rdf:type, rdf:Statement>`` rows: their
    subject value is a DBUri and their REIF_LINK is 'Y'.
    """
    model_id = store.models.get(model_name).model_id
    type_id = store.values.find_id(RDF.type)
    statement_id = store.values.find_id(RDF.Statement)
    if type_id is None or statement_id is None:
        return
    for row in store.database.execute(
            f'SELECT * FROM "{LINK_TABLE}" WHERE model_id = ? '
            "AND p_value_id = ? AND end_node_id = ? AND reif_link = 'Y'",
            (model_id, type_id, statement_id)):
        link = LinkRow.from_row(row)
        subject = store.values.get_lexical(link.start_node_id)
        if is_dburi(subject):
            yield link


def reified_link_ids(store: "RDFStore", model_name: str) -> set[int]:
    """LINK_IDs of all base triples reified in a model."""
    ids: set[int] = set()
    for statement in reification_statements(store, model_name):
        subject = store.values.get_lexical(statement.start_node_id)
        ids.add(DBUri.parse(subject).link_id)
    return ids


def reification_count(store: "RDFStore", model_name: str) -> int:
    """Number of reified statements in a model."""
    return sum(1 for _ in reification_statements(store, model_name))


def reification_storage(store: "RDFStore",
                        model_name: str) -> StorageReport:
    """Storage consumed by a model's reification machinery.

    Counts the reification link rows plus the ``rdf_value$`` rows holding
    their DBUri subjects — the incremental cost of reifying, which the
    EXP-STOR benchmark compares against the naive quad store's cost.
    The shared ``rdf:type`` / ``rdf:Statement`` values are amortised over
    the model and excluded, matching how the paper counts "one new triple
    ... for each reification".
    """
    reports: list[StorageReport] = []
    db = store.database
    for statement in reification_statements(store, model_name):
        reports.append(_row_storage(
            db, LINK_TABLE, "link_id = ?", (statement.link_id,)))
        reports.append(_row_storage(
            db, VALUE_TABLE, "value_id = ?", (statement.start_node_id,)))
    return combined_storage(reports, label="streamlined_reification")


def _row_storage(db, table: str, where: str, params: tuple
                 ) -> StorageReport:
    from repro.db.storage import table_storage
    return table_storage(db, table, where=where, parameters=params)

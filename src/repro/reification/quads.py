"""The quad loader: reading reification quads, converting to reified
statements.

The paper (section 5): "A Java API is provided for reading reification
quads and converting them into reified statements in Oracle.  On
conversion, the user specifies whether incomplete quads should be
deleted, output to a file or inserted into the database like other
triples.  The user also specifies whether URIs replaced by the DBUriType
should be stored."

:class:`QuadConverter` is that API.  It consumes triples (from an
iterable, an in-memory graph, or an N-Triples file), separates complete
reification quads from ordinary triples, and loads the result:

* ordinary triples are inserted normally;
* for each complete quad, the base triple is inserted (CONTEXT='I' when
  new, section 5.2) and reified through the streamlined scheme — one
  stored statement instead of four;
* assertions *about* the quad's resource are rewritten to point at the
  DBUri, and optionally the original resource URI is recorded in a
  mapping table (``keep_replaced_uris``);
* incomplete quads follow the selected
  :class:`IncompleteQuadPolicy`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from pathlib import Path
from typing import IO, TYPE_CHECKING, Iterable

from repro.db.connection import quote_identifier
from repro.db.dburi import DBUri
from repro.errors import IncompleteQuadError
from repro.rdf.ntriples import parse_ntriples, serialize_ntriples
from repro.rdf.reification_vocab import Quad, collect_quads, expand_quad
from repro.rdf.terms import RDFTerm, URI
from repro.rdf.triple import Triple

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.store import RDFStore

#: The mapping table recording DBUri -> original reification resource.
REPLACED_URI_TABLE = "rdf_reified_uri$"


class IncompleteQuadPolicy(enum.Enum):
    """What to do with quads missing part of their four statements."""

    #: Drop the partial statements entirely.
    DELETE = "delete"
    #: Write the partial statements to a side file.
    TO_FILE = "file"
    #: Insert the partial statements like ordinary triples.
    INSERT = "insert"
    #: Raise IncompleteQuadError (strict loads).
    RAISE = "raise"


@dataclass
class QuadConversionReport:
    """What a conversion run did."""

    ordinary_triples: int = 0
    quads_converted: int = 0
    assertions_rewritten: int = 0
    incomplete_quads: int = 0
    incomplete_statements_inserted: int = 0
    replaced_uris_kept: int = 0
    incomplete_resources: list[str] = field(default_factory=list)


class QuadConverter:
    """Converts reification quads into streamlined reified statements.

    :param store: the target store.
    :param model_name: the model to load into.
    :param incomplete: policy for incomplete quads.
    :param keep_replaced_uris: record the original reification resource
        URI for each DBUri in ``rdf_reified_uri$``.
    :param incomplete_file: target stream/path for
        ``IncompleteQuadPolicy.TO_FILE``.
    """

    def __init__(self, store: "RDFStore", model_name: str,
                 incomplete: IncompleteQuadPolicy =
                 IncompleteQuadPolicy.DELETE,
                 keep_replaced_uris: bool = False,
                 incomplete_file: IO[str] | str | Path | None = None
                 ) -> None:
        self._store = store
        self._model_name = model_name
        self._incomplete = incomplete
        self._keep_replaced = keep_replaced_uris
        self._incomplete_file = incomplete_file
        if keep_replaced_uris:
            self._ensure_mapping_table()

    def _ensure_mapping_table(self) -> None:
        self._store.database.execute(
            f"CREATE TABLE IF NOT EXISTS "
            f"{quote_identifier(REPLACED_URI_TABLE)} ("
            " dburi TEXT NOT NULL,"
            " orig_uri TEXT NOT NULL,"
            " model_name TEXT NOT NULL,"
            " PRIMARY KEY (dburi, orig_uri, model_name))")

    # ------------------------------------------------------------------
    # entry points
    # ------------------------------------------------------------------

    def convert_file(self, path: str | Path) -> QuadConversionReport:
        """Load an N-Triples file, converting its reification quads."""
        with open(path, encoding="utf-8") as stream:
            return self.convert(parse_ntriples(stream))

    def convert_text(self, document: str) -> QuadConversionReport:
        """Load an N-Triples document given as a string."""
        return self.convert(parse_ntriples(document))

    def convert_rdfxml(self, document: str) -> QuadConversionReport:
        """Load an RDF/XML document; its ``rdf:ID``-reified statements
        arrive as quads and convert to streamlined reifications."""
        from repro.rdf.rdfxml import parse_rdfxml

        return self.convert(parse_rdfxml(document))

    def convert(self, triples: Iterable[Triple]) -> QuadConversionReport:
        """Convert and load a stream of triples.

        The whole input is read before inserting — the paper notes the
        same ("the entire input file must be read before inserting
        triples"), because a quad's four statements may arrive in any
        order and assertions may precede the quad they reference.
        """
        report = QuadConversionReport()
        with self._store.observer.span("quads.convert",
                                       model=self._model_name) as span:
            complete, incomplete, others = collect_quads(triples)
            resource_to_dburi: dict[RDFTerm, str] = {}
            with self._store.database.transaction():
                for quad in complete:
                    dburi = self._load_quad(quad, report)
                    resource_to_dburi[quad.resource] = dburi
                for triple in others:
                    self._load_ordinary(triple, resource_to_dburi,
                                        report)
                self._handle_incomplete(incomplete, report)
            span.set("quads_converted", report.quads_converted)
            span.set("ordinary_triples", report.ordinary_triples)
            span.set("incomplete_quads", report.incomplete_quads)
        return report

    # ------------------------------------------------------------------
    # loading
    # ------------------------------------------------------------------

    def _load_quad(self, quad: Quad,
                   report: QuadConversionReport) -> str:
        """Insert the base triple, reify it, map resource -> DBUri."""
        store = self._store
        base = store.assert_base_for_reification(self._model_name,
                                                 quad.triple)
        dburi = DBUri.for_link(base.link_id).text
        if not store.is_reified_id(self._model_name, base.link_id):
            store.reify_triple(self._model_name, base.link_id)
        report.quads_converted += 1
        if self._keep_replaced:
            self._record_replaced(dburi, quad.resource)
            report.replaced_uris_kept += 1
        return dburi

    def _record_replaced(self, dburi: str, resource: RDFTerm) -> None:
        self._store.database.execute(
            f"INSERT OR IGNORE INTO {quote_identifier(REPLACED_URI_TABLE)} "
            "VALUES (?, ?, ?)",
            (dburi, resource.lexical, self._model_name))

    def _load_ordinary(self, triple: Triple,
                       resource_to_dburi: dict[RDFTerm, str],
                       report: QuadConversionReport) -> None:
        """Insert a non-quad triple, rewriting references to reified
        resources into their DBUris (these become assertions)."""
        rewritten = triple
        changed = False
        if triple.subject in resource_to_dburi:
            rewritten = rewritten.replace(
                subject=URI(resource_to_dburi[triple.subject]))
            changed = True
        if triple.object in resource_to_dburi:
            rewritten = rewritten.replace(
                obj=URI(resource_to_dburi[triple.object]))
            changed = True
        self._store.insert_triple_obj(self._model_name, rewritten)
        if changed:
            report.assertions_rewritten += 1
        else:
            report.ordinary_triples += 1

    def _handle_incomplete(self, incomplete,
                           report: QuadConversionReport) -> None:
        report.incomplete_quads = len(incomplete)
        if not incomplete:
            return
        report.incomplete_resources = [
            str(partial.resource) for partial in incomplete]
        if self._incomplete is IncompleteQuadPolicy.RAISE:
            first = incomplete[0]
            raise IncompleteQuadError(str(first.resource), first.missing())
        if self._incomplete is IncompleteQuadPolicy.DELETE:
            return
        statements = [stmt for partial in incomplete
                      for stmt in self._partial_statements(partial)]
        if self._incomplete is IncompleteQuadPolicy.INSERT:
            for statement in statements:
                self._store.insert_triple_obj(self._model_name, statement)
            report.incomplete_statements_inserted = len(statements)
            return
        # TO_FILE
        self._write_incomplete(statements)

    @staticmethod
    def _partial_statements(partial) -> list[Triple]:
        """Reconstruct the statements a partial quad actually contained."""
        statements = expand_quad(
            partial.resource,
            # Dummy placeholders for missing slots are filtered below.
            _PartialView(partial).as_triple())
        present: list[Triple] = []
        if partial.typed:
            present.append(statements[0])
        if partial.subject is not None:
            present.append(statements[1])
        if partial.predicate is not None:
            present.append(statements[2])
        if partial.object is not None:
            present.append(statements[3])
        return present

    def _write_incomplete(self, statements: list[Triple]) -> None:
        target = self._incomplete_file
        if target is None:
            raise IncompleteQuadError(
                "<unknown>", ["incomplete_file not configured for "
                              "IncompleteQuadPolicy.TO_FILE"])
        if isinstance(target, (str, Path)):
            with open(target, "a", encoding="utf-8") as stream:
                serialize_ntriples(statements, out=stream)
        else:
            serialize_ntriples(statements, out=target)


class _PartialView:
    """Fills missing quad slots with placeholders so expand_quad can
    rebuild the statements that *were* present."""

    _PLACEHOLDER = URI("urn:repro:quad-placeholder")

    def __init__(self, partial) -> None:
        self._partial = partial

    def as_triple(self) -> Triple:
        subject = self._partial.subject or self._PLACEHOLDER
        predicate = self._partial.predicate \
            if isinstance(self._partial.predicate, URI) else self._PLACEHOLDER
        obj = self._partial.object or self._PLACEHOLDER
        return Triple(subject, predicate, obj)

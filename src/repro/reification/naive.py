"""The naive reification baseline: four triples per reification.

"When implemented naively, reification ... significantly bloats storage
and inflates query times, since four new triples are stored for each
reification" (paper section 1).  This store is that naive implementation,
kept side-by-side with the streamlined scheme so the EXP-STOR benchmark
can measure the 25 % storage claim and the Table 2 benchmark can contrast
IS_REIFIED costs.

The naive store keeps its quads in a dedicated statement table in the
same database — a classic triple-table layout where every quad statement
is one row of inline text (the storage-maximal design the paper's "Big
Ugly" quote refers to).
"""

from __future__ import annotations

import itertools
from typing import TYPE_CHECKING

from repro.db.connection import quote_identifier
from repro.db.storage import StorageReport, table_storage
from repro.rdf.ntriples import term_to_ntriples
from repro.rdf.reification_vocab import expand_quad
from repro.rdf.terms import RDFTerm, URI
from repro.rdf.triple import Triple

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.db.connection import Database

_NAIVE_TABLE = "naive_reif_stmt$"


class NaiveReificationStore:
    """A quad-per-reification statement table.

    :param database: the hosting database.
    :param table_name: the statement table (one per comparison run).
    """

    def __init__(self, database: "Database",
                 table_name: str = _NAIVE_TABLE) -> None:
        self._db = database
        self.table_name = table_name
        self._resource_counter = itertools.count(1)
        self._db.execute(
            f"CREATE TABLE IF NOT EXISTS {quote_identifier(table_name)} ("
            " stmt_id INTEGER PRIMARY KEY,"
            " subject TEXT NOT NULL,"
            " predicate TEXT NOT NULL,"
            " object TEXT NOT NULL)")
        self._db.execute(
            f"CREATE INDEX IF NOT EXISTS "
            f"{quote_identifier(table_name + '_spo')} "
            f"ON {quote_identifier(table_name)} "
            "(subject, predicate, object)")

    # ------------------------------------------------------------------
    # writes
    # ------------------------------------------------------------------

    def new_resource(self) -> URI:
        """Mint a fresh reification resource URI."""
        return URI(f"urn:repro:reif:{next(self._resource_counter)}")

    def reify(self, triple: Triple, resource: RDFTerm | None = None) -> URI:
        """Store the full four-statement quad for ``triple``.

        Returns the reification resource.
        """
        if resource is None:
            resource = self.new_resource()
        statements = expand_quad(resource, triple)
        self._db.executemany(
            f"INSERT INTO {quote_identifier(self.table_name)} "
            "(subject, predicate, object) VALUES (?, ?, ?)",
            [(term_to_ntriples(s.subject), term_to_ntriples(s.predicate),
              term_to_ntriples(s.object)) for s in statements])
        assert isinstance(resource, URI)
        return resource

    def insert_statement(self, triple: Triple) -> None:
        """Store one raw statement (assertions about resources)."""
        self._db.execute(
            f"INSERT INTO {quote_identifier(self.table_name)} "
            "(subject, predicate, object) VALUES (?, ?, ?)",
            (term_to_ntriples(triple.subject),
             term_to_ntriples(triple.predicate),
             term_to_ntriples(triple.object)))

    # ------------------------------------------------------------------
    # reads
    # ------------------------------------------------------------------

    def is_reified(self, triple: Triple) -> bool:
        """The naive IS_REIFIED: a three-way self-join over the quad.

        Finds a resource R with matching rdf:subject, rdf:predicate, and
        rdf:object rows — the multi-row retrieval the streamlined scheme
        replaces with one lookup.
        """
        from repro.rdf.namespaces import RDF
        table = quote_identifier(self.table_name)
        row = self._db.query_one(
            f"SELECT s.subject FROM {table} s "
            f"JOIN {table} p ON p.subject = s.subject "
            f"JOIN {table} o ON o.subject = s.subject "
            "WHERE s.predicate = ? AND s.object = ? "
            "AND p.predicate = ? AND p.object = ? "
            "AND o.predicate = ? AND o.object = ? "
            "LIMIT 1",
            (term_to_ntriples(RDF.subject),
             term_to_ntriples(triple.subject),
             term_to_ntriples(RDF.predicate),
             term_to_ntriples(triple.predicate),
             term_to_ntriples(RDF.object),
             term_to_ntriples(triple.object)))
        return row is not None

    def statement_count(self) -> int:
        """Total stored statements (4x the reification count plus any
        raw assertions)."""
        return self._db.row_count(self.table_name)

    def storage(self) -> StorageReport:
        """Row/byte figures for the quad table (EXP-STOR numerator)."""
        return table_storage(self._db, self.table_name)

    def clear(self) -> None:
        """Remove all stored statements."""
        self._db.execute(
            f"DELETE FROM {quote_identifier(self.table_name)}")

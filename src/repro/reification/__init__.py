"""Reification: the streamlined DBUri scheme, the quad loader, and the
naive baseline.

The paper's section 5: reification "when implemented naively ...
significantly bloats storage and inflates query times, since four new
triples are stored for each reification".  The streamlined scheme stores
**one** statement whose subject is a DBUri pointing straight at the
``rdf_link$`` row.

* the streamlined primitives live on :class:`repro.core.store.RDFStore`
  (``reify_triple`` / ``assert_about`` / ``assert_implied`` /
  ``is_reified``); :mod:`repro.reification.streamlined` adds reporting
  helpers over them;
* :mod:`repro.reification.quads` is the quad loader — the paper's "Java
  API ... for reading reification quads and converting them into reified
  statements";
* :mod:`repro.reification.naive` is the 4-triples-per-reification
  baseline used by the EXP-STOR storage comparison.
"""

from repro.reification.streamlined import (
    reification_statements,
    reified_link_ids,
    reification_storage,
)
from repro.reification.quads import (
    IncompleteQuadPolicy,
    QuadConversionReport,
    QuadConverter,
)
from repro.reification.naive import NaiveReificationStore

__all__ = [
    "IncompleteQuadPolicy",
    "NaiveReificationStore",
    "QuadConversionReport",
    "QuadConverter",
    "reification_statements",
    "reification_storage",
    "reified_link_ids",
]

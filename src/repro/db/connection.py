"""The :class:`Database` engine wrapper.

One :class:`Database` instance stands for one Oracle database instance in
the paper: it hosts the central MDSYS-like RDF schema, every user
application table, the Jena2 baseline tables, the NDM catalog, rulebases,
and rules indexes.  It wraps a single ``sqlite3`` connection (file-backed
or in-memory) and adds:

* explicit transaction scoping via :meth:`transaction`, with true
  SAVEPOINT-based nesting — an inner scope that fails rolls back only
  its own work;
* named durability profiles (``ephemeral``/``durable``/``paranoid``,
  see :mod:`repro.db.resilience`) selecting journal mode, fsync
  behaviour, and busy timeout;
* a retry/backoff policy turning transient ``database is locked``
  errors into bounded retries instead of raw failures;
* optional deterministic fault injection
  (:mod:`repro.db.faults`) hooked in front of every statement;
* small query helpers (:meth:`query_one`, :meth:`query_value`,
  :meth:`query_all`) so call sites stay readable;
* schema introspection used by views, indexes, and storage accounting.

SQLite is a faithful stand-in here: every schema object the paper uses
(tables, views, sequences via AUTOINCREMENT-style counters, expression
indexes) maps one-to-one.
"""

from __future__ import annotations

import re
import sqlite3
import time
from contextlib import contextmanager
from pathlib import Path
from typing import TYPE_CHECKING, Any, Iterable, Iterator, Sequence

from repro.db.resilience import (
    DurabilityProfile,
    RetryPolicy,
    resolve_profile,
)
from repro.errors import (
    DeadlineExceededError,
    ReadOnlyConnectionError,
    StorageError,
)
from repro.obs.observer import NULL_OBSERVER, Observer
from repro.obs.reqctx import Deadline

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.db.faults import FaultInjector

_IDENTIFIER_RE = re.compile(r"[A-Za-z_][A-Za-z0-9_$]*$")

#: Leading SQL keywords that mutate the database; a read-only
#: connection rejects these up front with a clear error instead of
#: surfacing sqlite's raw "attempt to write a readonly database".
_WRITE_VERBS = frozenset({
    "insert", "update", "delete", "replace", "create", "drop",
    "alter", "vacuum", "reindex", "analyze"})


def _leading_verb(sql: str) -> str:
    parts = sql.split(None, 1)
    return parts[0].lower() if parts else ""


def quote_identifier(name: str) -> str:
    """Quote ``name`` for use as an SQL identifier.

    The central-schema tables use Oracle's ``$`` suffix (``rdf_link$``)
    which SQLite accepts when quoted.
    """
    if not _IDENTIFIER_RE.match(name):
        raise StorageError(f"illegal SQL identifier: {name!r}")
    return f'"{name}"'


class DeadlineGuard:
    """Book-keeping for one active :meth:`Database.deadline_scope`.

    ``interrupted`` flips to True the moment the progress-handler
    watchdog aborts a statement, so callers can distinguish "SQL was
    cut off mid-flight" (count it under ``sql.interrupts``) from "the
    deadline expired between statements".
    """

    __slots__ = ("deadline", "interrupted")

    def __init__(self, deadline: Deadline) -> None:
        self.deadline = deadline
        self.interrupted = False


#: SQLite VM instructions between watchdog checks: small enough to
#: notice an expired deadline within well under a millisecond of real
#: work, large enough that the check itself is noise (<1% on the
#: micro-query benchmarks).
PROGRESS_HANDLER_INSTRUCTIONS = 2000


class Database:
    """A single database instance hosting the whole RDF universe.

    :param path: filesystem path for the database file, or ``":memory:"``
        (the default) for an in-memory instance — ideal for tests and
        benchmarks.
    :param observer: an :class:`~repro.obs.observer.Observer` collecting
        SQL timings, spans, and metrics for this connection; default is
        the shared no-op (observability off, near-zero overhead).
    :param durability: a profile name (``ephemeral``/``durable``/
        ``paranoid``), a :class:`~repro.db.resilience.DurabilityProfile`,
        or ``None`` to defer to the ``REPRO_DURABILITY`` environment
        variable (default: ``ephemeral``, the historical behaviour).
        WAL profiles only take effect for file-backed databases —
        SQLite silently keeps in-memory journaling for ``:memory:``.
    :param retry: the transient-error retry policy; default is the
        standard bounded-backoff :class:`~repro.db.resilience.RetryPolicy`.
    :param faults: an optional :class:`~repro.db.faults.FaultInjector`
        consulted before every statement (tests only).
    :param read_only: open the file with the ``mode=ro`` URI flag.
        Any write raises :class:`~repro.errors.ReadOnlyConnectionError`
        with a pointer at the writer queue instead of a raw sqlite
        error.  Requires a file-backed database (the connection pool
        uses this for its readers).
    :param check_same_thread: passed to ``sqlite3.connect``.  The
        default (True) keeps sqlite's own thread check; the connection
        pool opens readers with False because a pooled connection is
        handed to one handler thread at a time.
    """

    def __init__(self, path: str | Path = ":memory:",
                 observer: Observer | None = None,
                 durability: str | DurabilityProfile | None = None,
                 retry: RetryPolicy | None = None,
                 faults: "FaultInjector | None" = None,
                 read_only: bool = False,
                 check_same_thread: bool = True) -> None:
        self._path = str(path)
        self._profile = resolve_profile(durability)
        self._retry = retry if retry is not None else RetryPolicy()
        self._faults = faults
        self._read_only = read_only
        if read_only:
            if self._path == ":memory:":
                raise StorageError(
                    "read-only connections need a file-backed "
                    "database; :memory: has no second connection to "
                    "share data with")
            import urllib.parse

            quoted = urllib.parse.quote(
                str(Path(self._path).absolute()), safe="/")
            try:
                self._connection = sqlite3.connect(
                    f"file:{quoted}?mode=ro", uri=True,
                    check_same_thread=check_same_thread)
            except sqlite3.Error as exc:
                raise StorageError(
                    f"{exc} while opening {self._path} read-only"
                ) from exc
        else:
            self._connection = sqlite3.connect(
                self._path, check_same_thread=check_same_thread)
        self._connection.row_factory = sqlite3.Row
        self._data_version = 0
        # The store manages transactions explicitly via transaction().
        self._connection.isolation_level = None
        self._in_transaction = 0
        self._closed = False
        self._deadline_guard: DeadlineGuard | None = None
        self._observer = NULL_OBSERVER
        cursor = self._connection.cursor()
        for pragma in self._profile.pragmas(read_only=read_only):
            cursor.execute(pragma)
        cursor.close()
        if observer is not None:
            self.set_observer(observer)

    @property
    def path(self) -> str:
        return self._path

    @property
    def profile(self) -> DurabilityProfile:
        """This connection's durability profile."""
        return self._profile

    @property
    def durability(self) -> str:
        """The durability profile's name (``ephemeral``/``durable``/
        ``paranoid``)."""
        return self._profile.name

    @property
    def retry_policy(self) -> RetryPolicy:
        """The transient-error retry policy."""
        return self._retry

    @property
    def fault_injector(self) -> "FaultInjector | None":
        """The attached fault injector, if any (tests only)."""
        return self._faults

    def set_fault_injector(self,
                           faults: "FaultInjector | None") -> None:
        """Attach (or with ``None`` detach) a fault injector."""
        self._faults = faults

    @property
    def connection(self) -> sqlite3.Connection:
        """The raw sqlite3 connection (escape hatch for power users)."""
        return self._connection

    @property
    def observer(self) -> Observer:
        """This connection's observer (the shared no-op when disabled)."""
        return self._observer

    @property
    def closed(self) -> bool:
        """True once :meth:`close` has run."""
        return self._closed

    @property
    def read_only(self) -> bool:
        """True when this connection was opened with ``mode=ro``."""
        return self._read_only

    @property
    def data_version(self) -> int:
        """Monotonic counter of triple-visible data changes.

        Every write that can change what an SDO_RDF_MATCH query sees —
        link inserts/deletes, bulk-load merges, model create/drop,
        rules-index materialisation — bumps this counter through
        :meth:`bump_data_version`.  The match planner's statistics and
        plan caches are keyed on it: a stale version means re-plan.
        Over-bumping (e.g. for a rolled-back write) only costs a cache
        miss; the counter must never under-report a change.
        """
        return self._data_version

    def bump_data_version(self) -> None:
        """Record a triple-visible data change (see :attr:`data_version`)."""
        self._data_version += 1

    def set_observer(self, observer: Observer) -> None:
        """Attach (or detach, with :data:`NULL_OBSERVER`) an observer.

        An enabled observer installs the sqlite3 trace callback so raw
        engine statements are counted; swapping back to the no-op
        removes it.
        """
        if self._observer.enabled and self._observer.sql is not None \
                and not self._closed:
            self._observer.sql.detach(self._connection)
        self._observer = observer
        if observer.enabled and observer.sql is not None \
                and not self._closed:
            observer.sql.attach(self._connection)

    def close(self) -> None:
        """Close the underlying connection (idempotent).

        WAL profiles checkpoint first (best effort) so the main
        database file stands alone after a clean shutdown.
        """
        if self._closed:
            return
        if self._profile.checkpoint_on_close and self._path != ":memory:":
            try:
                self._connection.execute(
                    "PRAGMA wal_checkpoint(TRUNCATE)")
            except sqlite3.Error:  # pragma: no cover - defensive
                pass
        self._closed = True
        try:
            self._connection.close()
        except sqlite3.Error as exc:  # pragma: no cover - defensive
            raise StorageError(f"{exc} while closing {self._path}") \
                from exc

    def __enter__(self) -> "Database":
        return self

    def __exit__(self, *_exc_info: object) -> None:
        self.close()

    def _require_open(self) -> None:
        if self._closed:
            raise StorageError(
                f"database connection to {self._path} is closed")

    def _guard_write(self, sql: str) -> None:
        """Reject obvious writes on a read-only connection up front."""
        if _leading_verb(sql) in _WRITE_VERBS:
            raise ReadOnlyConnectionError(
                f"connection to {self._path} is read-only (mode=ro); "
                f"refusing {_leading_verb(sql).upper()} — route writes "
                "through the writer queue (repro.db.pool.WriterQueue)")

    def _wrap_sql_error(self, exc: sqlite3.Error,
                        context: str) -> StorageError:
        """Map a sqlite error to the right StorageError subclass."""
        message = str(exc).lower()
        if "readonly database" in message:
            return ReadOnlyConnectionError(
                f"{exc} — connection to {self._path} is read-only "
                "(mode=ro); route writes through the writer queue "
                f"({context})")
        guard = self._deadline_guard
        if "interrupt" in message and guard is not None \
                and guard.interrupted:
            return DeadlineExceededError(
                f"SQL aborted after the request deadline expired "
                f"(budget {guard.deadline.budget * 1000:.0f} ms) "
                f"{context}")
        return StorageError(f"{exc} {context}")

    # ------------------------------------------------------------------
    # statement execution
    # ------------------------------------------------------------------

    def _run_statement(self, sql: str,
                       parameters: Sequence[Any]) -> sqlite3.Cursor:
        """One statement through fault injection and the retry policy."""
        if self._faults is None and self._retry.max_attempts <= 1:
            return self._connection.execute(sql, parameters)

        def attempt() -> sqlite3.Cursor:
            if self._faults is not None:
                self._faults.on_statement(sql, site="statement")
            return self._connection.execute(sql, parameters)

        return self._retry.run(attempt, observer=self._observer)

    def execute(self, sql: str,
                parameters: Sequence[Any] = ()) -> sqlite3.Cursor:
        """Execute one statement and return its cursor.

        Transient lock errors are retried per the connection's
        :class:`~repro.db.resilience.RetryPolicy`; everything else —
        and exhausted retries — raises :class:`StorageError`.
        """
        if self._read_only:
            self._guard_write(sql)
        if self._observer.enabled:
            return self._execute_observed(sql, parameters)
        try:
            return self._run_statement(sql, parameters)
        except sqlite3.Error as exc:
            self._require_open()
            raise self._wrap_sql_error(
                exc, f"while executing: {sql}") from exc

    def _execute_observed(self, sql: str,
                          parameters: Sequence[Any]) -> sqlite3.Cursor:
        """The instrumented twin of :meth:`execute`.

        Times the statement, aggregates it under its normalized shape,
        and (for slow statements) captures its query plan.  Result rows
        fetched later are credited by the ``query_*`` helpers.
        """
        start = time.perf_counter()
        try:
            cursor = self._run_statement(sql, parameters)
        except sqlite3.Error as exc:
            self._require_open()
            self._observer.counter("sql.errors").inc()
            raise self._wrap_sql_error(
                exc, f"while executing: {sql}") from exc
        duration = time.perf_counter() - start
        self._observer.sql.record(
            sql, duration, rows=max(cursor.rowcount, 0),
            connection=self._connection, parameters=parameters)
        return cursor

    def executemany(self, sql: str,
                    parameter_rows: Iterable[Sequence[Any]]
                    ) -> sqlite3.Cursor:
        """Execute one statement for many parameter rows."""
        if self._read_only:
            self._guard_write(sql)
        observed = self._observer.enabled
        start = time.perf_counter() if observed else 0.0
        retryable = self._faults is not None \
            or self._retry.max_attempts > 1
        if retryable and not isinstance(parameter_rows, (list, tuple)):
            # A retry must replay every row; generators cannot rewind.
            parameter_rows = list(parameter_rows)

        def attempt() -> sqlite3.Cursor:
            if self._faults is not None:
                self._faults.on_statement(sql, site="executemany")
            return self._connection.executemany(sql, parameter_rows)

        try:
            if retryable:
                cursor = self._retry.run(attempt,
                                         observer=self._observer)
            else:
                cursor = self._connection.executemany(sql,
                                                      parameter_rows)
        except sqlite3.Error as exc:
            self._require_open()
            if observed:
                self._observer.counter("sql.errors").inc()
            raise self._wrap_sql_error(
                exc, f"while executing: {sql}") from exc
        if observed:
            self._observer.sql.record(
                sql, time.perf_counter() - start,
                rows=max(cursor.rowcount, 0))
        return cursor

    def executescript(self, script: str) -> None:
        """Execute a multi-statement DDL script.

        ``sqlite3`` issues an implicit COMMIT before running a script,
        which would silently break an open :meth:`transaction` scope —
        so calling this inside one raises :class:`StorageError`
        instead.  Scripts are timed and error-counted by the observer
        like every other statement.
        """
        if self._in_transaction:
            raise StorageError(
                "executescript() inside a transaction() scope would "
                "implicitly commit the open transaction; run the "
                "script outside the scope or use execute() per "
                "statement")
        if self._read_only:
            raise ReadOnlyConnectionError(
                f"connection to {self._path} is read-only (mode=ro); "
                "refusing executescript — DDL belongs to the writer")
        observed = self._observer.enabled
        start = time.perf_counter() if observed else 0.0

        def attempt() -> None:
            if self._faults is not None:
                self._faults.on_statement(script, site="executescript")
            self._connection.executescript(script)

        try:
            self._retry.run(attempt, observer=self._observer)
        except sqlite3.Error as exc:
            self._require_open()
            if observed:
                self._observer.counter("sql.errors").inc()
            raise self._wrap_sql_error(
                exc, "while executing script") from exc
        if observed:
            self._observer.sql.record(
                script, time.perf_counter() - start, rows=0)

    # ------------------------------------------------------------------
    # query helpers
    # ------------------------------------------------------------------

    def query_all(self, sql: str,
                  parameters: Sequence[Any] = ()) -> list[sqlite3.Row]:
        """All rows of a query."""
        cursor = self.execute(sql, parameters)
        try:
            rows = cursor.fetchall()
        except sqlite3.Error as exc:
            # Rows stream lazily: the deadline watchdog (and any other
            # mid-flight abort) fires here, not in execute().
            self._require_open()
            raise self._wrap_sql_error(
                exc, f"while fetching: {sql}") from exc
        if self._observer.enabled:
            self._observer.sql.add_rows(sql, len(rows))
        return rows

    def query_one(self, sql: str,
                  parameters: Sequence[Any] = ()) -> sqlite3.Row | None:
        """The first row of a query, or None."""
        cursor = self.execute(sql, parameters)
        try:
            row = cursor.fetchone()
        except sqlite3.Error as exc:
            self._require_open()
            raise self._wrap_sql_error(
                exc, f"while fetching: {sql}") from exc
        if row is not None and self._observer.enabled:
            self._observer.sql.add_rows(sql, 1)
        return row

    def query_value(self, sql: str,
                    parameters: Sequence[Any] = (),
                    default: Any = None) -> Any:
        """The first column of the first row, or ``default``."""
        row = self.query_one(sql, parameters)
        if row is None:
            return default
        return row[0]

    # ------------------------------------------------------------------
    # transactions
    # ------------------------------------------------------------------

    @contextmanager
    def transaction(self) -> Iterator[None]:
        """A transaction scope with SAVEPOINT-based nesting.

        The outermost scope is a real transaction: it commits on
        normal exit and rolls back when it raises.  A nested scope
        opens a SAVEPOINT, so an inner failure rolls back only the
        inner scope's work — callers that catch the inner exception
        keep the outer scope's writes (an uncaught exception still
        unwinds every scope and rolls back everything).

        Under the ``paranoid`` profile, ``PRAGMA foreign_key_check``
        runs before the outermost COMMIT; any violation aborts the
        transaction with :class:`StorageError`.
        """
        if self._in_transaction:
            self._in_transaction += 1
            name = f"repro_sp_{self._in_transaction}"
            self.execute(f"SAVEPOINT {name}")
            try:
                yield
            except BaseException:
                # An interrupt() mid-statement may have rolled the
                # whole transaction back already; rolling back a
                # savepoint that no longer exists would raise and mask
                # the original error.
                if self._connection.in_transaction:
                    self.execute(f"ROLLBACK TO {name}")
                    self.execute(f"RELEASE {name}")
                raise
            else:
                self.execute(f"RELEASE {name}")
            finally:
                self._in_transaction -= 1
            return
        self._in_transaction = 1
        self.execute("BEGIN")
        try:
            yield
        except BaseException:
            self._in_transaction = 0
            # The engine rolls back on its own when a statement is
            # interrupted mid-write; a second explicit ROLLBACK would
            # raise "no transaction is active" and mask the cause.
            if self._connection.in_transaction:
                self.execute("ROLLBACK")
            raise
        else:
            self._in_transaction = 0
            if self._profile.verify_foreign_keys:
                self._verify_foreign_keys()
            self.execute("COMMIT")

    def _verify_foreign_keys(self) -> None:
        """Paranoid-profile sweep before the outermost COMMIT."""
        rows = self.query_all("PRAGMA foreign_key_check")
        if not rows:
            return
        first = rows[0]
        self.execute("ROLLBACK")
        raise StorageError(
            f"foreign_key_check found {len(rows)} violation(s) at "
            f"commit; first: table={first[0]!r} rowid={first[1]} "
            f"references {first[2]!r}")

    # ------------------------------------------------------------------
    # cooperative cancellation
    # ------------------------------------------------------------------

    def interrupt(self) -> None:
        """Abort the connection's in-flight statement, if any.

        Thread-safe (the one sqlite3 call that is): another thread may
        interrupt a long-running query on this connection.  The
        aborted statement raises ``OperationalError: interrupted``,
        which an active :meth:`deadline_scope` maps to
        :class:`~repro.errors.DeadlineExceededError`.
        """
        if not self._closed:
            self._connection.interrupt()

    @contextmanager
    def deadline_scope(self,
                       deadline: Deadline | None
                       ) -> Iterator[DeadlineGuard | None]:
        """Bound every statement in the scope by ``deadline``.

        Installs a progress-handler watchdog that checks the deadline
        every :data:`PROGRESS_HANDLER_INSTRUCTIONS` SQLite VM
        instructions and aborts the in-flight statement once it
        expires — the cooperative half of
        ``sqlite3.Connection.interrupt()``: the engine stops at a safe
        point, the open transaction rolls back normally, and the
        connection remains usable.  The aborted statement surfaces as
        :class:`~repro.errors.DeadlineExceededError`; the yielded
        :class:`DeadlineGuard`'s ``interrupted`` flag says whether SQL
        was actually cut off (callers count ``sql.interrupts`` from
        it).

        ``deadline=None`` yields ``None`` and installs nothing, so
        call sites need no branching for deadline-free requests.
        Scopes do not nest (one progress handler per connection); the
        serving layer opens exactly one per request.
        """
        if deadline is None:
            yield None
            return
        if self._deadline_guard is not None:
            raise StorageError(
                "deadline_scope does not nest: a scope is already "
                f"active on the connection to {self._path}")
        guard = DeadlineGuard(deadline)
        self._deadline_guard = guard

        def watchdog() -> int:
            if guard.interrupted:
                # Fire once: the aborted statement is unwinding and the
                # cleanup that follows (ROLLBACK) must be allowed to
                # run, or the rollback error would mask the deadline.
                return 0
            if guard.deadline.expired:
                guard.interrupted = True
                return 1  # non-zero aborts the statement
            return 0

        self._connection.set_progress_handler(
            watchdog, PROGRESS_HANDLER_INSTRUCTIONS)
        try:
            yield guard
        finally:
            self._deadline_guard = None
            if not self._closed:
                self._connection.set_progress_handler(None, 0)

    # ------------------------------------------------------------------
    # schema introspection
    # ------------------------------------------------------------------

    def table_exists(self, name: str) -> bool:
        """True when a table or view called ``name`` exists."""
        return self.query_one(
            "SELECT 1 FROM sqlite_master "
            "WHERE type IN ('table', 'view') AND name = ?",
            (name,)) is not None

    def index_exists(self, name: str) -> bool:
        """True when an index called ``name`` exists."""
        return self.query_one(
            "SELECT 1 FROM sqlite_master WHERE type = 'index' AND name = ?",
            (name,)) is not None

    def drop_table(self, name: str) -> None:
        """Drop a table if it exists."""
        self.execute(f"DROP TABLE IF EXISTS {quote_identifier(name)}")

    def drop_view(self, name: str) -> None:
        """Drop a view if it exists."""
        self.execute(f"DROP VIEW IF EXISTS {quote_identifier(name)}")

    def table_columns(self, name: str) -> list[str]:
        """Column names of ``name`` in declaration order."""
        rows = self.query_all(
            f"PRAGMA table_info({quote_identifier(name)})")
        if not rows:
            raise StorageError(f"no such table: {name}")
        return [row["name"] for row in rows]

    def row_count(self, name: str) -> int:
        """Number of rows in table ``name``."""
        return int(self.query_value(
            f"SELECT COUNT(*) FROM {quote_identifier(name)}", default=0))

    def analyze(self) -> None:
        """Refresh the query planner's statistics (SQL ``ANALYZE``).

        Worth running after bulk loads so index selectivity estimates
        match the data; the bulk loader calls this automatically.
        """
        self.execute("ANALYZE")

"""The :class:`Database` engine wrapper.

One :class:`Database` instance stands for one Oracle database instance in
the paper: it hosts the central MDSYS-like RDF schema, every user
application table, the Jena2 baseline tables, the NDM catalog, rulebases,
and rules indexes.  It wraps a single ``sqlite3`` connection (file-backed
or in-memory) and adds:

* explicit transaction scoping via :meth:`transaction`;
* small query helpers (:meth:`query_one`, :meth:`query_value`,
  :meth:`query_all`) so call sites stay readable;
* schema introspection used by views, indexes, and storage accounting.

SQLite is a faithful stand-in here: every schema object the paper uses
(tables, views, sequences via AUTOINCREMENT-style counters, expression
indexes) maps one-to-one.
"""

from __future__ import annotations

import re
import sqlite3
from contextlib import contextmanager
from pathlib import Path
from typing import Any, Iterable, Iterator, Sequence

from repro.errors import StorageError

_IDENTIFIER_RE = re.compile(r"[A-Za-z_][A-Za-z0-9_$]*$")


def quote_identifier(name: str) -> str:
    """Quote ``name`` for use as an SQL identifier.

    The central-schema tables use Oracle's ``$`` suffix (``rdf_link$``)
    which SQLite accepts when quoted.
    """
    if not _IDENTIFIER_RE.match(name):
        raise StorageError(f"illegal SQL identifier: {name!r}")
    return f'"{name}"'


class Database:
    """A single database instance hosting the whole RDF universe.

    :param path: filesystem path for the database file, or ``":memory:"``
        (the default) for an in-memory instance — ideal for tests and
        benchmarks.
    """

    def __init__(self, path: str | Path = ":memory:") -> None:
        self._path = str(path)
        self._connection = sqlite3.connect(self._path)
        self._connection.row_factory = sqlite3.Row
        # The store manages transactions explicitly via transaction().
        self._connection.isolation_level = None
        self._in_transaction = 0
        cursor = self._connection.cursor()
        cursor.execute("PRAGMA foreign_keys = ON")
        cursor.execute("PRAGMA journal_mode = MEMORY")
        cursor.execute("PRAGMA synchronous = OFF")
        cursor.close()

    @property
    def path(self) -> str:
        return self._path

    @property
    def connection(self) -> sqlite3.Connection:
        """The raw sqlite3 connection (escape hatch for power users)."""
        return self._connection

    def close(self) -> None:
        """Close the underlying connection."""
        self._connection.close()

    def __enter__(self) -> "Database":
        return self

    def __exit__(self, *_exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------
    # statement execution
    # ------------------------------------------------------------------

    def execute(self, sql: str,
                parameters: Sequence[Any] = ()) -> sqlite3.Cursor:
        """Execute one statement and return its cursor."""
        try:
            return self._connection.execute(sql, parameters)
        except sqlite3.Error as exc:
            raise StorageError(f"{exc} while executing: {sql}") from exc

    def executemany(self, sql: str,
                    parameter_rows: Iterable[Sequence[Any]]
                    ) -> sqlite3.Cursor:
        """Execute one statement for many parameter rows."""
        try:
            return self._connection.executemany(sql, parameter_rows)
        except sqlite3.Error as exc:
            raise StorageError(f"{exc} while executing: {sql}") from exc

    def executescript(self, script: str) -> None:
        """Execute a multi-statement DDL script."""
        try:
            self._connection.executescript(script)
        except sqlite3.Error as exc:
            raise StorageError(f"{exc} while executing script") from exc

    # ------------------------------------------------------------------
    # query helpers
    # ------------------------------------------------------------------

    def query_all(self, sql: str,
                  parameters: Sequence[Any] = ()) -> list[sqlite3.Row]:
        """All rows of a query."""
        return self.execute(sql, parameters).fetchall()

    def query_one(self, sql: str,
                  parameters: Sequence[Any] = ()) -> sqlite3.Row | None:
        """The first row of a query, or None."""
        return self.execute(sql, parameters).fetchone()

    def query_value(self, sql: str,
                    parameters: Sequence[Any] = (),
                    default: Any = None) -> Any:
        """The first column of the first row, or ``default``."""
        row = self.query_one(sql, parameters)
        if row is None:
            return default
        return row[0]

    # ------------------------------------------------------------------
    # transactions
    # ------------------------------------------------------------------

    @contextmanager
    def transaction(self) -> Iterator[None]:
        """A transaction scope; nested scopes join the outer transaction.

        Commits on normal exit of the outermost scope, rolls back if any
        scope raises.
        """
        if self._in_transaction:
            self._in_transaction += 1
            try:
                yield
            finally:
                self._in_transaction -= 1
            return
        self._in_transaction = 1
        self.execute("BEGIN")
        try:
            yield
        except BaseException:
            self.execute("ROLLBACK")
            raise
        finally:
            self._in_transaction = 0
        self.execute("COMMIT")

    # ------------------------------------------------------------------
    # schema introspection
    # ------------------------------------------------------------------

    def table_exists(self, name: str) -> bool:
        """True when a table or view called ``name`` exists."""
        return self.query_one(
            "SELECT 1 FROM sqlite_master "
            "WHERE type IN ('table', 'view') AND name = ?",
            (name,)) is not None

    def index_exists(self, name: str) -> bool:
        """True when an index called ``name`` exists."""
        return self.query_one(
            "SELECT 1 FROM sqlite_master WHERE type = 'index' AND name = ?",
            (name,)) is not None

    def drop_table(self, name: str) -> None:
        """Drop a table if it exists."""
        self.execute(f"DROP TABLE IF EXISTS {quote_identifier(name)}")

    def drop_view(self, name: str) -> None:
        """Drop a view if it exists."""
        self.execute(f"DROP VIEW IF EXISTS {quote_identifier(name)}")

    def table_columns(self, name: str) -> list[str]:
        """Column names of ``name`` in declaration order."""
        rows = self.query_all(
            f"PRAGMA table_info({quote_identifier(name)})")
        if not rows:
            raise StorageError(f"no such table: {name}")
        return [row["name"] for row in rows]

    def row_count(self, name: str) -> int:
        """Number of rows in table ``name``."""
        return int(self.query_value(
            f"SELECT COUNT(*) FROM {quote_identifier(name)}", default=0))

    def analyze(self) -> None:
        """Refresh the query planner's statistics (SQL ``ANALYZE``).

        Worth running after bulk loads so index selectivity estimates
        match the data; the bulk loader calls this automatically.
        """
        self.execute("ANALYZE")

"""Function-based index emulation.

Section 7.2 of the paper: "To attain the performance times in the
experiments (I and II), indexes are required on the application tables
... function-based indexes were used for queries on the sample
datasets", e.g. ``CREATE INDEX up5m_sub_fbidx ON uniprot5m
(triple.GET_SUBJECT())``.

A function-based index indexes the *result of an expression* over each
row.  Our member functions are deterministic functions of the stored
component IDs (``GET_SUBJECT()`` of a row is determined by its
``<column>_s_id``), so the emulation indexes that backing ID column and
records which member function the index accelerates.  The query planner
in :mod:`repro.core.apptable` consults this registry to decide between
an indexed ID lookup and a full scan that evaluates the member function
per row — exactly the behavioural difference the paper's section 7.2 is
about, and what the ABL-IDX benchmark measures.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.db.connection import quote_identifier
from repro.errors import StorageError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.db.connection import Database

#: Member-function name -> the physical column suffix it is a function
#: of (the full column is ``<object_column>_<suffix>``).
MEMBER_FUNCTION_COLUMNS = {
    "GET_SUBJECT": "s_id",
    "GET_PROPERTY": "p_id",
    "GET_OBJECT": "o_id",
}


@dataclass(frozen=True, slots=True)
class FunctionBasedIndex:
    """Metadata for one function-based index on an application table."""

    index_name: str
    table_name: str
    member_function: str
    object_column: str = "triple"

    @property
    def column(self) -> str:
        """The physical ID column the index is built on."""
        suffix = MEMBER_FUNCTION_COLUMNS[self.member_function]
        return f"{self.object_column}_{suffix}"


class _Registry:
    """Per-database registry of function-based indexes."""

    TABLE = "rdf_fb_index$"

    @classmethod
    def ensure(cls, database: "Database") -> None:
        database.execute(
            f"CREATE TABLE IF NOT EXISTS {quote_identifier(cls.TABLE)} ("
            " index_name TEXT PRIMARY KEY,"
            " table_name TEXT NOT NULL,"
            " member_function TEXT NOT NULL,"
            " object_column TEXT NOT NULL DEFAULT 'triple')")

    @classmethod
    def register(cls, database: "Database",
                 index: FunctionBasedIndex) -> None:
        cls.ensure(database)
        database.execute(
            f"INSERT INTO {quote_identifier(cls.TABLE)} "
            "VALUES (?, ?, ?, ?)",
            (index.index_name, index.table_name, index.member_function,
             index.object_column))

    @classmethod
    def unregister(cls, database: "Database", index_name: str) -> None:
        cls.ensure(database)
        database.execute(
            f"DELETE FROM {quote_identifier(cls.TABLE)} "
            "WHERE index_name = ?", (index_name,))

    @classmethod
    def lookup(cls, database: "Database", table_name: str,
               member_function: str) -> FunctionBasedIndex | None:
        cls.ensure(database)
        row = database.query_one(
            f"SELECT * FROM {quote_identifier(cls.TABLE)} "
            "WHERE table_name = ? AND member_function = ?",
            (table_name, member_function))
        if row is None:
            return None
        return FunctionBasedIndex(row["index_name"], row["table_name"],
                                  row["member_function"],
                                  row["object_column"])


def _normalize_function(member_function: str) -> str:
    function = member_function.upper().rstrip("()")
    if function.startswith("TO_CHAR(TRIPLE."):
        # The paper wraps GET_OBJECT in TO_CHAR for indexability.
        function = function[len("TO_CHAR(TRIPLE."):].rstrip(")")
    if function.startswith("TRIPLE."):
        function = function[len("TRIPLE."):]
    return function


def create_function_based_index(database: "Database", index_name: str,
                                table_name: str,
                                member_function: str,
                                object_column: str = "triple"
                                ) -> FunctionBasedIndex:
    """``CREATE INDEX index_name ON table_name (triple.member_function())``.

    Creates the physical index on the backing ID column
    (``<object_column>_<suffix>``) and registers the member function it
    accelerates.
    """
    function = _normalize_function(member_function)
    if function not in MEMBER_FUNCTION_COLUMNS:
        raise StorageError(
            f"cannot build a function-based index on {member_function!r}; "
            f"supported: {sorted(MEMBER_FUNCTION_COLUMNS)}")
    index = FunctionBasedIndex(index_name, table_name, function,
                               object_column)
    if index.column not in database.table_columns(table_name):
        raise StorageError(
            f"table {table_name!r} has no column {index.column!r}; "
            f"is the object column really {object_column!r}?")
    database.execute(
        f"CREATE INDEX {quote_identifier(index_name)} "
        f"ON {quote_identifier(table_name)} "
        f"({quote_identifier(index.column)})")
    _Registry.register(database, index)
    return index


def drop_function_based_index(database: "Database",
                              index_name: str) -> None:
    """Drop a function-based index and deregister it."""
    database.execute(f"DROP INDEX IF EXISTS {quote_identifier(index_name)}")
    _Registry.unregister(database, index_name)


def index_for(database: "Database", table_name: str,
              member_function: str) -> FunctionBasedIndex | None:
    """The registered index accelerating ``member_function`` on the table,
    or None — in which case the query degrades to a scan."""
    return _Registry.lookup(database, table_name,
                            _normalize_function(member_function))

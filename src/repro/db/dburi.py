"""DBUri emulation: direct row-pointer URIs.

Oracle XML DB's *DBUri* is "a URI that points to a set of rows, a single
row, or a single column in a database" (paper section 5).  The streamlined
reification scheme generates, for the triple with LINK_ID ``n``, the
resource::

    /ORADB/MDSYS/RDF_LINK$/ROW[LINK_ID=n]

and stores the single statement ``<that-DBUri, rdf:type, rdf:Statement>``.

:class:`DBUri` is the parsed form; :class:`DBUriType` adds the
target-fetching behaviour of Oracle's object type (``getclob()`` /
``geturl()`` analogues) against our :class:`repro.db.connection.Database`.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

from repro.db.connection import quote_identifier
from repro.errors import DBUriError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.db.connection import Database

#: The schema prefix all our generated DBUris share; MDSYS is the Oracle
#: schema that owns the central RDF tables.
ORADB_PREFIX = "/ORADB/MDSYS/"

_DBURI_RE = re.compile(
    r"/ORADB/(?P<schema>[A-Za-z_][A-Za-z0-9_]*)/"
    r"(?P<table>[A-Za-z_][A-Za-z0-9_$]*)/"
    r"ROW\[(?P<column>[A-Za-z_][A-Za-z0-9_]*)=(?P<value>[0-9]+)\]$")


def is_dburi(text: str) -> bool:
    """True when ``text`` is a syntactically valid row DBUri."""
    return _DBURI_RE.match(text) is not None


@dataclass(frozen=True, slots=True)
class DBUri:
    """A parsed single-row DBUri.

    The canonical spelling (:attr:`text`) is what is stored in
    ``rdf_value$`` as the reification resource.
    """

    schema: str
    table: str
    column: str
    value: int

    @classmethod
    def parse(cls, text: str) -> "DBUri":
        """Parse a DBUri string; raises :class:`DBUriError` on bad input."""
        match = _DBURI_RE.match(text)
        if match is None:
            raise DBUriError(f"malformed DBUri: {text!r}")
        return cls(schema=match.group("schema").upper(),
                   table=match.group("table").upper(),
                   column=match.group("column").upper(),
                   value=int(match.group("value")))

    @classmethod
    def for_link(cls, link_id: int) -> "DBUri":
        """The DBUri for the rdf_link$ row with the given LINK_ID.

        This is the resource the paper's reification constructor
        generates.
        """
        if link_id < 0:
            raise DBUriError(f"LINK_ID must be non-negative, got {link_id}")
        return cls(schema="MDSYS", table="RDF_LINK$",
                   column="LINK_ID", value=link_id)

    @property
    def text(self) -> str:
        """The canonical DBUri string."""
        return (f"/ORADB/{self.schema}/{self.table}/"
                f"ROW[{self.column}={self.value}]")

    @property
    def is_link_uri(self) -> bool:
        """True when this DBUri points into rdf_link$ by LINK_ID."""
        return (self.schema == "MDSYS" and self.table == "RDF_LINK$"
                and self.column == "LINK_ID")

    @property
    def link_id(self) -> int:
        """The LINK_ID this DBUri points at (rdf_link$ DBUris only)."""
        if not self.is_link_uri:
            raise DBUriError(
                f"{self.text} does not point into MDSYS.RDF_LINK$")
        return self.value

    def __str__(self) -> str:
        return self.text


class DBUriType:
    """The behavioural object: a DBUri bound to a database.

    Mirrors Oracle's ``DBUriType`` object methods: the URI can be asked
    for its target row.  Our central schema stores the rdf_link$ table in
    lower case without the ``$``-stripped name change, so the table-name
    mapping is handled here.
    """

    #: Maps the Oracle-cased table names appearing in DBUris to the
    #: physical table names in this database.
    _TABLE_MAP = {"RDF_LINK$": "rdf_link$", "RDF_VALUE$": "rdf_value$"}

    def __init__(self, uri: DBUri | str) -> None:
        self._uri = uri if isinstance(uri, DBUri) else DBUri.parse(uri)

    @property
    def uri(self) -> DBUri:
        return self._uri

    def geturl(self) -> str:
        """The URI text (Oracle's ``GETURL()``)."""
        return self._uri.text

    def _physical_table(self) -> str:
        table = self._TABLE_MAP.get(self._uri.table)
        if table is None:
            raise DBUriError(
                f"DBUri targets unknown table {self._uri.table}")
        return table

    def fetch_row(self, database: "Database") -> dict[str, Any]:
        """Resolve the DBUri to its row; single-row direct access.

        This is the operation that makes the streamlined reification
        scheme fast: one primary-key lookup instead of a quad join.
        """
        table = self._physical_table()
        row = database.query_one(
            f"SELECT * FROM {quote_identifier(table)} "
            f"WHERE {self._uri.column.lower()} = ?",
            (self._uri.value,))
        if row is None:
            raise DBUriError(
                f"{self._uri.text} does not resolve to a row")
        return dict(row)

    def exists(self, database: "Database") -> bool:
        """True when the target row exists."""
        table = self._physical_table()
        return database.query_one(
            f"SELECT 1 FROM {quote_identifier(table)} "
            f"WHERE {self._uri.column.lower()} = ?",
            (self._uri.value,)) is not None

    def __repr__(self) -> str:
        return f"DBUriType({self._uri.text!r})"

"""Concurrent access primitives: a read pool and a single-writer queue.

SQLite's concurrency model under WAL is *N readers + 1 writer*: any
number of connections may read a consistent snapshot while one
connection writes.  The serving layer (:mod:`repro.server`) maps that
model onto two primitives kept here, next to the engine wrapper:

:class:`ConnectionPool`
    A bounded pool of **read-only** (``mode=ro``) file connections.
    Each connection is opened with ``check_same_thread=False`` —
    safe because the pool hands a connection to exactly one thread at
    a time — and carries an optional *session* object (the server
    wraps each in an :class:`~repro.core.store.RDFStore`).  On every
    acquire the pool snoops SQLite's ``PRAGMA data_version``: the
    value changes when **another** connection commits, so a change
    means the writer (or an external process) modified the file since
    this connection last served a request.  The pool then bumps the
    connection's Python-level
    :attr:`~repro.db.connection.Database.data_version` counter —
    invalidating the plan cache and planner statistics keyed on it —
    and runs the caller's ``invalidate`` hook (the server flushes the
    value-store term caches there).  An exhausted pool raises
    :class:`~repro.errors.PoolTimeoutError`, which the HTTP layer
    maps to 429 backpressure.

:class:`WriterQueue`
    A dedicated writer thread owning the **only** writable connection.
    Mutations are submitted as callables and return
    :class:`concurrent.futures.Future` objects; jobs run strictly in
    submission order, so there is never writer/writer contention and
    ``database is locked`` retries are reserved for external
    processes.  The store is built *inside* the thread (via a
    factory), satisfying sqlite's same-thread check without switching
    it off for the write path.  A bounded job queue gives natural
    backpressure: a full queue raises :class:`PoolTimeoutError`
    instead of buffering without limit.
"""

from __future__ import annotations

import contextvars
import queue
import threading
import time
from concurrent.futures import Future
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Iterator

import sqlite3

from repro.db.connection import Database
from repro.db.faults import (
    POINT_POOL_ACQUIRE,
    POINT_WRITER_JOB,
    FaultInjector,
)
from repro.errors import (
    DeadlineExceededError,
    PoolTimeoutError,
    StorageError,
    WriterShutdownError,
)
from repro.obs.observer import NULL_OBSERVER, Observer
from repro.obs.reqctx import Deadline, RequestTrace, current_trace


@dataclass(eq=False)
class PooledConnection:
    """One pool slot: the connection plus its session and version mark."""

    database: Database
    #: What ``wrap`` returned for this connection (the server puts an
    #: RDFStore here); the database itself when no wrap was given.
    session: Any
    #: The last ``PRAGMA data_version`` value seen on this connection.
    engine_version: int = -1
    #: Acquire count (introspection only).
    leases: int = 0


class ConnectionPool:
    """A bounded pool of read-only connections to one database file.

    :param path: the database file (must exist — readers cannot create
        it; start the writer first).
    :param size: maximum number of pooled connections.  Connections
        are opened lazily, so an idle server holds no file handles
        beyond the first request's.
    :param durability: profile name forwarded to each connection
        (journal-mode pragma is skipped on read-only connections).
    :param timeout: default seconds :meth:`acquire` waits for a free
        connection before raising :class:`PoolTimeoutError`.
    :param observer: a (thread-safe) observer shared by every pooled
        connection; metrics from all readers aggregate in one place.
    :param wrap: optional callable building a per-connection session
        object from the :class:`Database` (the server passes
        ``RDFStore``).  Called once per connection, at creation.
    :param invalidate: optional callable run on a session whenever the
        acquire-time snoop detects that another connection committed
        (the server flushes term caches here).  The pool always bumps
        the connection's own ``data_version`` counter first.
    :param faults: optional :class:`~repro.db.faults.FaultInjector`
        shared by every pooled connection (slow-SQL chaos) and
        consulted at the ``pool.acquire`` fault point — a ``slow``
        fault delays the lease, a ``lock`` fault simulates pool
        exhaustion as :class:`PoolTimeoutError`.
    """

    def __init__(self, path: str | Path, size: int = 4,
                 durability: str | None = None,
                 timeout: float = 5.0,
                 observer: Observer = NULL_OBSERVER,
                 wrap: Callable[[Database], Any] | None = None,
                 invalidate: Callable[[Any], None] | None = None,
                 faults: FaultInjector | None = None) -> None:
        if size < 1:
            raise StorageError("ConnectionPool needs size >= 1")
        self._path = str(path)
        self._size = size
        self._durability = durability
        self._timeout = timeout
        self._observer = observer
        self._wrap = wrap
        self._invalidate = invalidate
        self._faults = faults
        # LIFO: the most recently used connection has the warmest
        # page cache and term caches.
        self._idle: queue.LifoQueue[PooledConnection] = queue.LifoQueue()
        self._lock = threading.Lock()
        self._created = 0
        self._in_use = 0
        self._closed = False
        self._stats = {
            "leases": 0, "timeouts": 0, "invalidations": 0,
        }

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    @property
    def size(self) -> int:
        """Maximum number of pooled connections."""
        return self._size

    @property
    def in_use(self) -> int:
        """Connections out on lease right now (saturation gauge)."""
        with self._lock:
            return self._in_use

    @property
    def closed(self) -> bool:
        return self._closed

    def close(self) -> None:
        """Close every idle connection and refuse new leases.

        Connections out on lease are closed as they come back.
        """
        self._closed = True
        while True:
            try:
                entry = self._idle.get_nowait()
            except queue.Empty:
                return
            entry.database.close()

    def __enter__(self) -> "ConnectionPool":
        return self

    def __exit__(self, *_exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------
    # acquire / release
    # ------------------------------------------------------------------

    def _create(self) -> PooledConnection:
        database = Database(
            self._path, durability=self._durability,
            observer=self._observer if self._observer.enabled else None,
            faults=self._faults,
            read_only=True, check_same_thread=False)
        session = self._wrap(database) if self._wrap else database
        return PooledConnection(database=database, session=session)

    def _snoop(self, entry: PooledConnection) -> bool:
        """Detect commits by other connections since the last lease."""
        current = int(entry.database.query_value(
            "PRAGMA data_version", default=0))
        invalidated = False
        if entry.engine_version != current:
            if entry.engine_version != -1:
                # A real change (not the first lease): every cache
                # keyed on this connection's counter is now stale.
                entry.database.bump_data_version()
                if self._invalidate is not None:
                    self._invalidate(entry.session)
                with self._lock:
                    self._stats["invalidations"] += 1
                invalidated = True
            entry.engine_version = current
        return invalidated

    def acquire(self, timeout: float | None = None,
                deadline: Deadline | None = None) -> PooledConnection:
        """Take a connection, waiting up to ``timeout`` seconds.

        Raises :class:`PoolTimeoutError` when every connection stays
        leased for the whole wait — the caller should shed load (the
        HTTP layer answers 429).

        The wait is additionally bounded by the request's
        :class:`~repro.obs.reqctx.Deadline` — passed explicitly or
        found on the active request trace: an already-expired deadline
        raises :class:`~repro.errors.DeadlineExceededError` without
        waiting at all, and a deadline tighter than ``timeout`` caps
        the wait, so a request that cannot possibly be served in
        budget never parks on the pool.

        The time spent waiting for a free connection is recorded on
        the active request trace (``pool_wait_seconds``) and, when an
        observer is attached, as a ``pool.acquire`` span — so a slow
        request shows whether it queued behind the pool.
        """
        if self._closed:
            raise StorageError(
                f"connection pool for {self._path} is closed")
        request = current_trace()
        if deadline is None and request is not None:
            deadline = request.deadline
        wait = self._timeout if timeout is None else timeout
        if deadline is not None:
            if deadline.expired:
                raise DeadlineExceededError(
                    "request deadline expired before the pool "
                    f"acquire (budget {deadline.budget * 1000:.0f} "
                    "ms)")
            wait = deadline.bound(wait)
        if self._faults is not None:
            try:
                self._faults.on_point(POINT_POOL_ACQUIRE)
            except sqlite3.OperationalError as exc:
                with self._lock:
                    self._stats["timeouts"] += 1
                raise PoolTimeoutError(
                    f"{exc} at pool.acquire for {self._path}"
                ) from None
        with self._observer.span("pool.acquire") as span:
            start = time.perf_counter()
            try:
                entry = self._idle.get_nowait()
            except queue.Empty:
                try:
                    entry = self._acquire_slow(wait)
                except PoolTimeoutError:
                    if deadline is not None and deadline.expired:
                        # The deadline, not the pool timeout, was the
                        # binding constraint: surface it as 504 budget
                        # exhaustion, not 429 backpressure.
                        raise DeadlineExceededError(
                            "request deadline expired while waiting "
                            "for a pooled connection (budget "
                            f"{deadline.budget * 1000:.0f} ms, pool "
                            f"size {self._size}, all leased)"
                        ) from None
                    raise
            waited = time.perf_counter() - start
            invalidated = self._snoop(entry)
            span.set("wait_seconds", round(waited, 6))
            if invalidated:
                span.set("invalidated", True)
        if request is not None:
            request.annotate_add("pool_wait_seconds", waited)
        entry.leases += 1
        with self._lock:
            self._in_use += 1
            self._stats["leases"] += 1
        return entry

    def _acquire_slow(self, wait: float) -> PooledConnection:
        """No idle connection: grow the pool or wait for a return."""
        with self._lock:
            can_create = self._created < self._size
            if can_create:
                self._created += 1
        if can_create:
            try:
                return self._create()
            except BaseException:
                with self._lock:
                    self._created -= 1
                raise
        try:
            return self._idle.get(timeout=wait)
        except queue.Empty:
            with self._lock:
                self._stats["timeouts"] += 1
            raise PoolTimeoutError(
                f"no read connection free after {wait:.3g}s (pool "
                f"size {self._size}, all leased) for {self._path}"
            ) from None

    def release(self, entry: PooledConnection) -> None:
        """Return a leased connection to the pool."""
        with self._lock:
            self._in_use -= 1
        if self._closed:
            entry.database.close()
            return
        self._idle.put(entry)

    @contextmanager
    def lease(self, timeout: float | None = None) -> Iterator[Any]:
        """Scoped acquire: yields the connection's *session* object."""
        entry = self.acquire(timeout)
        try:
            yield entry.session
        finally:
            self.release(entry)

    def stats(self) -> dict[str, Any]:
        """Pool gauges and counters (for ``/stats`` and tests)."""
        with self._lock:
            return {
                "path": self._path,
                "size": self._size,
                "created": self._created,
                "in_use": self._in_use,
                "idle": self._idle.qsize(),
                **self._stats,
            }


# ----------------------------------------------------------------------
# writer queue
# ----------------------------------------------------------------------

#: A mutation job: receives the writer's session, returns the result
#: delivered through the Future.
WriteJob = Callable[[Any], Any]


@dataclass(eq=False)
class _QueuedJob:
    job: WriteJob
    future: Future = field(default_factory=Future)
    enqueued_at: float = field(default_factory=time.monotonic)
    # The submitter's context rides along so the writer thread executes
    # the job *inside* it: spans opened there carry the submitting
    # request's id, and the request trace collects them.
    context: contextvars.Context = field(
        default_factory=contextvars.copy_context)
    trace: RequestTrace | None = field(default_factory=current_trace)


_STOP = object()


class WriterQueue:
    """The single writer: one thread, one writable connection, FIFO jobs.

    :param factory: builds the writer's session (typically an
        :class:`~repro.core.store.RDFStore` opening the file writable).
        Called once, **inside** the writer thread, so sqlite's
        same-thread check holds for the entire write path.
    :param maxsize: bound on queued jobs; a full queue raises
        :class:`PoolTimeoutError` from :meth:`submit` (backpressure)
        instead of buffering without limit.
    :param observer: metrics sink (``writer.jobs``, ``writer.errors``,
        ``writer.queue_seconds``, ``writer.exec_seconds``).
    :param faults: optional injector consulted at the ``writer.job``
        fault point before each job runs (a ``slow`` fault stalls the
        writer — the scenario the drain hard-deadline contains).
    """

    def __init__(self, factory: Callable[[], Any], maxsize: int = 64,
                 observer: Observer = NULL_OBSERVER,
                 faults: FaultInjector | None = None) -> None:
        self._factory = factory
        self._queue: queue.Queue = queue.Queue(maxsize=maxsize)
        self._observer = observer
        self._faults = faults
        self._thread: threading.Thread | None = None
        self._session: Any = None
        self._started = threading.Event()
        self._startup_error: BaseException | None = None
        self._stopping = False
        self._aborted = False
        self._jobs_done = 0
        self._jobs_failed = 0

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    def start(self) -> "WriterQueue":
        """Spawn the writer thread and wait for its session to open."""
        if self._thread is not None:
            raise StorageError("WriterQueue already started")
        self._thread = threading.Thread(
            target=self._run, name="repro-writer", daemon=True)
        self._thread.start()
        self._started.wait()
        if self._startup_error is not None:
            raise StorageError(
                f"writer session failed to open: {self._startup_error}"
            ) from self._startup_error
        return self

    def stop(self, drain: bool = True, timeout: float | None = 30.0
             ) -> None:
        """Stop the writer, bounded by a hard drain deadline.

        With ``drain=True`` (the default) every already-queued job
        runs to completion first; with ``drain=False`` pending jobs
        fail fast with :class:`StorageError` on their futures.

        ``timeout`` is a **hard deadline** on the drain: when a job
        stalls past it, the jobs still queued fail with
        :class:`~repro.errors.WriterShutdownError` on their futures,
        the stalled job's in-flight SQL (if any) is interrupted so the
        thread can unwind, and ``stop`` returns instead of hanging —
        a caller waiting on a future always gets an answer, and a
        graceful shutdown always finishes.  ``stats()['aborted']``
        records that the drain was cut short.
        """
        if self._thread is None:
            return
        self._stopping = True
        if not drain:
            self._fail_pending(StorageError(
                "writer queue stopped before this job ran"))
        self._queue.put(_STOP)
        self._thread.join(timeout=timeout)
        if self._thread.is_alive():
            # Hard drain deadline hit: a job is stalled.  Fail every
            # future still waiting (typed, so callers can tell a
            # shutdown loss from a job error), break any in-flight
            # SQL, and let the daemon thread unwind on its own.
            self._aborted = True
            failed = self._fail_pending(WriterShutdownError(
                f"writer drain deadline ({timeout}s) hit with a job "
                "still running; this job was dropped before it ran"))
            self._interrupt_session()
            self._queue.put(_STOP)  # in case the drain consumed it
            if failed:
                self._observer.counter(
                    "writer.shutdown_dropped",
                    "queued jobs failed by the drain hard deadline"
                ).inc(failed)
            self._thread.join(timeout=1.0)
        self._thread = None

    def _fail_pending(self, error: BaseException) -> int:
        """Fail every queued job's future with ``error``; returns how
        many (``_STOP`` sentinels are dropped, not failed)."""
        failed = 0
        while True:
            try:
                item = self._queue.get_nowait()
            except queue.Empty:
                return failed
            if item is _STOP:
                continue
            if item.future.set_running_or_notify_cancel():
                item.future.set_exception(error)
                failed += 1

    def _interrupt_session(self) -> None:
        """Break the stalled job's in-flight SQL (best effort)."""
        session = self._session
        database = getattr(session, "database", session)
        interrupt = getattr(database, "interrupt", None)
        if interrupt is not None:
            try:
                interrupt()
            except Exception:  # pragma: no cover - defensive
                pass

    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    @property
    def depth(self) -> int:
        """Jobs waiting in the queue right now."""
        return self._queue.qsize()

    def stats(self) -> dict[str, Any]:
        return {
            "depth": self.depth,
            "jobs_done": self._jobs_done,
            "jobs_failed": self._jobs_failed,
            "running": self.running,
            "aborted": self._aborted,
        }

    # ------------------------------------------------------------------
    # submission
    # ------------------------------------------------------------------

    def submit(self, job: WriteJob,
               timeout: float | None = 0.0,
               deadline: Deadline | None = None) -> Future:
        """Enqueue a mutation; returns its :class:`Future`.

        ``timeout`` bounds the wait for queue space: the default 0
        never blocks — a full queue raises :class:`PoolTimeoutError`
        immediately, which the HTTP layer turns into 429.

        A request :class:`~repro.obs.reqctx.Deadline` — passed in or
        found on the active request trace — that has already expired
        raises :class:`~repro.errors.DeadlineExceededError` instead of
        enqueuing work whose answer nobody is waiting for.
        """
        if self._thread is None or self._stopping:
            raise StorageError("writer queue is not running")
        if deadline is None:
            request = current_trace()
            if request is not None:
                deadline = request.deadline
        if deadline is not None and deadline.expired:
            raise DeadlineExceededError(
                "request deadline expired before the write could be "
                f"queued (budget {deadline.budget * 1000:.0f} ms)")
        item = _QueuedJob(job=job)
        try:
            if timeout == 0.0:
                self._queue.put_nowait(item)
            else:
                self._queue.put(item, timeout=timeout)
        except queue.Full:
            raise PoolTimeoutError(
                f"writer queue full ({self._queue.maxsize} jobs "
                "pending); retry later") from None
        return item.future

    def call(self, job: WriteJob, timeout: float | None = None) -> Any:
        """Submit and wait: returns the job's result (or raises)."""
        return self.submit(job).result(timeout=timeout)

    # ------------------------------------------------------------------
    # the writer thread
    # ------------------------------------------------------------------

    def _execute(self, job: WriteJob) -> Any:
        """Run one job under a span (inside the submitter's context)."""
        if self._faults is not None:
            # The writer-stall fault point: a ``slow`` fault here
            # stalls the writer thread itself — queued jobs pile up
            # behind it, which is what the drain hard deadline and
            # degraded health exist to handle.
            self._faults.on_point(POINT_WRITER_JOB)
        with self._observer.span("writer.execute"):
            return job(self._session)

    def _run(self) -> None:
        try:
            self._session = self._factory()
        except BaseException as exc:
            self._startup_error = exc
            self._started.set()
            return
        self._started.set()
        jobs = self._observer.counter(
            "writer.jobs", "mutations executed by the writer thread")
        errors = self._observer.counter(
            "writer.errors", "writer jobs that raised")
        queue_wait = self._observer.metrics.histogram(
            "writer.queue_seconds", "time jobs waited in the queue")
        exec_time = self._observer.metrics.histogram(
            "writer.exec_seconds", "writer job execution time")
        try:
            while True:
                item = self._queue.get()
                if item is _STOP:
                    return
                if not item.future.set_running_or_notify_cancel():
                    continue
                waited = time.monotonic() - item.enqueued_at
                queue_wait.observe(waited)
                if item.trace is not None:
                    item.trace.annotate_add("writer_queue_wait_seconds",
                                            waited)
                start = time.monotonic()
                try:
                    result = item.context.run(self._execute, item.job)
                except BaseException as exc:
                    self._jobs_failed += 1
                    errors.inc()
                    item.future.set_exception(exc)
                else:
                    self._jobs_done += 1
                    jobs.inc()
                    item.future.set_result(result)
                elapsed = time.monotonic() - start
                exec_time.observe(elapsed)
                if item.trace is not None:
                    item.trace.annotate_add("writer_exec_seconds",
                                            elapsed)
        finally:
            close = getattr(self._session, "close", None)
            if close is not None:
                try:
                    close()
                except Exception:  # pragma: no cover - defensive
                    pass

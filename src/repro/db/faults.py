"""Deterministic fault injection for the storage engine and server.

Crash safety is only believable when it is exercised: this module lets
tests inject engine failures at exact statement/transaction boundaries
and prove the retry path, staging cleanup, and WAL recovery actually
work.  A :class:`FaultInjector` attached to a
:class:`~repro.db.connection.Database` is consulted before every
``execute``/``executemany``/``executescript`` call (and therefore
before ``BEGIN``/``COMMIT``/``SAVEPOINT``, which go through
``execute``), so a fault can be pinned to "the third INSERT into
``rdf_link$``" or "the outermost COMMIT".

Since the serving layer grew a request lifecycle of its own, the same
injector is also consulted at **server-level fault points** — named
places in the request path, checked via :meth:`FaultInjector.on_point`:

========================  =============================================
point                     where it fires
========================  =============================================
``pool.acquire``          before a read-connection lease is granted
``writer.job``            before a writer-queue job executes
``server.response``       before a response body is written
========================  =============================================

Five fault kinds:

``lock``
    Raises ``sqlite3.OperationalError("database is locked")`` — the
    transient condition the :class:`~repro.db.resilience.RetryPolicy`
    retries with backoff.  A fault with ``times=2`` fails the first two
    attempts and lets the third succeed, exercising the full retry
    path.  At the ``pool.acquire`` point the pool maps it to
    :class:`~repro.errors.PoolTimeoutError` (pool exhaustion).
``disk_io``
    Raises ``sqlite3.OperationalError("disk I/O error")`` — fatal; the
    engine wrapper must surface it as
    :class:`~repro.errors.StorageError` without retrying.
``slow``
    Sleeps ``delay`` seconds, then lets the operation proceed — slow
    SQL at statement sites, a stalled job at ``writer.job``, a slow
    lease at ``pool.acquire``.  The operation *succeeds*; only its
    latency suffers, which is exactly what deadline propagation and
    the drain hard-deadline exist to contain.
``drop``
    Raises :class:`InjectedDisconnect` (a ``ConnectionError``) — at
    ``server.response`` the handler tears the socket down mid-response
    instead of answering, simulating a dropped keep-alive connection.
``kill``
    Calls ``os._exit`` — the process dies on the spot with no cleanup,
    no ``atexit``, no buffered-write flush, exactly like ``SIGKILL``
    or a power cut.  Only meaningful from a sacrificial subprocess;
    the crash-recovery tests fork a child, kill it mid-bulkload, then
    reopen the database file and assert WAL recovery left the schema
    invariants intact.

Faults fire deterministically: ``match`` selects statements by
case-insensitive substring, ``skip`` lets that many matching
executions pass first, and ``times`` bounds how often the fault fires.
For chaos storms, ``chance`` makes a fault probabilistic — but drawn
from the injector's **seeded** ``random.Random``, so a storm's fault
schedule is random-looking yet exactly reproducible from its seed.
"""

from __future__ import annotations

import os
import random
import sqlite3
import threading
import time
from dataclasses import dataclass

from repro.errors import StorageError

#: Fault kinds.
LOCK = "lock"
DISK_IO = "disk_io"
SLOW = "slow"
DROP = "drop"
KILL = "kill"

KINDS: tuple[str, ...] = (LOCK, DISK_IO, SLOW, DROP, KILL)

#: Server-level fault points (used as the ``site`` of a fault).
POINT_POOL_ACQUIRE = "pool.acquire"
POINT_WRITER_JOB = "writer.job"
POINT_RESPONSE = "server.response"

POINTS: tuple[str, ...] = (
    POINT_POOL_ACQUIRE, POINT_WRITER_JOB, POINT_RESPONSE)

#: The messages raised for each error-raising kind; the lock message
#: is deliberately the exact text SQLite uses, so classification in
#: :func:`repro.db.resilience.is_transient` treats injected and real
#: faults identically.
_MESSAGES = {
    LOCK: "database is locked",
    DISK_IO: "disk I/O error",
}

#: Default exit status for ``kill`` faults (128 + SIGKILL).
KILL_EXIT_CODE = 137

#: Default sleep for ``slow`` faults, seconds.
DEFAULT_DELAY = 0.05


class InjectedDisconnect(ConnectionError):
    """A ``drop`` fault fired: tear the connection down, mid-response."""


@dataclass(slots=True)
class Fault:
    """One armed fault.

    :param kind: ``lock``, ``disk_io``, ``slow``, ``drop``, or
        ``kill``.
    :param match: case-insensitive substring the SQL text must contain
        (empty matches every statement).  ``BEGIN``/``COMMIT``/
        ``SAVEPOINT`` are ordinary statements here, so transaction
        boundaries are matchable.  Ignored at server-level points.
    :param site: restrict to one execution site — ``statement``
        (:meth:`Database.execute`), ``executemany``,
        ``executescript``, or a server-level point name
        (:data:`POINT_POOL_ACQUIRE`, :data:`POINT_WRITER_JOB`,
        :data:`POINT_RESPONSE`); empty matches all sites.
    :param skip: let this many matching executions succeed first.
    :param times: fire at most this many times, then stand down.
    :param chance: probability (0..1] a matching execution fires,
        drawn from the injector's seeded RNG; 1.0 is deterministic.
    :param delay: seconds a ``slow`` fault sleeps.
    :param exit_code: process exit status for ``kill`` faults.
    """

    kind: str
    match: str = ""
    site: str = ""
    skip: int = 0
    times: int = 1
    chance: float = 1.0
    delay: float = DEFAULT_DELAY
    exit_code: int = KILL_EXIT_CODE
    #: Matching executions seen so far (including skipped ones).
    seen: int = 0
    #: Times this fault has fired.
    fired: int = 0

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise StorageError(
                f"unknown fault kind {self.kind!r}; expected one of "
                f"{', '.join(KINDS)}")
        if not 0.0 < self.chance <= 1.0:
            raise StorageError(
                f"fault chance must be in (0, 1], got {self.chance}")
        if self.delay < 0:
            raise StorageError(
                f"fault delay must be >= 0, got {self.delay}")

    @property
    def exhausted(self) -> bool:
        """True once the fault has fired ``times`` times."""
        return self.fired >= self.times

    def matches(self, site: str, sql: str) -> bool:
        if self.site and self.site != site:
            return False
        if self.match and self.match.lower() not in sql.lower():
            return False
        return True


class FaultInjector:
    """A scripted set of faults consulted at statement boundaries and
    server-level fault points.

    Attach with ``Database(faults=injector)`` or
    ``database.set_fault_injector(injector)``; arm faults with
    :meth:`inject`.  The serving layer attaches one injector to the
    writer connection, every pooled reader, and its own request path
    (``ServerConfig(faults=...)``), so one schedule spans all of them.

    :param seed: seeds the RNG behind probabilistic (``chance < 1``)
        faults — a chaos storm replays exactly from its seed.

    Counter updates are lock-protected so a storm may hammer one
    injector from many handler threads; the *schedule* itself stays
    deterministic for single-threaded fault tests and seeded for
    multi-threaded ones.
    """

    def __init__(self, seed: int | None = None) -> None:
        self._faults: list[Fault] = []
        self._random = random.Random(seed)
        self._lock = threading.Lock()
        #: Total faults fired through this injector.
        self.fired = 0
        #: Faults fired per kind (chaos reports read this).
        self.fired_by_kind: dict[str, int] = {}

    def inject(self, kind: str, *, match: str = "", site: str = "",
               skip: int = 0, times: int = 1, chance: float = 1.0,
               delay: float = DEFAULT_DELAY,
               exit_code: int = KILL_EXIT_CODE) -> Fault:
        """Arm one fault and return it (counters are inspectable)."""
        fault = Fault(kind=kind, match=match, site=site, skip=skip,
                      times=times, chance=chance, delay=delay,
                      exit_code=exit_code)
        self._faults.append(fault)
        return fault

    def on_statement(self, sql: str, site: str = "statement") -> None:
        """Called by the engine wrapper before running ``sql``.

        Raises (or sleeps, or kills the process) when an armed fault
        matches.
        """
        to_fire: Fault | None = None
        with self._lock:
            for fault in self._faults:
                if fault.exhausted or not fault.matches(site, sql):
                    continue
                fault.seen += 1
                if fault.seen <= fault.skip:
                    continue
                if fault.chance < 1.0 \
                        and self._random.random() >= fault.chance:
                    continue
                fault.fired += 1
                self.fired += 1
                self.fired_by_kind[fault.kind] = \
                    self.fired_by_kind.get(fault.kind, 0) + 1
                to_fire = fault
                break
        if to_fire is not None:
            self._fire(to_fire)

    def on_point(self, point: str) -> None:
        """Consult the injector at a server-level fault point.

        A fault armed with ``site=point`` (and no statement ``match``)
        fires here exactly like a statement fault would.
        """
        self.on_statement(point, site=point)

    def reset(self) -> None:
        """Disarm everything and zero the counters."""
        with self._lock:
            self._faults.clear()
            self.fired = 0
            self.fired_by_kind.clear()

    def stats(self) -> dict[str, int]:
        """Fired counters, total and per kind (chaos reporting)."""
        with self._lock:
            return {"fired": self.fired, **self.fired_by_kind}

    def _fire(self, fault: Fault) -> None:
        if fault.kind == KILL:
            # Simulated SIGKILL/power-cut: no cleanup of any kind runs.
            os._exit(fault.exit_code)
        if fault.kind == SLOW:
            time.sleep(fault.delay)
            return
        if fault.kind == DROP:
            raise InjectedDisconnect(
                "connection dropped [injected]")
        raise sqlite3.OperationalError(
            f"{_MESSAGES[fault.kind]} [injected]")

"""Deterministic fault injection for the storage engine.

Crash safety is only believable when it is exercised: this module lets
tests inject engine failures at exact statement/transaction boundaries
and prove the retry path, staging cleanup, and WAL recovery actually
work.  A :class:`FaultInjector` attached to a
:class:`~repro.db.connection.Database` is consulted before every
``execute``/``executemany``/``executescript`` call (and therefore
before ``BEGIN``/``COMMIT``/``SAVEPOINT``, which go through
``execute``), so a fault can be pinned to "the third INSERT into
``rdf_link$``" or "the outermost COMMIT".

Three fault kinds:

``lock``
    Raises ``sqlite3.OperationalError("database is locked")`` — the
    transient condition the :class:`~repro.db.resilience.RetryPolicy`
    retries with backoff.  A fault with ``times=2`` fails the first two
    attempts and lets the third succeed, exercising the full retry
    path.
``disk_io``
    Raises ``sqlite3.OperationalError("disk I/O error")`` — fatal; the
    engine wrapper must surface it as
    :class:`~repro.errors.StorageError` without retrying.
``kill``
    Calls ``os._exit`` — the process dies on the spot with no cleanup,
    no ``atexit``, no buffered-write flush, exactly like ``SIGKILL``
    or a power cut.  Only meaningful from a sacrificial subprocess;
    the crash-recovery tests fork a child, kill it mid-bulkload, then
    reopen the database file and assert WAL recovery left the schema
    invariants intact.

Faults fire deterministically: ``match`` selects statements by
case-insensitive substring, ``skip`` lets that many matching
executions pass first, and ``times`` bounds how often the fault fires.
"""

from __future__ import annotations

import os
import sqlite3
from dataclasses import dataclass

from repro.errors import StorageError

#: Fault kinds.
LOCK = "lock"
DISK_IO = "disk_io"
KILL = "kill"

KINDS: tuple[str, ...] = (LOCK, DISK_IO, KILL)

#: The messages raised for each error-raising kind; the lock message
#: is deliberately the exact text SQLite uses, so classification in
#: :func:`repro.db.resilience.is_transient` treats injected and real
#: faults identically.
_MESSAGES = {
    LOCK: "database is locked",
    DISK_IO: "disk I/O error",
}

#: Default exit status for ``kill`` faults (128 + SIGKILL).
KILL_EXIT_CODE = 137


@dataclass(slots=True)
class Fault:
    """One armed fault.

    :param kind: ``lock``, ``disk_io``, or ``kill``.
    :param match: case-insensitive substring the SQL text must contain
        (empty matches every statement).  ``BEGIN``/``COMMIT``/
        ``SAVEPOINT`` are ordinary statements here, so transaction
        boundaries are matchable.
    :param site: restrict to one execution site — ``statement``
        (:meth:`Database.execute`), ``executemany``, or
        ``executescript``; empty matches all sites.
    :param skip: let this many matching executions succeed first.
    :param times: fire at most this many times, then stand down.
    :param exit_code: process exit status for ``kill`` faults.
    """

    kind: str
    match: str = ""
    site: str = ""
    skip: int = 0
    times: int = 1
    exit_code: int = KILL_EXIT_CODE
    #: Matching executions seen so far (including skipped ones).
    seen: int = 0
    #: Times this fault has fired.
    fired: int = 0

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise StorageError(
                f"unknown fault kind {self.kind!r}; expected one of "
                f"{', '.join(KINDS)}")

    @property
    def exhausted(self) -> bool:
        """True once the fault has fired ``times`` times."""
        return self.fired >= self.times

    def matches(self, site: str, sql: str) -> bool:
        if self.site and self.site != site:
            return False
        if self.match and self.match.lower() not in sql.lower():
            return False
        return True


class FaultInjector:
    """A scripted set of faults consulted at statement boundaries.

    Attach with ``Database(faults=injector)`` or
    ``database.set_fault_injector(injector)``; arm faults with
    :meth:`inject`.  Thread-unsafe by design — fault tests are
    single-threaded and deterministic.
    """

    def __init__(self) -> None:
        self._faults: list[Fault] = []
        #: Total faults fired through this injector.
        self.fired = 0

    def inject(self, kind: str, *, match: str = "", site: str = "",
               skip: int = 0, times: int = 1,
               exit_code: int = KILL_EXIT_CODE) -> Fault:
        """Arm one fault and return it (counters are inspectable)."""
        fault = Fault(kind=kind, match=match, site=site, skip=skip,
                      times=times, exit_code=exit_code)
        self._faults.append(fault)
        return fault

    def on_statement(self, sql: str, site: str = "statement") -> None:
        """Called by the engine wrapper before running ``sql``.

        Raises (or kills the process) when an armed fault matches.
        """
        for fault in self._faults:
            if fault.exhausted or not fault.matches(site, sql):
                continue
            fault.seen += 1
            if fault.seen <= fault.skip:
                continue
            fault.fired += 1
            self.fired += 1
            self._fire(fault)

    def reset(self) -> None:
        """Disarm everything and zero the counters."""
        self._faults.clear()
        self.fired = 0

    def _fire(self, fault: Fault) -> None:
        if fault.kind == KILL:
            # Simulated SIGKILL/power-cut: no cleanup of any kind runs.
            os._exit(fault.exit_code)
        raise sqlite3.OperationalError(
            f"{_MESSAGES[fault.kind]} [injected]")

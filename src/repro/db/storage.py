"""Storage accounting for tables.

Section 7.3 of the paper claims the streamlined reification scheme needs
only 25 % of the storage of a naive quad implementation.  To measure that
claim we need per-table storage figures: row counts and an estimate of
stored bytes.  SQLite does not expose per-table page counts without the
dbstat virtual table (not always compiled in), so bytes are computed as
the sum of value sizes over all rows — a stable, engine-independent
measure that captures exactly the redundancy the paper talks about
(repeated URIs and extra rows).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.db.connection import quote_identifier

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.db.connection import Database


@dataclass(frozen=True, slots=True)
class StorageReport:
    """Storage figures for one table."""

    table_name: str
    row_count: int
    byte_count: int

    def ratio_to(self, other: "StorageReport") -> float:
        """This table's bytes as a fraction of ``other``'s bytes."""
        if other.byte_count == 0:
            return float("inf") if self.byte_count else 0.0
        return self.byte_count / other.byte_count

    def row_ratio_to(self, other: "StorageReport") -> float:
        """This table's rows as a fraction of ``other``'s rows."""
        if other.row_count == 0:
            return float("inf") if self.row_count else 0.0
        return self.row_count / other.row_count


def _value_bytes(value: object) -> int:
    """Stored size of one column value."""
    if value is None:
        return 0
    if isinstance(value, bytes):
        return len(value)
    if isinstance(value, str):
        return len(value.encode("utf-8"))
    if isinstance(value, int):
        # SQLite stores integers in 1..8 bytes; 8 is a safe constant.
        return 8
    if isinstance(value, float):
        return 8
    return len(str(value).encode("utf-8"))


def table_storage(database: "Database", table_name: str,
                  where: str = "", parameters: tuple = ()) -> StorageReport:
    """Row and byte counts for ``table_name`` (optionally filtered).

    ``where`` is an optional SQL predicate (without the WHERE keyword)
    letting callers measure a slice of a shared table — e.g. only the
    reification rows of ``rdf_link$``.
    """
    sql = f"SELECT * FROM {quote_identifier(table_name)}"
    if where:
        sql += f" WHERE {where}"
    row_count = 0
    byte_count = 0
    for row in database.execute(sql, parameters):
        row_count += 1
        byte_count += sum(_value_bytes(value) for value in tuple(row))
    return StorageReport(table_name, row_count, byte_count)


def combined_storage(reports: list[StorageReport],
                     label: str = "combined") -> StorageReport:
    """Sum several reports into one (e.g. link rows + their value rows)."""
    return StorageReport(
        label,
        sum(report.row_count for report in reports),
        sum(report.byte_count for report in reports))

"""Durability profiles and the retry/backoff policy of the engine.

The paper's system inherits crash safety from Oracle; our SQLite
substitute has to choose its own durability/performance point.  This
module names the three supported points as :class:`DurabilityProfile`
values and implements the :class:`RetryPolicy` that turns transient
engine errors (``database is locked``) into bounded exponential-backoff
retries instead of raw failures.

Profiles
--------

``ephemeral``
    Today's test/benchmark defaults: in-memory journal, ``synchronous
    = OFF``.  Fastest; a crash mid-write can corrupt the file.  The
    default for in-memory databases and the historical behaviour.
``durable``
    WAL journaling with ``synchronous = NORMAL`` and a busy timeout.
    A killed process loses at most the open transaction; the WAL
    replays or rolls back on the next open, so the schema invariants
    survive (the crash-recovery tests prove it with real ``os._exit``
    kills mid-bulkload).
``paranoid``
    WAL with ``synchronous = FULL``, a longer busy timeout, and a
    ``PRAGMA foreign_key_check`` sweep before every outermost COMMIT —
    foreign keys are verified on every path even if something switched
    enforcement off mid-transaction.

Selection: constructor argument > ``REPRO_DURABILITY`` environment
variable > ``ephemeral``.  The CLI exposes ``--durability``.

Retry policy
------------

SQLite raises ``sqlite3.OperationalError("database is locked")`` when a
concurrent writer holds the file.  :meth:`RetryPolicy.run` classifies
operational errors into *transient* (locked/busy — worth retrying) and
*fatal* (disk I/O, corruption — fail immediately), retries transient
ones with capped exponential backoff plus jitter, and reports every
retry through the observer (``sql.retries`` counter,
``sql.backoff_seconds`` histogram), so lock contention is visible in
``repro stats --json``.
"""

from __future__ import annotations

import os
import random
import sqlite3
import time
from dataclasses import dataclass, field
from typing import Callable, TypeVar

from repro.errors import StorageError
from repro.obs.observer import NULL_OBSERVER, Observer

#: Environment variable selecting the durability profile by name.
DURABILITY_ENV_VAR = "REPRO_DURABILITY"

T = TypeVar("T")


@dataclass(frozen=True, slots=True)
class DurabilityProfile:
    """One named durability/performance point for the engine."""

    name: str
    journal_mode: str
    synchronous: str
    busy_timeout_ms: int
    #: Run ``PRAGMA foreign_key_check`` before every outermost COMMIT.
    verify_foreign_keys: bool
    #: Run ``PRAGMA wal_checkpoint(TRUNCATE)`` on close so the main
    #: database file is complete on its own.
    checkpoint_on_close: bool

    def pragmas(self, read_only: bool = False) -> list[str]:
        """The PRAGMA statements establishing this profile.

        A read-only (``mode=ro``) connection cannot switch journal
        modes — it inherits whatever the writer established — so that
        pragma is omitted; the connection-local ones still apply.
        """
        statements = ["PRAGMA foreign_keys = ON"]
        if not read_only:
            statements.append(
                f"PRAGMA journal_mode = {self.journal_mode}")
        statements.extend([
            f"PRAGMA synchronous = {self.synchronous}",
            f"PRAGMA busy_timeout = {self.busy_timeout_ms}",
        ])
        return statements


EPHEMERAL = DurabilityProfile(
    name="ephemeral", journal_mode="MEMORY", synchronous="OFF",
    busy_timeout_ms=0, verify_foreign_keys=False,
    checkpoint_on_close=False)

DURABLE = DurabilityProfile(
    name="durable", journal_mode="WAL", synchronous="NORMAL",
    busy_timeout_ms=5_000, verify_foreign_keys=False,
    checkpoint_on_close=True)

PARANOID = DurabilityProfile(
    name="paranoid", journal_mode="WAL", synchronous="FULL",
    busy_timeout_ms=10_000, verify_foreign_keys=True,
    checkpoint_on_close=True)

#: All named profiles, keyed by name.
PROFILES: dict[str, DurabilityProfile] = {
    profile.name: profile
    for profile in (EPHEMERAL, DURABLE, PARANOID)
}


def resolve_profile(durability: str | DurabilityProfile | None = None
                    ) -> DurabilityProfile:
    """Resolve a profile: explicit value > ``REPRO_DURABILITY`` > ephemeral.

    Accepts a profile object, a profile name, or ``None``.
    """
    if isinstance(durability, DurabilityProfile):
        return durability
    name = durability
    if name is None:
        name = os.environ.get(DURABILITY_ENV_VAR, "").strip() or None
    if name is None:
        return EPHEMERAL
    try:
        return PROFILES[name.lower()]
    except KeyError:
        raise StorageError(
            f"unknown durability profile {name!r}; expected one of "
            f"{', '.join(sorted(PROFILES))}") from None


# ----------------------------------------------------------------------
# transient-error classification
# ----------------------------------------------------------------------

#: Substrings of ``sqlite3.OperationalError`` messages that indicate a
#: transient condition worth retrying.
TRANSIENT_MARKERS: tuple[str, ...] = (
    "database is locked",
    "database table is locked",
    "database is busy",
)


def is_transient(exc: BaseException) -> bool:
    """True for operational errors a retry can plausibly fix.

    Only lock/busy conditions qualify; disk I/O errors, corruption,
    and SQL mistakes are fatal and must surface immediately.
    """
    if not isinstance(exc, sqlite3.OperationalError):
        return False
    message = str(exc).lower()
    return any(marker in message for marker in TRANSIENT_MARKERS)


@dataclass(frozen=True, slots=True)
class RetryPolicy:
    """Bounded exponential backoff with jitter for transient errors.

    The delay before attempt *n*'s retry is
    ``min(max_delay, base_delay * multiplier**(n-1))`` scaled by a
    jitter factor in ``[1 - jitter, 1]``.  ``sleep`` and ``rand`` are
    injectable so tests run without wall-clock waits and with
    deterministic jitter.
    """

    max_attempts: int = 5
    base_delay: float = 0.005
    multiplier: float = 2.0
    max_delay: float = 0.25
    jitter: float = 0.5
    sleep: Callable[[float], None] = field(default=time.sleep,
                                           repr=False)
    rand: Callable[[], float] = field(default=random.random, repr=False)

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise StorageError("RetryPolicy needs max_attempts >= 1")
        if not 0.0 <= self.jitter <= 1.0:
            raise StorageError("RetryPolicy jitter must be in [0, 1]")

    def delay_for(self, attempt: int) -> float:
        """Backoff before the retry following failed attempt ``attempt``."""
        delay = min(self.max_delay,
                    self.base_delay * self.multiplier ** (attempt - 1))
        return delay * ((1.0 - self.jitter) + self.jitter * self.rand())

    def run(self, fn: Callable[[], T],
            observer: Observer = NULL_OBSERVER) -> T:
        """Call ``fn``, retrying transient operational errors.

        Fatal errors (and transient ones after ``max_attempts``)
        propagate unchanged; the caller wraps them in
        :class:`~repro.errors.StorageError` with statement context.
        """
        try:
            return fn()
        except sqlite3.OperationalError as exc:
            if not is_transient(exc) or self.max_attempts <= 1:
                raise
            return self._retry_loop(fn, observer)

    def _retry_loop(self, fn: Callable[[], T],
                    observer: Observer) -> T:
        """The slow path: attempt 1 already failed transiently."""
        retries = observer.counter(
            "sql.retries", "transient SQL errors retried with backoff")
        backoff = observer.metrics.histogram(
            "sql.backoff_seconds", "sleep before each SQL retry")
        attempt = 1
        while True:
            delay = self.delay_for(attempt)
            retries.inc()
            backoff.observe(delay)
            if delay > 0:
                self.sleep(delay)
            attempt += 1
            try:
                return fn()
            except sqlite3.OperationalError as exc:
                if not is_transient(exc):
                    raise
                if attempt >= self.max_attempts:
                    observer.counter(
                        "sql.retry_exhausted",
                        "statements that kept failing after all "
                        "retry attempts").inc()
                    raise


#: The policy used when retrying is switched off (single attempt).
NO_RETRY = RetryPolicy(max_attempts=1)

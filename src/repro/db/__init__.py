"""Database engine substrate.

The paper's system lives inside Oracle 10g; this subpackage is the
substitute engine layer built on stdlib SQLite:

* :class:`repro.db.connection.Database` — connection/transaction wrapper
  with the conveniences the rest of the library relies on;
* :mod:`repro.db.dburi` — Oracle XML DB *DBUri* emulation, the direct
  row-pointer URIs the streamlined reification scheme uses;
* :mod:`repro.db.indexes` — "function-based index" emulation (SQLite
  expression indexes) used by the performance section;
* :mod:`repro.db.storage` — storage accounting (row and byte counts) for
  the reification storage experiment;
* :mod:`repro.db.resilience` — durability profiles (``ephemeral``/
  ``durable``/``paranoid``) and the transient-error retry policy;
* :mod:`repro.db.faults` — deterministic fault injection for crash and
  contention testing;
* :mod:`repro.db.pool` — the read-connection pool and single-writer
  queue the concurrent serving layer is built on.
"""

from repro.db.connection import Database
from repro.db.dburi import DBUri, DBUriType, is_dburi
from repro.db.faults import FaultInjector
from repro.db.indexes import FunctionBasedIndex, create_function_based_index
from repro.db.pool import ConnectionPool, WriterQueue
from repro.db.resilience import (
    DurabilityProfile,
    PROFILES,
    RetryPolicy,
    resolve_profile,
)
from repro.db.storage import StorageReport, table_storage

__all__ = [
    "ConnectionPool",
    "DBUri",
    "DBUriType",
    "Database",
    "DurabilityProfile",
    "FaultInjector",
    "FunctionBasedIndex",
    "PROFILES",
    "RetryPolicy",
    "StorageReport",
    "WriterQueue",
    "create_function_based_index",
    "is_dburi",
    "resolve_profile",
    "table_storage",
]

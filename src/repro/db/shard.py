"""Shard routing for the partitioned storage engine.

The sharded backend (:mod:`repro.core.sharded`) partitions ``rdf_link$``
across N complete SQLite files.  This module owns the three decisions
every layer above must agree on:

**Routing.**  A triple lives on exactly one shard, chosen by its model
name and its subject's lexical form::

    shard = crc32(model_name + "\\0" + subject_lexical) % shard_count

``zlib.crc32`` is deliberate: it is stable across processes, platforms,
and ``PYTHONHASHSEED`` values, unlike the salted builtin ``hash()``.
Routing by (model, subject) means a subject-anchored query touches one
shard per model, and all triples of one subject in one model — the unit
the paper's member functions and reification lookups work on — are
co-located.

**File naming.**  Shard files are siblings of the logical base path:
``universe.db`` becomes ``universe.db.shard0`` … ``universe.db.shardN-1``.
The base path itself is never created, so a sharded store can be
auto-discovered (``repro doctor`` does) by globbing the siblings.

**Link-id partitioning.**  Each shard allocates LINK_IDs from its own
stride of the integer line (``shard k`` owns
``[k * LINK_ID_STRIDE, (k+1) * LINK_ID_STRIDE)``), so a LINK_ID is
globally unique and names its shard — which is what keeps the paper's
reification DBUris (``.../RDF_LINK$/ROW[LINK_ID=t]``) resolvable on a
partitioned store.

Every shard file carries a one-row ``rdf_shard$`` table recording its
``(shard_index, shard_count)``; opening a shard under the wrong layout
raises :class:`~repro.errors.SchemaError` instead of silently
mis-routing.
"""

from __future__ import annotations

import zlib
from pathlib import Path
from typing import TYPE_CHECKING, Sequence

from repro.errors import SchemaError, StorageError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.db.connection import Database

#: LINK_IDs per shard: shard k allocates from [k*STRIDE, (k+1)*STRIDE).
#: 10^12 ids per shard is unreachable in practice and keeps the
#: shard-of-a-link computation a single integer division.
LINK_ID_STRIDE = 10 ** 12

#: The per-shard layout-identity table (central-schema style name).
SHARD_TABLE = "rdf_shard$"


def stable_shard_hash(model_name: str, subject_lexical: str) -> int:
    """The raw routing hash — CRC32 over ``model\\0subject`` UTF-8.

    Salted ``hash()`` must never be used here: routing has to agree
    across processes (writer, pooled readers, doctor, tests) and
    across interpreter restarts with different ``PYTHONHASHSEED``.
    """
    key = f"{model_name}\x00{subject_lexical}".encode("utf-8")
    return zlib.crc32(key) & 0xFFFFFFFF


def shard_of_link_id(link_id: int) -> int:
    """The shard index a LINK_ID was allocated on."""
    return int(link_id) // LINK_ID_STRIDE


class ShardRouter:
    """Routing and naming for one sharded store layout.

    :param base_path: the logical database path (the shard files are
        named ``<base_path>.shard<k>``).
    :param shard_count: number of partitions (>= 1).
    """

    def __init__(self, base_path: str | Path, shard_count: int) -> None:
        if shard_count < 1:
            raise StorageError(
                f"shard count must be >= 1, got {shard_count}")
        base = str(base_path)
        if base == ":memory:" or base.startswith("file::memory:"):
            raise StorageError(
                "a sharded store needs a file-backed base path; "
                ":memory: cannot be partitioned across connections")
        self.base_path = base
        self.shard_count = shard_count

    # ------------------------------------------------------------------
    # routing
    # ------------------------------------------------------------------

    def shard_of(self, model_name: str, subject_lexical: str) -> int:
        """The shard index for (model, subject)."""
        return stable_shard_hash(model_name, subject_lexical) \
            % self.shard_count

    def shards_for_models(self, model_names: Sequence[str],
                          subject_lexical: str) -> set[int]:
        """Every shard a subject-anchored pattern can touch."""
        return {self.shard_of(name, subject_lexical)
                for name in model_names}

    def all_shards(self) -> range:
        return range(self.shard_count)

    # ------------------------------------------------------------------
    # file naming
    # ------------------------------------------------------------------

    def shard_path(self, index: int) -> str:
        if not 0 <= index < self.shard_count:
            raise StorageError(
                f"shard index {index} out of range "
                f"[0, {self.shard_count})")
        return f"{self.base_path}.shard{index}"

    def shard_paths(self) -> list[str]:
        return [self.shard_path(index) for index in self.all_shards()]

    @staticmethod
    def discover(base_path: str | Path) -> list[Path]:
        """Existing shard files of ``base_path``, in index order.

        Used by ``repro doctor`` to sweep a sharded layout without
        being told the shard count.  Returns an empty list when the
        path is not sharded (no ``.shard<k>`` siblings).
        """
        base = Path(base_path)
        found: list[tuple[int, Path]] = []
        prefix = base.name + ".shard"
        if not base.parent.exists():
            return []
        for candidate in base.parent.iterdir():
            name = candidate.name
            if not name.startswith(prefix):
                continue
            suffix = name[len(prefix):]
            if suffix.isdigit():
                found.append((int(suffix), candidate))
        return [path for _, path in sorted(found)]

    # ------------------------------------------------------------------
    # link-id strides
    # ------------------------------------------------------------------

    def link_id_range(self, index: int) -> tuple[int, int]:
        """The half-open LINK_ID interval shard ``index`` allocates in."""
        if not 0 <= index < self.shard_count:
            raise StorageError(
                f"shard index {index} out of range "
                f"[0, {self.shard_count})")
        return index * LINK_ID_STRIDE, (index + 1) * LINK_ID_STRIDE


# ----------------------------------------------------------------------
# per-shard layout identity
# ----------------------------------------------------------------------

def ensure_shard_meta(database: "Database", shard_index: int,
                      shard_count: int) -> None:
    """Create/validate the ``rdf_shard$`` identity row of one shard.

    A shard file opened under a different ``(index, count)`` than it
    was written with would silently route triples to the wrong
    partition — this check turns that into a hard
    :class:`~repro.errors.SchemaError` at open time, the documented
    failure mode for resharding without a migration.
    """
    database.execute(
        f'CREATE TABLE IF NOT EXISTS "{SHARD_TABLE}" ('
        "  shard_index INTEGER NOT NULL,"
        "  shard_count INTEGER NOT NULL"
        ")")
    row = database.query_one(f'SELECT * FROM "{SHARD_TABLE}"')
    if row is None:
        database.execute(
            f'INSERT INTO "{SHARD_TABLE}" (shard_index, shard_count) '
            "VALUES (?, ?)", (shard_index, shard_count))
        return
    stored_index = int(row["shard_index"])
    stored_count = int(row["shard_count"])
    if (stored_index, stored_count) != (shard_index, shard_count):
        raise SchemaError(
            f"shard file {database.path} was written as shard "
            f"{stored_index} of {stored_count} but is being opened as "
            f"shard {shard_index} of {shard_count}; resharding needs "
            "an explicit migration (dump and re-load)")


def read_shard_meta(database: "Database") -> tuple[int, int] | None:
    """The stored ``(shard_index, shard_count)``, or None when the
    file is not a shard."""
    if not database.table_exists(SHARD_TABLE):
        return None
    row = database.query_one(f'SELECT * FROM "{SHARD_TABLE}"')
    if row is None:
        return None
    return int(row["shard_index"]), int(row["shard_count"])

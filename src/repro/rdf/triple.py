"""The RDF triple: ``<subject, predicate, object>``.

Each RDF statement is a triple, effectively a directed edge pointing from
the subject node to the object node, labelled by the predicate (paper
Figure 1).  The component constraints follow RDF Concepts:

* subject — URI or blank node;
* predicate — URI;
* object — URI, blank node, or literal.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.errors import TermError
from repro.rdf.terms import BlankNode, Literal, RDFTerm, URI, parse_term_text


@dataclass(frozen=True, slots=True)
class Triple:
    """An immutable RDF statement.

    Triples are hashable value objects, so a set of triples is an RDF
    graph (see :class:`repro.rdf.graph.Graph`).
    """

    subject: RDFTerm
    predicate: URI
    object: RDFTerm

    def __post_init__(self) -> None:
        if isinstance(self.subject, Literal):
            raise TermError("triple subject cannot be a literal")
        if not isinstance(self.subject, (URI, BlankNode)):
            raise TermError(
                f"triple subject must be a URI or blank node, "
                f"got {type(self.subject).__name__}")
        if not isinstance(self.predicate, URI):
            raise TermError(
                f"triple predicate must be a URI, "
                f"got {type(self.predicate).__name__}")
        if not isinstance(self.object, (URI, BlankNode, Literal)):
            raise TermError(
                f"triple object must be an RDF term, "
                f"got {type(self.object).__name__}")

    @classmethod
    def from_text(cls, subject: str, predicate: str, obj: str) -> "Triple":
        """Build a triple from the string forms used in the paper's SQL.

        ``Triple.from_text('gov:files', 'gov:terrorSuspect', 'id:JohnDoe')``
        mirrors the ``SDO_RDF_TRIPLE_S(model, s, p, o)`` constructor
        arguments.
        """
        subj = parse_term_text(subject)
        pred = parse_term_text(predicate)
        if not isinstance(pred, URI):
            raise TermError(
                f"predicate {predicate!r} must parse to a URI")
        return cls(subj, pred, parse_term_text(obj))

    def __iter__(self) -> Iterator[RDFTerm]:
        yield self.subject
        yield self.predicate
        yield self.object

    def __str__(self) -> str:
        return f"<{self.subject}, {self.predicate}, {self.object}>"

    def replace(self, subject: RDFTerm | None = None,
                predicate: URI | None = None,
                obj: RDFTerm | None = None) -> "Triple":
        """A copy of this triple with the given components replaced."""
        return Triple(
            subject if subject is not None else self.subject,
            predicate if predicate is not None else self.predicate,
            obj if obj is not None else self.object,
        )

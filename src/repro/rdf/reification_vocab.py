"""The RDF reification vocabulary and quad handling.

Reifying ``<S, P, O>`` by a resource R produces the four statements of
the *reification quad* (paper section 2)::

    <R, rdf:type,      rdf:Statement>
    <R, rdf:subject,   S>
    <R, rdf:predicate, P>
    <R, rdf:object,    O>

The naive store keeps all four; the paper's streamlined scheme keeps only
the ``rdf:type`` statement with a DBUri as R.  This module provides the
vocabulary constants, quad expansion, and quad *collection* — scanning a
stream of triples and grouping the reification statements per resource,
which is what the quad-loading API consumes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator

from repro.errors import IncompleteQuadError, TermError
from repro.rdf.namespaces import RDF
from repro.rdf.terms import Literal, RDFTerm, URI
from repro.rdf.triple import Triple

#: The three "pointer" predicates of the quad.
RDF_SUBJECT = RDF.subject
RDF_PREDICATE = RDF.predicate
RDF_OBJECT = RDF.object
RDF_TYPE = RDF.type
RDF_STATEMENT = RDF.Statement

#: All four predicates that can appear in a reification quad.
REIFICATION_PREDICATES = frozenset(
    (RDF_TYPE, RDF_SUBJECT, RDF_PREDICATE, RDF_OBJECT))


def is_reification_predicate(predicate: URI) -> bool:
    """True for rdf:type/rdf:subject/rdf:predicate/rdf:object."""
    return predicate in REIFICATION_PREDICATES


@dataclass(frozen=True, slots=True)
class Quad:
    """A complete reification quad: resource R plus the reified triple."""

    resource: RDFTerm
    triple: Triple

    def statements(self) -> Iterator[Triple]:
        """The four statements of the quad, in vocabulary order."""
        return iter(expand_quad(self.resource, self.triple))


def expand_quad(resource: RDFTerm, triple: Triple) -> list[Triple]:
    """The four reification statements for ``triple`` reified by
    ``resource``."""
    if isinstance(resource, Literal):
        raise TermError("a reification resource cannot be a literal")
    return [
        Triple(resource, RDF_TYPE, RDF_STATEMENT),
        Triple(resource, RDF_SUBJECT, triple.subject),
        Triple(resource, RDF_PREDICATE, triple.predicate),
        Triple(resource, RDF_OBJECT, triple.object),
    ]


@dataclass
class _PartialQuad:
    """Accumulates the pieces of one quad while scanning a stream."""

    resource: RDFTerm
    typed: bool = False
    subject: RDFTerm | None = None
    predicate: RDFTerm | None = None
    object: RDFTerm | None = None

    def missing(self) -> list[str]:
        missing: list[str] = []
        if not self.typed:
            missing.append("rdf:type rdf:Statement")
        if self.subject is None:
            missing.append("rdf:subject")
        if self.predicate is None:
            missing.append("rdf:predicate")
        if self.object is None:
            missing.append("rdf:object")
        return missing

    def complete(self) -> Quad:
        missing = self.missing()
        if missing:
            raise IncompleteQuadError(str(self.resource), missing)
        if not isinstance(self.predicate, URI):
            raise TermError(
                f"rdf:predicate of {self.resource} must be a URI")
        assert self.subject is not None and self.object is not None
        return Quad(self.resource,
                    Triple(self.subject, self.predicate, self.object))


def collect_quads(triples: Iterable[Triple]
                  ) -> tuple[list[Quad], list["_PartialQuad"], list[Triple]]:
    """Partition a triple stream into quads, incomplete quads, and the rest.

    Returns ``(complete, incomplete, others)`` where *complete* is the
    list of fully-assembled :class:`Quad` objects, *incomplete* the
    partial quads (resources that used some reification vocabulary but not
    all four statements), and *others* every triple that is not part of
    any reification quad — these pass through the loader unchanged.
    """
    partials: dict[RDFTerm, _PartialQuad] = {}
    others: list[Triple] = []
    for triple in triples:
        if _absorb(partials, triple):
            continue
        others.append(triple)
    complete: list[Quad] = []
    incomplete: list[_PartialQuad] = []
    for partial in partials.values():
        if partial.missing():
            incomplete.append(partial)
        else:
            complete.append(partial.complete())
    return complete, incomplete, others


def _absorb(partials: dict[RDFTerm, _PartialQuad], triple: Triple) -> bool:
    """Fold ``triple`` into a partial quad; False if it is unrelated."""
    predicate = triple.predicate
    if predicate == RDF_TYPE and triple.object == RDF_STATEMENT:
        _partial_for(partials, triple.subject).typed = True
        return True
    if predicate == RDF_SUBJECT:
        _partial_for(partials, triple.subject).subject = triple.object
        return True
    if predicate == RDF_PREDICATE:
        _partial_for(partials, triple.subject).predicate = triple.object
        return True
    if predicate == RDF_OBJECT:
        _partial_for(partials, triple.subject).object = triple.object
        return True
    return False


def _partial_for(partials: dict[RDFTerm, _PartialQuad],
                 resource: RDFTerm) -> _PartialQuad:
    partial = partials.get(resource)
    if partial is None:
        partial = _PartialQuad(resource)
        partials[resource] = partial
    return partial

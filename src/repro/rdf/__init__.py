"""RDF data model: terms, triples, namespaces, parsing, and graphs.

This subpackage is the self-contained RDF substrate the store is built on.
It implements the term model of the RDF Concepts and Abstract Syntax
recommendation as the paper uses it: URIs, blank nodes, plain literals with
optional language tags, typed literals, and long literals (values longer
than :data:`repro.rdf.terms.LONG_LITERAL_THRESHOLD` characters, which the
paper stores out-of-line in a LONG_VALUE column).
"""

from repro.rdf.terms import (
    LONG_LITERAL_THRESHOLD,
    BlankNode,
    Literal,
    RDFTerm,
    URI,
    ValueType,
    term_from_lexical,
)
from repro.rdf.triple import Triple
from repro.rdf.namespaces import (
    Alias,
    AliasSet,
    Namespace,
    DC,
    OWL,
    RDF,
    RDFS,
    XSD,
)
from repro.rdf.graph import Graph
from repro.rdf.ntriples import (
    parse_ntriples,
    parse_ntriples_line,
    serialize_ntriples,
    term_to_ntriples,
)
from repro.rdf.turtle import parse_turtle, serialize_turtle
from repro.rdf.rdfxml import parse_rdfxml, serialize_rdfxml
from repro.rdf.isomorphism import isomorphic
from repro.rdf.containers import Alt, Bag, Container, Seq
from repro.rdf.reification_vocab import (
    REIFICATION_PREDICATES,
    Quad,
    collect_quads,
    expand_quad,
    is_reification_predicate,
)

__all__ = [
    "Alias",
    "AliasSet",
    "Alt",
    "Bag",
    "BlankNode",
    "Container",
    "DC",
    "Graph",
    "LONG_LITERAL_THRESHOLD",
    "Literal",
    "Namespace",
    "OWL",
    "Quad",
    "RDF",
    "RDFS",
    "RDFTerm",
    "REIFICATION_PREDICATES",
    "Seq",
    "Triple",
    "URI",
    "ValueType",
    "XSD",
    "collect_quads",
    "expand_quad",
    "is_reification_predicate",
    "isomorphic",
    "parse_ntriples",
    "parse_ntriples_line",
    "parse_rdfxml",
    "parse_turtle",
    "serialize_ntriples",
    "serialize_rdfxml",
    "serialize_turtle",
    "term_from_lexical",
    "term_to_ntriples",
]

"""Namespaces and aliases.

The paper's queries pass an ``SDO_RDF_ALIASES(SDO_RDF_ALIAS('gov',
'http://www.us.gov#'))`` argument to ``SDO_RDF_MATCH`` so that patterns can
be written with short prefixed names.  :class:`Alias` and :class:`AliasSet`
reproduce that mechanism; :class:`Namespace` is a convenience for minting
URIs in a vocabulary.

The well-known vocabularies used by the store (RDF, RDFS, XSD, OWL, Dublin
Core) are provided as module-level :class:`Namespace` instances.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator

from repro.errors import TermError
from repro.rdf.terms import URI, WELL_KNOWN_PREFIXES


class Namespace:
    """A URI namespace that mints terms via attribute access.

    >>> GOV = Namespace("http://www.us.gov#")
    >>> GOV.terrorSuspect
    URI(value='http://www.us.gov#terrorSuspect')
    """

    def __init__(self, base: str) -> None:
        if not base:
            raise TermError("namespace base must be non-empty")
        self._base = base

    @property
    def base(self) -> str:
        return self._base

    def term(self, local_name: str) -> URI:
        """The URI for ``local_name`` in this namespace."""
        return URI(self._base + local_name)

    def __getattr__(self, local_name: str) -> URI:
        if local_name.startswith("_"):
            raise AttributeError(local_name)
        return self.term(local_name)

    def __getitem__(self, local_name: str) -> URI:
        return self.term(local_name)

    def __contains__(self, uri: URI | str) -> bool:
        value = uri.value if isinstance(uri, URI) else uri
        return value.startswith(self._base)

    def local_name(self, uri: URI | str) -> str:
        """The part of ``uri`` after this namespace's base."""
        value = uri.value if isinstance(uri, URI) else uri
        if not value.startswith(self._base):
            raise TermError(f"{value!r} is not in namespace {self._base!r}")
        return value[len(self._base):]

    def __repr__(self) -> str:
        return f"Namespace({self._base!r})"


#: RDF built-in vocabulary (rdf:type, rdf:subject, ...).
RDF = Namespace(WELL_KNOWN_PREFIXES["rdf"])
#: RDF Schema vocabulary (rdfs:subClassOf, rdfs:seeAlso, ...).
RDFS = Namespace(WELL_KNOWN_PREFIXES["rdfs"])
#: XML Schema datatypes (xsd:int, xsd:string, ...).
XSD = Namespace(WELL_KNOWN_PREFIXES["xsd"])
#: OWL vocabulary (used by some workloads).
OWL = Namespace(WELL_KNOWN_PREFIXES["owl"])
#: Dublin Core elements (the paper's property-table example uses dc:*).
DC = Namespace(WELL_KNOWN_PREFIXES["dc"])

#: Prefixes every query understands without declaring an alias; mirrors
#: Oracle's built-in namespace knowledge for rdf:/rdfs:/xsd:.
BUILTIN_PREFIXES: dict[str, str] = dict(WELL_KNOWN_PREFIXES)


@dataclass(frozen=True, slots=True)
class Alias:
    """One ``SDO_RDF_ALIAS(namespace_id, namespace_val)`` pair."""

    namespace_id: str
    namespace_val: str

    def __post_init__(self) -> None:
        if not self.namespace_id:
            raise TermError("alias prefix must be non-empty")
        if ":" in self.namespace_id:
            raise TermError(
                f"alias prefix {self.namespace_id!r} must not contain ':'")
        if not self.namespace_val:
            raise TermError("alias namespace value must be non-empty")


class AliasSet:
    """An ordered set of aliases; the ``SDO_RDF_ALIASES`` collection.

    Expansion resolves prefixed names (``gov:terrorSuspect``) to full URIs
    using the user aliases first, then the built-in rdf/rdfs/xsd prefixes.
    """

    def __init__(self, aliases: Iterable[Alias] = ()) -> None:
        self._aliases: dict[str, str] = {}
        for alias in aliases:
            self.add(alias)

    def add(self, alias: Alias) -> None:
        """Register ``alias``, overriding a previous binding of its prefix."""
        self._aliases[alias.namespace_id] = alias.namespace_val

    def __len__(self) -> int:
        return len(self._aliases)

    def __iter__(self) -> Iterator[Alias]:
        for prefix, value in self._aliases.items():
            yield Alias(prefix, value)

    def __contains__(self, prefix: str) -> bool:
        return prefix in self._aliases or prefix in BUILTIN_PREFIXES

    def namespace_for(self, prefix: str) -> str | None:
        """The namespace bound to ``prefix``, or None."""
        if prefix in self._aliases:
            return self._aliases[prefix]
        return BUILTIN_PREFIXES.get(prefix)

    def expand(self, name: str) -> str:
        """Expand a possibly-prefixed name to a full URI string.

        Strings that are not prefixed names — full URIs, quoted literals,
        blank nodes, query variables — are returned unchanged.
        """
        if (not name or name.startswith(('"', "_:", "?", "<"))
                or "://" in name):
            return name
        prefix, sep, local = name.partition(":")
        if not sep:
            return name
        namespace = self.namespace_for(prefix)
        if namespace is None:
            return name
        return namespace + local

    def compact(self, uri: str) -> str:
        """Abbreviate ``uri`` with the longest matching alias, if any."""
        best_prefix: str | None = None
        best_namespace = ""
        candidates = dict(BUILTIN_PREFIXES)
        candidates.update(self._aliases)
        for prefix, namespace in candidates.items():
            if uri.startswith(namespace) and len(namespace) > len(
                    best_namespace):
                best_prefix, best_namespace = prefix, namespace
        if best_prefix is None:
            return uri
        return f"{best_prefix}:{uri[len(best_namespace):]}"


def aliases(*pairs: tuple[str, str]) -> AliasSet:
    """Shorthand: ``aliases(('gov', 'http://www.us.gov#'))``."""
    return AliasSet(Alias(prefix, namespace) for prefix, namespace in pairs)

"""An in-memory RDF graph: a set of triples with pattern matching.

The store's persistent graphs live in ``rdf_link$``; this class is the
lightweight in-memory counterpart used by parsers, the quad converter, the
workload generators, and tests.  It supports the same triple-pattern match
primitive (None = wildcard) that the persistent store exposes, plus set
algebra.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Iterable, Iterator

from repro.rdf.terms import BlankNode, RDFTerm, URI
from repro.rdf.triple import Triple


class Graph:
    """A mutable set of :class:`Triple` with indexed pattern matching.

    Three hash indexes (by subject, predicate, object) accelerate
    single-bound-term matches; fully-bound membership checks hit the
    underlying set directly.
    """

    def __init__(self, triples: Iterable[Triple] = ()) -> None:
        self._triples: set[Triple] = set()
        self._by_subject: dict[RDFTerm, set[Triple]] = defaultdict(set)
        self._by_predicate: dict[URI, set[Triple]] = defaultdict(set)
        self._by_object: dict[RDFTerm, set[Triple]] = defaultdict(set)
        for triple in triples:
            self.add(triple)

    def add(self, triple: Triple) -> bool:
        """Add ``triple``; return True if it was not already present."""
        if triple in self._triples:
            return False
        self._triples.add(triple)
        self._by_subject[triple.subject].add(triple)
        self._by_predicate[triple.predicate].add(triple)
        self._by_object[triple.object].add(triple)
        return True

    def add_text(self, subject: str, predicate: str, obj: str) -> bool:
        """Parse the string forms and add the resulting triple."""
        return self.add(Triple.from_text(subject, predicate, obj))

    def discard(self, triple: Triple) -> bool:
        """Remove ``triple`` if present; return True if it was removed."""
        if triple not in self._triples:
            return False
        self._triples.discard(triple)
        self._by_subject[triple.subject].discard(triple)
        self._by_predicate[triple.predicate].discard(triple)
        self._by_object[triple.object].discard(triple)
        return True

    def update(self, triples: Iterable[Triple]) -> int:
        """Add all ``triples``; return how many were new."""
        return sum(1 for triple in triples if self.add(triple))

    def match(self, subject: RDFTerm | None = None,
              predicate: URI | None = None,
              obj: RDFTerm | None = None) -> Iterator[Triple]:
        """All triples matching the pattern; None components are wildcards.

        This is the in-memory analogue of Jena's ``listStatements`` and of
        a single SDO_RDF_MATCH triple pattern.
        """
        if (subject is not None and predicate is not None
                and obj is not None):
            candidate = Triple(subject, predicate, obj)
            if candidate in self._triples:
                yield candidate
            return
        candidates = self._candidate_set(subject, predicate, obj)
        for triple in candidates:
            if subject is not None and triple.subject != subject:
                continue
            if predicate is not None and triple.predicate != predicate:
                continue
            if obj is not None and triple.object != obj:
                continue
            yield triple

    def _candidate_set(self, subject: RDFTerm | None,
                       predicate: URI | None,
                       obj: RDFTerm | None) -> Iterable[Triple]:
        """The smallest index bucket covering the bound components."""
        buckets: list[set[Triple]] = []
        if subject is not None:
            buckets.append(self._by_subject.get(subject, set()))
        if predicate is not None:
            buckets.append(self._by_predicate.get(predicate, set()))
        if obj is not None:
            buckets.append(self._by_object.get(obj, set()))
        if not buckets:
            return self._triples
        return min(buckets, key=len)

    def subjects(self) -> set[RDFTerm]:
        """All distinct subjects."""
        return {s for s, bucket in self._by_subject.items() if bucket}

    def predicates(self) -> set[URI]:
        """All distinct predicates."""
        return {p for p, bucket in self._by_predicate.items() if bucket}

    def objects(self) -> set[RDFTerm]:
        """All distinct objects."""
        return {o for o, bucket in self._by_object.items() if bucket}

    def nodes(self) -> set[RDFTerm]:
        """All distinct subject and object nodes (the NDM node set)."""
        return self.subjects() | self.objects()

    def blank_nodes(self) -> set[BlankNode]:
        """All distinct blank nodes appearing in any position."""
        return {node for node in self.nodes()
                if isinstance(node, BlankNode)}

    def __contains__(self, triple: Triple) -> bool:
        return triple in self._triples

    def __len__(self) -> int:
        return len(self._triples)

    def __iter__(self) -> Iterator[Triple]:
        return iter(self._triples)

    def __or__(self, other: "Graph") -> "Graph":
        merged = Graph(self._triples)
        merged.update(other)
        return merged

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Graph):
            return NotImplemented
        return self._triples == other._triples

    def __repr__(self) -> str:
        return f"Graph({len(self)} triples)"

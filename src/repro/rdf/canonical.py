"""Canonicalization of typed literals.

The ``rdf_link$`` table carries a ``CANON_END_NODE_ID`` column: the
VALUE_ID for the *canonical form* of the object of the triple.  Two typed
literals that denote the same value — ``"024"^^xsd:int`` and
``"24"^^xsd:int`` — have different VALUE_IDs but share one canonical
VALUE_ID, so value-based joins and DISTINCT queries can compare a single
integer column.

This module computes the canonical lexical form for the common XSD
datatypes; for unknown datatypes and non-literals the canonical form is
the term itself.
"""

from __future__ import annotations

import math
from decimal import Decimal, InvalidOperation

from repro.rdf.namespaces import XSD
from repro.rdf.terms import Literal, RDFTerm

_INTEGER_TYPES = frozenset(
    XSD.term(name).value for name in (
        "integer", "int", "long", "short", "byte",
        "nonNegativeInteger", "positiveInteger",
        "nonPositiveInteger", "negativeInteger",
        "unsignedLong", "unsignedInt", "unsignedShort", "unsignedByte",
    ))
_DECIMAL_TYPE = XSD.term("decimal").value
_FLOAT_TYPES = frozenset((XSD.term("float").value, XSD.term("double").value))
_BOOLEAN_TYPE = XSD.term("boolean").value
_STRING_TYPE = XSD.term("string").value


def canonical_term(term: RDFTerm) -> RDFTerm:
    """The canonical form of ``term``.

    URIs and blank nodes are already canonical.  Plain literals are
    canonical.  Typed literals are normalised per datatype; literals whose
    lexical form is not valid for their datatype are left unchanged (the
    store accepts them as opaque text, matching Oracle's permissive
    behaviour).
    """
    if not isinstance(term, Literal) or term.datatype is None:
        return term
    canonical = canonical_lexical(term.lexical_form, term.datatype.value)
    if canonical == term.lexical_form:
        return term
    return Literal(canonical, datatype=term.datatype)


def canonical_lexical(lexical: str, datatype: str) -> str:
    """The canonical lexical form of ``lexical`` under ``datatype``."""
    if datatype in _INTEGER_TYPES:
        return _canonical_integer(lexical)
    if datatype == _DECIMAL_TYPE:
        return _canonical_decimal(lexical)
    if datatype in _FLOAT_TYPES:
        return _canonical_float(lexical)
    if datatype == _BOOLEAN_TYPE:
        return _canonical_boolean(lexical)
    if datatype == _STRING_TYPE:
        return lexical
    return lexical


def _canonical_integer(lexical: str) -> str:
    text = lexical.strip()
    try:
        value = int(text, 10)
    except ValueError:
        return lexical
    return str(value)


def _canonical_decimal(lexical: str) -> str:
    text = lexical.strip()
    try:
        value = Decimal(text)
    except InvalidOperation:
        return lexical
    if value == value.to_integral_value():
        return str(value.to_integral_value())
    return str(value.normalize())


def _canonical_float(lexical: str) -> str:
    text = lexical.strip()
    try:
        value = float(text)
    except ValueError:
        return lexical
    if math.isnan(value):
        return "NaN"
    if math.isinf(value):
        return "INF" if value > 0 else "-INF"
    return repr(value)


def _canonical_boolean(lexical: str) -> str:
    text = lexical.strip()
    if text in ("true", "1"):
        return "true"
    if text in ("false", "0"):
        return "false"
    return lexical

"""RDF term model: URIs, blank nodes, and literals.

The term model follows the RDF Concepts and Abstract Syntax recommendation
as the paper summarises it in its section 2:

* a **URI** is a general identifier (``http://...``, ``urn:lsid:...``);
* a **blank node** is an anonymous node written ``_:name``;
* a **plain literal** is a string with an optional language tag;
* a **typed literal** is a string paired with a datatype URI;
* a **long literal** is any literal whose lexical form exceeds
  :data:`LONG_LITERAL_THRESHOLD` characters (4000 in the paper, stored in
  the ``LONG_VALUE`` column of ``rdf_value$`` instead of ``VALUE_NAME``).

Every term knows its storage :class:`ValueType` code, matching the
``VALUE_TYPE`` column of the paper's ``rdf_value$`` table: ``UR`` (URI),
``BN`` (blank node), ``PL`` (plain literal), ``PL@`` (plain literal with a
language tag), ``TL`` (typed literal), ``PLL`` (plain long-literal), and
``TLL`` (typed long-literal).

Terms are immutable, hashable value objects; two terms compare equal when
their RDF abstract-syntax components are equal.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from enum import Enum
from typing import Union

from repro.errors import TermError

#: Lexical forms longer than this are "long literals" (paper section 2:
#: "long-literals are text values that exceed 4000 characters").
LONG_LITERAL_THRESHOLD = 4000

# Blank-node labels: letters/digits/._- with no trailing dot (a final
# dot would be ambiguous with the N-Triples statement terminator).
_BLANK_NODE_RE = re.compile(
    r"_:[A-Za-z](?:[A-Za-z0-9._-]*[A-Za-z0-9_-])?$")
_LANGUAGE_TAG_RE = re.compile(r"[A-Za-z]{1,8}(-[A-Za-z0-9]{1,8})*$")
# A pragmatic absolute-URI check: a scheme followed by a non-empty body with
# no whitespace or angle brackets.  RDF URIs in the wild (LSIDs,
# namespace-prefixed forms used in examples) all pass this.
_URI_RE = re.compile(r"[A-Za-z][A-Za-z0-9+.-]*:\S+$")
# Oracle XML DB DBUris (/ORADB/MDSYS/RDF_LINK$/ROW[LINK_ID=n]) are
# scheme-less path URIs; the reification scheme uses them as resources,
# so the term model must accept them (see repro.db.dburi).
_DBURI_PREFIX = "/ORADB/"

#: Well-known vocabulary prefixes, expanded at parse time so that the
#: convenient ``rdf:type`` spelling and the full URI denote the same
#: stored value.  (:mod:`repro.rdf.namespaces` builds its Namespace
#: objects from this table — single source of truth.)
WELL_KNOWN_PREFIXES: dict[str, str] = {
    "rdf": "http://www.w3.org/1999/02/22-rdf-syntax-ns#",
    "rdfs": "http://www.w3.org/2000/01/rdf-schema#",
    "xsd": "http://www.w3.org/2001/XMLSchema#",
    "owl": "http://www.w3.org/2002/07/owl#",
    "dc": "http://purl.org/dc/elements/1.1/",
}


def expand_well_known(text: str) -> str:
    """Expand a well-known prefixed name (``rdf:type``) to its full URI.

    Unknown prefixes and non-prefixed text pass through unchanged.
    """
    prefix, sep, local = text.partition(":")
    if sep and prefix in WELL_KNOWN_PREFIXES:
        return WELL_KNOWN_PREFIXES[prefix] + local
    return text
# Prefixed names such as ``gov:terrorSuspect`` used throughout the paper's
# examples before alias expansion.
_PREFIXED_NAME_RE = re.compile(r"[A-Za-z][A-Za-z0-9_.-]*:[^\s<>]*$")


class ValueType(str, Enum):
    """``VALUE_TYPE`` codes for ``rdf_value$`` rows (paper section 4)."""

    URI = "UR"
    BLANK_NODE = "BN"
    PLAIN_LITERAL = "PL"
    PLAIN_LITERAL_LANG = "PL@"
    TYPED_LITERAL = "TL"
    PLAIN_LONG_LITERAL = "PLL"
    TYPED_LONG_LITERAL = "TLL"

    @property
    def is_literal(self) -> bool:
        """True for the five literal codes."""
        return self not in (ValueType.URI, ValueType.BLANK_NODE)

    @property
    def is_long(self) -> bool:
        """True for the long-literal codes (stored in LONG_VALUE)."""
        return self in (ValueType.PLAIN_LONG_LITERAL,
                        ValueType.TYPED_LONG_LITERAL)


@dataclass(frozen=True, slots=True)
class URI:
    """A URI reference, e.g. ``http://www.us.gov#terrorSuspect``.

    Accepts both full URIs and prefixed names (``gov:terrorSuspect``); the
    paper's examples use prefixed names throughout and notes that complete
    namespaces should be used in real data.  Alias expansion is performed
    by :class:`repro.rdf.namespaces.AliasSet`.
    """

    value: str

    def __post_init__(self) -> None:
        if not self.value:
            raise TermError("URI must be a non-empty string")
        if self.value.startswith("_:"):
            raise TermError(
                f"{self.value!r} is a blank-node label, not a URI")
        if not (_URI_RE.match(self.value)
                or _PREFIXED_NAME_RE.match(self.value)
                or self.value.startswith(_DBURI_PREFIX)):
            raise TermError(f"{self.value!r} is not a valid URI or "
                            "prefixed name")

    @property
    def value_type(self) -> ValueType:
        return ValueType.URI

    @property
    def is_literal(self) -> bool:
        return False

    @property
    def lexical(self) -> str:
        """The lexical form stored in ``rdf_value$.VALUE_NAME``."""
        return self.value

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True, slots=True)
class BlankNode:
    """A blank node, written ``_:label``.

    Used when a subject or object node is unknown, and for n-ary
    relationships such as RDF containers (paper section 2).
    """

    label: str

    def __post_init__(self) -> None:
        if not self.label:
            raise TermError("blank node label must be non-empty")
        full = self.label if self.label.startswith("_:") else f"_:{self.label}"
        if not _BLANK_NODE_RE.match(full):
            raise TermError(f"{self.label!r} is not a valid blank-node label")
        # Normalise: keep the bare label without the "_:" prefix.
        if self.label.startswith("_:"):
            object.__setattr__(self, "label", self.label[2:])

    @property
    def value_type(self) -> ValueType:
        return ValueType.BLANK_NODE

    @property
    def is_literal(self) -> bool:
        return False

    @property
    def lexical(self) -> str:
        """The lexical form stored in ``rdf_value$.VALUE_NAME``."""
        return f"_:{self.label}"

    def __str__(self) -> str:
        return self.lexical


@dataclass(frozen=True, slots=True)
class Literal:
    """An RDF literal: a string with an optional language tag or datatype.

    Exactly one of ``language`` and ``datatype`` may be set; a literal with
    a datatype is a *typed literal* and its datatype is always a URI
    (paper section 2).  Lexical forms longer than
    :data:`LONG_LITERAL_THRESHOLD` make the literal a *long literal*,
    reflected in :attr:`value_type`.
    """

    lexical_form: str
    language: str | None = field(default=None)
    datatype: URI | None = field(default=None)

    def __post_init__(self) -> None:
        if not isinstance(self.lexical_form, str):
            raise TermError("literal lexical form must be a string")
        if self.language is not None and self.datatype is not None:
            raise TermError(
                "a literal cannot carry both a language tag and a datatype")
        if self.language is not None:
            if not _LANGUAGE_TAG_RE.match(self.language):
                raise TermError(
                    f"{self.language!r} is not a valid language tag")
            # Language tags are case-insensitive; normalise to lower case.
            object.__setattr__(self, "language", self.language.lower())
        if self.datatype is not None and not isinstance(self.datatype, URI):
            raise TermError("literal datatype must be a URI")

    @property
    def is_long(self) -> bool:
        """True when the lexical form exceeds the 4000-character limit."""
        return len(self.lexical_form) > LONG_LITERAL_THRESHOLD

    @property
    def value_type(self) -> ValueType:
        if self.datatype is not None:
            return (ValueType.TYPED_LONG_LITERAL if self.is_long
                    else ValueType.TYPED_LITERAL)
        if self.is_long:
            return ValueType.PLAIN_LONG_LITERAL
        if self.language is not None:
            return ValueType.PLAIN_LITERAL_LANG
        return ValueType.PLAIN_LITERAL

    @property
    def is_literal(self) -> bool:
        return True

    @property
    def lexical(self) -> str:
        """The lexical form stored in VALUE_NAME / LONG_VALUE."""
        return self.lexical_form

    def __str__(self) -> str:
        if self.datatype is not None:
            return f'"{self.lexical_form}"^^<{self.datatype.value}>'
        if self.language is not None:
            return f'"{self.lexical_form}"@{self.language}'
        return f'"{self.lexical_form}"'


#: Any RDF term.
RDFTerm = Union[URI, BlankNode, Literal]


def term_from_lexical(lexical: str,
                      value_type: ValueType,
                      literal_type: str | None = None,
                      language_type: str | None = None) -> RDFTerm:
    """Rebuild a term from the columns of an ``rdf_value$`` row.

    This is the inverse of the decomposition done at insert time: the store
    keeps (VALUE_NAME/LONG_VALUE, VALUE_TYPE, LITERAL_TYPE, LANGUAGE_TYPE)
    and this function reassembles the term object.

    :param lexical: the text value (VALUE_NAME, or LONG_VALUE for long
        literals).
    :param value_type: the VALUE_TYPE code.
    :param literal_type: the datatype URI for typed literals.
    :param language_type: the language tag for tagged plain literals.
    """
    if value_type is ValueType.URI:
        return URI(lexical)
    if value_type is ValueType.BLANK_NODE:
        return BlankNode(lexical)
    if value_type in (ValueType.TYPED_LITERAL, ValueType.TYPED_LONG_LITERAL):
        if not literal_type:
            raise TermError(
                f"typed literal {lexical!r} requires a LITERAL_TYPE")
        return Literal(lexical, datatype=URI(literal_type))
    if value_type is ValueType.PLAIN_LITERAL_LANG:
        if not language_type:
            raise TermError(
                f"PL@ literal {lexical!r} requires a LANGUAGE_TYPE")
        return Literal(lexical, language=language_type)
    # PL or PLL; a PLL may still carry a language tag per the paper
    # ("plain long-literal, with a language specified").
    if language_type:
        return Literal(lexical, language=language_type)
    return Literal(lexical)


def parse_term_text(text: str) -> RDFTerm:
    """Parse a user-supplied term string into an :class:`RDFTerm`.

    This implements the conventions of the paper's SQL examples, where
    triples are supplied as plain strings to the ``SDO_RDF_TRIPLE_S``
    constructor:

    * ``_:name`` — blank node;
    * ``"text"^^<datatype>`` or ``"text"^^datatype`` — typed literal;
    * ``"text"@lang`` — plain literal with language tag;
    * ``"text"`` — plain literal;
    * ``<uri>`` or a bare URI / prefixed name — URI;
    * anything else — plain literal (a bare word like ``bombing`` in the
      paper's DHS example is a literal object).
    """
    if not text:
        raise TermError("empty term")
    if text.startswith("_:"):
        return BlankNode(text)
    if text.startswith("<") and text.endswith(">") and len(text) > 2:
        return URI(text[1:-1])
    if text.startswith('"'):
        return _parse_quoted_literal(text)
    if (_URI_RE.match(text) or _PREFIXED_NAME_RE.match(text)
            or text.startswith(_DBURI_PREFIX)):
        return URI(expand_well_known(text))
    return Literal(text)


def _parse_quoted_literal(text: str) -> Literal:
    """Parse a double-quoted literal with optional ``@lang`` / ``^^type``."""
    closing = _find_closing_quote(text)
    body = _unescape(text[1:closing])
    suffix = text[closing + 1:]
    if not suffix:
        return Literal(body)
    if suffix.startswith("@"):
        return Literal(body, language=suffix[1:])
    if suffix.startswith("^^"):
        datatype = suffix[2:]
        if datatype.startswith("<") and datatype.endswith(">"):
            datatype = datatype[1:-1]
        return Literal(body, datatype=URI(expand_well_known(datatype)))
    raise TermError(f"malformed literal suffix in {text!r}")


def _find_closing_quote(text: str) -> int:
    """Index of the unescaped closing quote of a literal starting at 0."""
    i = 1
    while i < len(text):
        if text[i] == "\\":
            i += 2
            continue
        if text[i] == '"':
            return i
        i += 1
    raise TermError(f"unterminated literal {text!r}")


def _unescape(text: str) -> str:
    """Resolve N-Triples style backslash escapes in a literal body."""
    if "\\" not in text:
        return text
    out: list[str] = []
    i = 0
    escapes = {"n": "\n", "r": "\r", "t": "\t", '"': '"', "\\": "\\"}
    while i < len(text):
        ch = text[i]
        if ch != "\\":
            out.append(ch)
            i += 1
            continue
        if i + 1 >= len(text):
            raise TermError(f"dangling escape in {text!r}")
        nxt = text[i + 1]
        if nxt in escapes:
            out.append(escapes[nxt])
            i += 2
        elif nxt == "u":
            out.append(chr(int(text[i + 2:i + 6], 16)))
            i += 6
        elif nxt == "U":
            out.append(chr(int(text[i + 2:i + 10], 16)))
            i += 10
        else:
            raise TermError(f"unknown escape \\{nxt} in {text!r}")
    return "".join(out)

"""A practical Turtle subset: parser and serializer.

N-Triples (:mod:`repro.rdf.ntriples`) is the loader's exchange format;
Turtle is the human-facing one — the syntax RDF examples, ontologies,
and rule fixtures are usually written in.  The supported subset covers
what real documents use:

* ``@prefix`` / ``PREFIX`` directives and prefixed names;
* the ``a`` keyword for ``rdf:type``;
* predicate lists (``;``) and object lists (``,``);
* anonymous blank nodes ``[ p o ; ... ]`` (as subject or object) and
  labelled ``_:name`` nodes;
* literals: quoted strings (with ``\\`` escapes and triple-quoted
  ``\"\"\"...\"\"\"`` long strings), ``@lang`` tags, ``^^`` datatypes,
  and the numeric/boolean shorthands (``42`` → ``xsd:integer``,
  ``4.2`` → ``xsd:decimal``, ``true``/``false`` → ``xsd:boolean``);
* comments (``#`` to end of line).

Not supported (rejected with a clear error): ``@base``/relative IRIs
and RDF collections ``( ... )``.
"""

from __future__ import annotations

import itertools
import re
from typing import Iterator

from repro.errors import ParseError, TermError
from repro.rdf.namespaces import RDF, XSD, AliasSet
from repro.rdf.ntriples import term_to_ntriples
from repro.rdf.terms import (
    BlankNode,
    Literal,
    RDFTerm,
    URI,
    _unescape,
    expand_well_known,
)
from repro.rdf.triple import Triple

_anon_counter = itertools.count(1)

_TOKEN_RE = re.compile(r"""
    (?P<longstring>\"\"\"(?:[^"\\]|\\.|"(?!""))*\"\"\")
  | (?P<string>"(?:[^"\\\n]|\\.)*")
  | (?P<iri><[^<>\s]*>)
  | (?P<comment>\#[^\n]*)
  | (?P<at>@[A-Za-z][A-Za-z0-9-]*)
  | (?P<caret>\^\^)
  | (?P<punct>[;,.\[\]()])
  | (?P<blank>_:[A-Za-z][A-Za-z0-9._-]*)
  | (?P<number>[+-]?(?:\d+\.\d+|\.\d+|\d+)(?:[eE][+-]?\d+)?)
  | (?P<pname>[A-Za-z][A-Za-z0-9_.-]*)?:(?P<local>[A-Za-z0-9_.%-]*)
  | (?P<word>[A-Za-z][A-Za-z0-9_-]*)
  | (?P<ws>\s+)
""", re.VERBOSE)


class _Token:
    __slots__ = ("kind", "text", "line")

    def __init__(self, kind: str, text: str, line: int) -> None:
        self.kind = kind
        self.text = text
        self.line = line

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"_Token({self.kind}, {self.text!r}, line={self.line})"


def _tokenize(document: str) -> list[_Token]:
    tokens: list[_Token] = []
    position = 0
    line = 1
    while position < len(document):
        match = _TOKEN_RE.match(document, position)
        if match is None or match.end() == position:
            snippet = document[position:position + 20]
            raise ParseError(f"unexpected input {snippet!r}", line=line)
        kind = match.lastgroup or ""
        text = match.group(0)
        if kind == "local":
            kind = "pname"
        if kind not in ("ws", "comment"):
            tokens.append(_Token(kind, text, line))
        line += text.count("\n")
        position = match.end()
    return tokens


class TurtleParser:
    """Recursive-descent parser over the token stream."""

    def __init__(self, document: str) -> None:
        self._tokens = _tokenize(document)
        self._position = 0
        self._prefixes: dict[str, str] = {}
        self._triples: list[Triple] = []

    # -- token plumbing -------------------------------------------------

    def _peek(self) -> _Token | None:
        if self._position >= len(self._tokens):
            return None
        return self._tokens[self._position]

    def _next(self) -> _Token:
        token = self._peek()
        if token is None:
            last_line = self._tokens[-1].line if self._tokens else 1
            raise ParseError("unexpected end of document",
                             line=last_line)
        self._position += 1
        return token

    def _expect_punct(self, text: str) -> None:
        token = self._next()
        if token.kind != "punct" or token.text != text:
            raise ParseError(
                f"expected {text!r}, got {token.text!r}",
                line=token.line)

    # -- grammar ---------------------------------------------------------

    def parse(self) -> list[Triple]:
        while self._peek() is not None:
            token = self._peek()
            assert token is not None
            if token.kind == "at" or (token.kind == "word"
                                      and token.text.upper() == "PREFIX"):
                self._parse_directive()
            else:
                self._parse_statement()
        return self._triples

    def _parse_directive(self) -> None:
        keyword = self._next()
        name = keyword.text.lstrip("@").lower()
        if name != "prefix":
            raise ParseError(
                f"unsupported directive {keyword.text!r} (only @prefix "
                "is supported; @base/relative IRIs are not)",
                line=keyword.line)
        prefix_token = self._next()
        if prefix_token.kind != "pname" or not \
                prefix_token.text.endswith(":"):
            raise ParseError(
                f"expected 'prefix:' after @prefix, got "
                f"{prefix_token.text!r}", line=prefix_token.line)
        iri_token = self._next()
        if iri_token.kind != "iri":
            raise ParseError("expected <iri> in @prefix",
                             line=iri_token.line)
        self._prefixes[prefix_token.text[:-1]] = iri_token.text[1:-1]
        if keyword.kind == "at":  # Turtle @prefix ends with '.'
            self._expect_punct(".")

    def _parse_statement(self) -> None:
        subject = self._parse_subject()
        self._parse_predicate_object_list(subject)
        self._expect_punct(".")

    def _parse_subject(self) -> RDFTerm:
        token = self._peek()
        assert token is not None
        if token.kind == "punct" and token.text == "[":
            return self._parse_blank_node_properties()
        term = self._parse_term()
        if isinstance(term, Literal):
            raise ParseError("literal subject", line=token.line)
        return term

    def _parse_predicate_object_list(self, subject: RDFTerm) -> None:
        while True:
            predicate = self._parse_predicate()
            self._parse_object_list(subject, predicate)
            token = self._peek()
            if token is not None and token.kind == "punct" \
                    and token.text == ";":
                self._next()
                # A trailing ';' before '.' or ']' is legal Turtle.
                nxt = self._peek()
                if nxt is not None and nxt.kind == "punct" \
                        and nxt.text in ".]":
                    return
                continue
            return

    def _parse_predicate(self) -> URI:
        token = self._peek()
        assert token is not None
        if token.kind == "word" and token.text == "a":
            self._next()
            return RDF.type
        term = self._parse_term()
        if not isinstance(term, URI):
            raise ParseError(f"predicate must be an IRI, got {term}",
                             line=token.line)
        return term

    def _parse_object_list(self, subject: RDFTerm,
                           predicate: URI) -> None:
        while True:
            obj = self._parse_object()
            self._triples.append(Triple(subject, predicate, obj))
            token = self._peek()
            if token is not None and token.kind == "punct" \
                    and token.text == ",":
                self._next()
                continue
            return

    def _parse_object(self) -> RDFTerm:
        token = self._peek()
        assert token is not None
        if token.kind == "punct" and token.text == "[":
            return self._parse_blank_node_properties()
        if token.kind == "punct" and token.text == "(":
            raise ParseError("RDF collections '(...)' are not supported",
                             line=token.line)
        return self._parse_term()

    def _parse_blank_node_properties(self) -> BlankNode:
        open_token = self._next()  # '['
        node = BlankNode(f"anon{next(_anon_counter):06d}")
        token = self._peek()
        if token is not None and token.kind == "punct" \
                and token.text == "]":
            self._next()
            return node
        self._parse_predicate_object_list(node)
        closing = self._next()
        if closing.kind != "punct" or closing.text != "]":
            raise ParseError("expected ']' closing blank node",
                             line=open_token.line)
        return node

    # -- terms -------------------------------------------------------------

    def _parse_term(self) -> RDFTerm:
        token = self._next()
        if token.kind == "iri":
            try:
                return URI(_unescape(token.text[1:-1]))
            except TermError as exc:
                raise ParseError(str(exc), line=token.line) from exc
        if token.kind == "blank":
            return BlankNode(token.text)
        if token.kind == "pname":
            return self._resolve_pname(token)
        if token.kind in ("string", "longstring"):
            return self._parse_literal(token)
        if token.kind == "number":
            return self._numeric_literal(token.text)
        if token.kind == "word" and token.text in ("true", "false"):
            return Literal(token.text, datatype=XSD.boolean)
        raise ParseError(f"unexpected token {token.text!r}",
                         line=token.line)

    def _resolve_pname(self, token: _Token) -> URI:
        prefix, _colon, local = token.text.partition(":")
        if prefix in self._prefixes:
            return URI(self._prefixes[prefix] + local)
        expanded = expand_well_known(token.text)
        if expanded != token.text:
            return URI(expanded)
        raise ParseError(f"undeclared prefix {prefix!r}:",
                         line=token.line)

    def _parse_literal(self, token: _Token) -> Literal:
        if token.kind == "longstring":
            body = _unescape(token.text[3:-3])
        else:
            body = _unescape(token.text[1:-1])
        nxt = self._peek()
        if nxt is not None and nxt.kind == "at":
            self._next()
            return Literal(body, language=nxt.text[1:])
        if nxt is not None and nxt.kind == "caret":
            self._next()
            datatype = self._parse_term()
            if not isinstance(datatype, URI):
                raise ParseError("datatype must be an IRI",
                                 line=token.line)
            return Literal(body, datatype=datatype)
        return Literal(body)

    @staticmethod
    def _numeric_literal(text: str) -> Literal:
        if re.fullmatch(r"[+-]?\d+", text):
            return Literal(text, datatype=XSD.integer)
        if "e" in text.lower():
            return Literal(text, datatype=XSD.double)
        return Literal(text, datatype=XSD.decimal)


def parse_turtle(document: str) -> list[Triple]:
    """Parse a Turtle document into triples."""
    return TurtleParser(document).parse()


def iter_turtle(document: str) -> Iterator[Triple]:
    """Iterator form of :func:`parse_turtle`."""
    return iter(parse_turtle(document))


# ----------------------------------------------------------------------
# serialization
# ----------------------------------------------------------------------

def serialize_turtle(triples, aliases: AliasSet | None = None) -> str:
    """Serialize triples as Turtle, grouped by subject.

    Prefixes from ``aliases`` (plus the built-ins actually used) are
    declared up front; predicates and objects reuse them.  Output is
    deterministic: subjects, predicates, and objects are sorted.
    """
    aliases = aliases or AliasSet()
    by_subject: dict[RDFTerm, dict[URI, list[RDFTerm]]] = {}
    for triple in triples:
        by_subject.setdefault(triple.subject, {}) \
            .setdefault(triple.predicate, []).append(triple.object)

    used_prefixes: dict[str, str] = {}
    local_re = re.compile(r"[A-Za-z][A-Za-z0-9_.%-]*$")

    def spell(term: RDFTerm) -> str:
        if isinstance(term, URI):
            compact = aliases.compact(term.value)
            if compact != term.value and ":" in compact:
                prefix, _colon, local = compact.partition(":")
                namespace = aliases.namespace_for(prefix)
                # Only compact when the local part is legal pname
                # syntax; otherwise the output would not re-parse.
                if namespace and local_re.match(local):
                    used_prefixes[prefix] = namespace
                    return compact
            return f"<{term.value}>"
        return term_to_ntriples(term)

    lines: list[str] = []
    for subject in sorted(by_subject, key=lambda t: t.lexical):
        predicates = by_subject[subject]
        entry_lines: list[str] = []
        for predicate in sorted(predicates, key=lambda t: t.value):
            spelled_predicate = ("a" if predicate == RDF.type
                                 else spell(predicate))
            objects = ", ".join(
                spell(obj) for obj in sorted(
                    predicates[predicate], key=lambda t: t.lexical))
            entry_lines.append(f"    {spelled_predicate} {objects}")
        body = " ;\n".join(entry_lines)
        lines.append(f"{spell(subject)}\n{body} .")

    header = [f"@prefix {prefix}: <{namespace}> ."
              for prefix, namespace in sorted(used_prefixes.items())]
    sections = []
    if header:
        sections.append("\n".join(header))
    sections.extend(lines)
    return "\n\n".join(sections) + ("\n" if sections else "")

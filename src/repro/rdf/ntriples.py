"""N-Triples parsing and serialization.

N-Triples is the line-oriented exchange syntax the loaders use: one triple
per line, terms in angle brackets / ``_:`` / quoted form, terminated by a
full stop.  The reification-quad loader (:mod:`repro.reification.quads`)
reads quads from N-Triples files, and the workload generators emit it.
"""

from __future__ import annotations

import io
from typing import IO, Iterable, Iterator

from repro.errors import ParseError, TermError
from repro.rdf.terms import (
    BlankNode,
    Literal,
    RDFTerm,
    URI,
    _unescape,
)
from repro.rdf.triple import Triple


def parse_ntriples(source: str | IO[str]) -> Iterator[Triple]:
    """Parse an N-Triples document (string or text stream) lazily.

    Blank lines and ``#`` comment lines are skipped.  Raises
    :class:`repro.errors.ParseError` with a line number on bad input.
    """
    stream = io.StringIO(source) if isinstance(source, str) else source
    for line_number, raw_line in enumerate(stream, start=1):
        line = raw_line.strip()
        if not line or line.startswith("#"):
            continue
        try:
            yield parse_ntriples_line(line)
        except (ParseError, TermError) as exc:
            raise ParseError(str(exc), line=line_number) from exc


def parse_ntriples_line(line: str) -> Triple:
    """Parse one N-Triples statement line into a :class:`Triple`."""
    scanner = _Scanner(line)
    try:
        subject = scanner.read_term()
        predicate = scanner.read_term()
        obj = scanner.read_term()
    except TermError as exc:
        raise ParseError(f"{exc} in {line!r}") from exc
    scanner.expect_terminator()
    if isinstance(subject, Literal):
        raise ParseError(f"literal subject in {line!r}")
    if not isinstance(predicate, URI):
        raise ParseError(f"non-URI predicate in {line!r}")
    return Triple(subject, predicate, obj)


class _Scanner:
    """A tiny cursor-based scanner over one N-Triples line."""

    def __init__(self, line: str) -> None:
        self.line = line
        self.pos = 0

    def _skip_whitespace(self) -> None:
        while self.pos < len(self.line) and self.line[self.pos] in " \t":
            self.pos += 1

    def read_term(self) -> RDFTerm:
        self._skip_whitespace()
        if self.pos >= len(self.line):
            raise ParseError(f"unexpected end of line in {self.line!r}",
                             column=self.pos)
        ch = self.line[self.pos]
        if ch == "<":
            return self._read_uri()
        if ch == "_":
            return self._read_blank_node()
        if ch == '"':
            return self._read_literal()
        raise ParseError(
            f"unexpected character {ch!r} at column {self.pos} "
            f"in {self.line!r}", column=self.pos)

    def _read_uri(self) -> URI:
        end = self.line.find(">", self.pos)
        if end == -1:
            raise ParseError(f"unterminated URI in {self.line!r}",
                             column=self.pos)
        value = self.line[self.pos + 1:end]
        self.pos = end + 1
        return URI(_unescape(value))

    def _read_blank_node(self) -> BlankNode:
        start = self.pos
        if not self.line.startswith("_:", start):
            raise ParseError(f"malformed blank node in {self.line!r}",
                             column=start)
        end = start + 2
        while end < len(self.line) and (self.line[end].isalnum()
                                        or self.line[end] in "._-"):
            end += 1
        # A trailing dot is the statement terminator, not label text.
        while end > start + 2 and self.line[end - 1] == ".":
            end -= 1
        label = self.line[start:end]
        self.pos = end
        return BlankNode(label)

    def _read_literal(self) -> Literal:
        end = self.pos + 1
        while end < len(self.line):
            if self.line[end] == "\\":
                end += 2
                continue
            if self.line[end] == '"':
                break
            end += 1
        else:
            raise ParseError(f"unterminated literal in {self.line!r}",
                             column=self.pos)
        body = _unescape(self.line[self.pos + 1:end])
        self.pos = end + 1
        if self.line.startswith("@", self.pos):
            tag_end = self.pos + 1
            while (tag_end < len(self.line)
                   and self.line[tag_end] not in " \t."):
                tag_end += 1
            language = self.line[self.pos + 1:tag_end]
            self.pos = tag_end
            return Literal(body, language=language)
        if self.line.startswith("^^<", self.pos):
            dt_end = self.line.find(">", self.pos + 3)
            if dt_end == -1:
                raise ParseError(
                    f"unterminated datatype URI in {self.line!r}",
                    column=self.pos)
            datatype = URI(self.line[self.pos + 3:dt_end])
            self.pos = dt_end + 1
            return Literal(body, datatype=datatype)
        return Literal(body)

    def expect_terminator(self) -> None:
        self._skip_whitespace()
        if self.pos >= len(self.line) or self.line[self.pos] != ".":
            raise ParseError(f"missing '.' terminator in {self.line!r}",
                             column=self.pos)
        trailing = self.line[self.pos + 1:].strip()
        if trailing and not trailing.startswith("#"):
            raise ParseError(
                f"trailing content {trailing!r} in {self.line!r}",
                column=self.pos + 1)


def term_to_ntriples(term: RDFTerm) -> str:
    """The N-Triples spelling of one term."""
    if isinstance(term, URI):
        return f"<{term.value}>"
    if isinstance(term, BlankNode):
        return term.lexical
    assert isinstance(term, Literal)
    body = _escape(term.lexical_form)
    if term.datatype is not None:
        return f'"{body}"^^<{term.datatype.value}>'
    if term.language is not None:
        return f'"{body}"@{term.language}'
    return f'"{body}"'


def serialize_ntriples(triples: Iterable[Triple],
                       out: IO[str] | None = None) -> str | None:
    """Serialize triples to N-Triples.

    With ``out`` given, writes to the stream and returns None; otherwise
    returns the document as a string.
    """
    buffer = out if out is not None else io.StringIO()
    for triple in triples:
        buffer.write(
            f"{term_to_ntriples(triple.subject)} "
            f"{term_to_ntriples(triple.predicate)} "
            f"{term_to_ntriples(triple.object)} .\n")
    if out is not None:
        return None
    assert isinstance(buffer, io.StringIO)
    return buffer.getvalue()


def _escape(text: str) -> str:
    """Apply the N-Triples backslash escapes to a literal body."""
    return (text.replace("\\", "\\\\")
                .replace('"', '\\"')
                .replace("\n", "\\n")
                .replace("\r", "\\r")
                .replace("\t", "\\t"))

"""RDF containers: Bag, Seq, and Alt.

To describe groups of things, RDF uses a *container* resource: a blank
node typed ``rdf:Bag`` / ``rdf:Seq`` / ``rdf:Alt`` whose members hang off
membership properties ``rdf:_1``, ``rdf:_2``, ... (paper section 2).  The
store recognises membership predicates and tags their links with
``LINK_TYPE='RDF_MEMBER'`` (see :mod:`repro.core.links`).
"""

from __future__ import annotations

import itertools
import re
from typing import Iterable, Iterator, Sequence

from repro.errors import TermError
from repro.rdf.namespaces import RDF
from repro.rdf.terms import BlankNode, RDFTerm, URI
from repro.rdf.triple import Triple

_MEMBER_RE = re.compile(
    re.escape(RDF.base) + r"_([1-9][0-9]*)$")

_container_counter = itertools.count(1)


def is_membership_property(predicate: URI) -> bool:
    """True for the container membership properties ``rdf:_n``."""
    return _MEMBER_RE.match(predicate.value) is not None


def membership_index(predicate: URI) -> int:
    """The ordinal ``n`` of a membership property ``rdf:_n``."""
    match = _MEMBER_RE.match(predicate.value)
    if match is None:
        raise TermError(f"{predicate} is not a membership property")
    return int(match.group(1))


def membership_property(index: int) -> URI:
    """The membership property ``rdf:_index``."""
    if index < 1:
        raise TermError("membership index starts at 1")
    return RDF.term(f"_{index}")


class Container:
    """Base class for the three container kinds.

    A container owns a node (a fresh blank node by default) and an ordered
    member list; :meth:`triples` yields the RDF statements that represent
    it: one ``rdf:type`` triple and one ``rdf:_n`` triple per member.
    """

    #: The rdf: type URI of the concrete container kind.
    TYPE: URI

    def __init__(self, members: Iterable[RDFTerm] = (),
                 node: RDFTerm | None = None) -> None:
        if node is None:
            node = BlankNode(f"container{next(_container_counter):06d}")
        if not isinstance(node, (URI, BlankNode)):
            raise TermError("container node must be a URI or blank node")
        self._node = node
        self._members: list[RDFTerm] = list(members)

    @property
    def node(self) -> RDFTerm:
        """The resource that stands for this container."""
        return self._node

    @property
    def members(self) -> Sequence[RDFTerm]:
        return tuple(self._members)

    def append(self, member: RDFTerm) -> None:
        """Add ``member`` at the end of the container."""
        self._members.append(member)

    def triples(self) -> Iterator[Triple]:
        """The statements representing this container."""
        yield Triple(self._node, RDF.type, self.TYPE)
        for index, member in enumerate(self._members, start=1):
            yield Triple(self._node, membership_property(index), member)

    def __len__(self) -> int:
        return len(self._members)

    def __iter__(self) -> Iterator[RDFTerm]:
        return iter(self._members)

    def __repr__(self) -> str:
        return (f"{type(self).__name__}(node={self._node}, "
                f"members={len(self._members)})")


class Bag(Container):
    """An unordered container (duplicates allowed)."""

    TYPE = RDF.Bag


class Seq(Container):
    """An ordered container."""

    TYPE = RDF.Seq


class Alt(Container):
    """A container of alternatives; the first member is the default."""

    TYPE = RDF.Alt

    @property
    def default(self) -> RDFTerm:
        """The preferred alternative (``rdf:_1``)."""
        if not self._members:
            raise TermError("Alt container has no members")
        return self._members[0]


def container_from_triples(node: RDFTerm,
                           triples: Iterable[Triple]) -> Container:
    """Reconstruct a container rooted at ``node`` from its statements.

    Membership triples are ordered by their ``rdf:_n`` index; the
    container kind comes from the ``rdf:type`` triple (defaults to Bag
    when absent, which is how bare membership sets are interpreted).
    """
    kind: type[Container] = Bag
    indexed_members: list[tuple[int, RDFTerm]] = []
    for triple in triples:
        if triple.subject != node:
            continue
        if triple.predicate == RDF.type:
            for candidate in (Bag, Seq, Alt):
                if triple.object == candidate.TYPE:
                    kind = candidate
        elif is_membership_property(triple.predicate):
            indexed_members.append(
                (membership_index(triple.predicate), triple.object))
    indexed_members.sort(key=lambda pair: pair[0])
    return kind((member for _, member in indexed_members), node=node)

"""RDF graph isomorphism up to blank-node renaming.

Two RDF graphs are *equivalent* when some bijection between their
blank nodes makes them equal (RDF Concepts §6.3).  Serializers that
mint fresh blank-node labels (Turtle ``[...]``, RDF/XML anonymous
descriptions) preserve equivalence but not equality, so round-trip
tests need this check rather than set equality.

The algorithm is the standard two-phase approach: partition blank
nodes by a structural signature (their ground neighbourhood), then
backtrack over signature-compatible candidate pairings.  RDF documents
have few, shallowly-connected blank nodes, so the backtracking stays
tiny in practice; a safety cap guards degenerate inputs.
"""

from __future__ import annotations

from collections import defaultdict

from repro.errors import ReproError
from repro.rdf.graph import Graph
from repro.rdf.terms import BlankNode, RDFTerm
from repro.rdf.triple import Triple

#: Backtracking budget; beyond this the graphs are pathological
#: (e.g. hundreds of interchangeable blank nodes) and we refuse rather
#: than hang.
_MAX_STEPS = 200_000


def isomorphic(left: Graph | list[Triple],
               right: Graph | list[Triple]) -> bool:
    """True when the graphs are equal up to blank-node renaming."""
    left_graph = left if isinstance(left, Graph) else Graph(left)
    right_graph = right if isinstance(right, Graph) else Graph(right)
    if len(left_graph) != len(right_graph):
        return False
    left_ground, left_blank = _split(left_graph)
    right_ground, right_blank = _split(right_graph)
    if left_ground != right_ground:
        return False
    left_nodes = sorted(_blank_nodes(left_blank), key=str)
    right_nodes = sorted(_blank_nodes(right_blank), key=str)
    if len(left_nodes) != len(right_nodes):
        return False
    if not left_nodes:
        return True
    left_signatures = _signatures(left_blank)
    right_signatures = _signatures(right_blank)
    if sorted(left_signatures.values()) != \
            sorted(right_signatures.values()):
        return False
    matcher = _Matcher(left_blank, right_blank, left_signatures,
                       right_signatures)
    return matcher.search(left_nodes, {})


def _split(graph: Graph) -> tuple[set[Triple], set[Triple]]:
    """Partition into ground triples and triples touching blank nodes."""
    ground: set[Triple] = set()
    blank: set[Triple] = set()
    for triple in graph:
        if isinstance(triple.subject, BlankNode) or \
                isinstance(triple.object, BlankNode):
            blank.add(triple)
        else:
            ground.add(triple)
    return ground, blank


def _blank_nodes(triples: set[Triple]) -> set[BlankNode]:
    nodes: set[BlankNode] = set()
    for triple in triples:
        for term in (triple.subject, triple.object):
            if isinstance(term, BlankNode):
                nodes.add(term)
    return nodes


def _signatures(triples: set[Triple]) -> dict[BlankNode, tuple]:
    """A renaming-invariant structural signature per blank node."""
    buckets: dict[BlankNode, list[str]] = defaultdict(list)
    for triple in triples:
        subject_blank = isinstance(triple.subject, BlankNode)
        object_blank = isinstance(triple.object, BlankNode)
        if subject_blank:
            other = ("*" if object_blank else triple.object.lexical)
            buckets[triple.subject].append(
                f"out:{triple.predicate.value}:{other}")
        if object_blank:
            other = ("*" if subject_blank else triple.subject.lexical)
            buckets[triple.object].append(
                f"in:{triple.predicate.value}:{other}")
    return {node: tuple(sorted(entries))
            for node, entries in buckets.items()}


class _Matcher:
    def __init__(self, left: set[Triple], right: set[Triple],
                 left_signatures, right_signatures) -> None:
        self._left = left
        self._right = right
        self._left_signatures = left_signatures
        self._right_signatures = right_signatures
        self._steps = 0

    def search(self, remaining: list[BlankNode],
               mapping: dict[BlankNode, BlankNode]) -> bool:
        self._steps += 1
        if self._steps > _MAX_STEPS:
            raise ReproError(
                "isomorphism search budget exhausted; graphs have too "
                "many interchangeable blank nodes")
        if not remaining:
            return self._apply(mapping) == self._right
        node, *rest = remaining
        used = set(mapping.values())
        signature = self._left_signatures.get(node)
        for candidate in sorted(self._right_signatures, key=str):
            if candidate in used:
                continue
            if self._right_signatures[candidate] != signature:
                continue
            mapping[node] = candidate
            if self.search(rest, mapping):
                return True
            del mapping[node]
        return False

    def _apply(self, mapping: dict[BlankNode, BlankNode]) -> set[Triple]:
        def rename(term: RDFTerm) -> RDFTerm:
            if isinstance(term, BlankNode):
                return mapping[term]
            return term

        return {Triple(rename(t.subject), t.predicate,
                       rename(t.object)) for t in self._left}

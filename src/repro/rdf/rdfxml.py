"""An RDF/XML subset parser.

RDF/XML was *the* RDF exchange syntax of the paper's era — the UniProt
catalogue the experiments load is published in it, and reification
quads typically enter a system through RDF/XML's ``rdf:ID`` attribute
on property elements (each such statement is implicitly reified,
producing exactly the quad the paper's loader consumes).

Supported subset (stdlib ``xml.etree`` underneath):

* ``rdf:RDF`` roots and *typed node elements*
  (``<up:Protein rdf:about="...">`` ≙ an ``rdf:type`` statement);
* ``rdf:Description`` with ``rdf:about`` / ``rdf:ID`` / ``rdf:nodeID``
  (or none — a fresh blank node);
* property elements with ``rdf:resource`` / ``rdf:nodeID`` references,
  nested node elements, or text content;
* ``rdf:datatype`` and ``xml:lang`` on property elements (``xml:lang``
  also inherits from ancestors);
* *property attributes* (literal-valued attributes on node elements);
* ``rdf:li`` / container membership (expanded to ``rdf:_n``);
* **statement reification** via ``rdf:ID`` on property elements — the
  four reification-quad statements are emitted alongside the base
  triple, ready for :class:`repro.reification.quads.QuadConverter`;
* ``rdf:parseType="Resource"`` (inline blank node).

Not supported (rejected): ``rdf:parseType="Collection"``/``"Literal"``.
Relative URIs are resolved against ``xml:base`` when present, else kept
as written.
"""

from __future__ import annotations

import itertools
import xml.etree.ElementTree as ET
from typing import Iterator

from repro.errors import ParseError
from repro.rdf.namespaces import RDF
from repro.rdf.reification_vocab import expand_quad
from repro.rdf.terms import BlankNode, Literal, RDFTerm, URI
from repro.rdf.triple import Triple

RDF_NS = RDF.base
XML_NS = "http://www.w3.org/XML/1998/namespace"

_rdf = "{" + RDF_NS + "}"
_xml = "{" + XML_NS + "}"

#: RDF/XML syntax attributes that are not property attributes.
_SYNTAX_ATTRIBUTES = frozenset((
    f"{_rdf}about", f"{_rdf}ID", f"{_rdf}nodeID", f"{_rdf}resource",
    f"{_rdf}datatype", f"{_rdf}parseType", f"{_xml}lang",
    f"{_xml}base"))

_anon_counter = itertools.count(1)


def parse_rdfxml(document: str) -> list[Triple]:
    """Parse an RDF/XML document into triples (quads included for
    ``rdf:ID``-reified statements)."""
    return list(iter_rdfxml(document))


def iter_rdfxml(document: str) -> Iterator[Triple]:
    """Iterator form of :func:`parse_rdfxml`."""
    try:
        root = ET.fromstring(document)
    except ET.ParseError as exc:
        raise ParseError(f"malformed XML: {exc}") from exc
    parser = _RDFXMLParser()
    if root.tag == f"{_rdf}RDF":
        base = root.get(f"{_xml}base", "")
        lang = root.get(f"{_xml}lang")
        for child in root:
            yield from parser.parse_node_element(child, base, lang)[1]
    else:
        yield from parser.parse_node_element(root, "", None)[1]


class _RDFXMLParser:
    """Stateless helpers; recursion carries base/lang explicitly."""

    # -- node elements ---------------------------------------------------

    def parse_node_element(self, element: ET.Element, base: str,
                           lang: str | None
                           ) -> tuple[RDFTerm, list[Triple]]:
        """One node element -> (its subject term, emitted triples)."""
        base = element.get(f"{_xml}base", base)
        lang = element.get(f"{_xml}lang", lang)
        subject = self._subject_of(element, base)
        triples: list[Triple] = []
        if element.tag != f"{_rdf}Description":
            triples.append(Triple(subject, RDF.type,
                                  URI(_tag_to_uri(element.tag))))
        triples.extend(self._property_attributes(element, subject, lang))
        li_counter = itertools.count(1)
        for child in element:
            triples.extend(self._parse_property_element(
                subject, child, base, lang, li_counter))
        return subject, triples

    def _subject_of(self, element: ET.Element, base: str) -> RDFTerm:
        about = element.get(f"{_rdf}about")
        if about is not None:
            return URI(_resolve(about, base))
        fragment_id = element.get(f"{_rdf}ID")
        if fragment_id is not None:
            return URI(_resolve("#" + fragment_id, base))
        node_id = element.get(f"{_rdf}nodeID")
        if node_id is not None:
            return BlankNode(node_id)
        return BlankNode(f"xml{next(_anon_counter):06d}")

    def _property_attributes(self, element: ET.Element,
                             subject: RDFTerm,
                             lang: str | None) -> list[Triple]:
        """Literal-valued attributes on a node element."""
        triples = []
        for name, value in element.attrib.items():
            if name in _SYNTAX_ATTRIBUTES or name.startswith("{" + XML_NS):
                continue
            if name == f"{_rdf}type":
                triples.append(Triple(subject, RDF.type, URI(value)))
                continue
            triples.append(Triple(
                subject, URI(_tag_to_uri(name)),
                Literal(value, language=lang)))
        return triples

    # -- property elements -------------------------------------------------

    def _parse_property_element(self, subject: RDFTerm,
                                element: ET.Element, base: str,
                                lang: str | None,
                                li_counter) -> list[Triple]:
        base = element.get(f"{_xml}base", base)
        lang = element.get(f"{_xml}lang", lang)
        predicate = self._predicate_of(element, li_counter)
        parse_type = element.get(f"{_rdf}parseType")
        if parse_type is not None and parse_type != "Resource":
            raise ParseError(
                f"rdf:parseType={parse_type!r} is not supported")
        obj, nested = self._object_of(element, base, lang, parse_type)
        triples = [Triple(subject, predicate, obj)] + nested
        reify_id = element.get(f"{_rdf}ID")
        if reify_id is not None:
            # rdf:ID on a property element reifies the statement: the
            # classic source of reification quads.
            resource = URI(_resolve("#" + reify_id, base))
            triples.extend(expand_quad(resource, triples[0]))
        return triples

    @staticmethod
    def _predicate_of(element: ET.Element, li_counter) -> URI:
        if element.tag == f"{_rdf}li":
            return RDF.term(f"_{next(li_counter)}")
        return URI(_tag_to_uri(element.tag))

    def _object_of(self, element: ET.Element, base: str,
                   lang: str | None, parse_type: str | None
                   ) -> tuple[RDFTerm, list[Triple]]:
        resource = element.get(f"{_rdf}resource")
        if resource is not None:
            return URI(_resolve(resource, base)), []
        node_id = element.get(f"{_rdf}nodeID")
        if node_id is not None:
            return BlankNode(node_id), []
        if parse_type == "Resource":
            # Inline anonymous resource: the element's children are
            # property elements of a fresh blank node.
            node = BlankNode(f"xml{next(_anon_counter):06d}")
            nested: list[Triple] = []
            inner_counter = itertools.count(1)
            for child in element:
                nested.extend(self._parse_property_element(
                    node, child, base, lang, inner_counter))
            return node, nested
        children = list(element)
        if children:
            if len(children) != 1:
                raise ParseError(
                    f"property element {element.tag} has "
                    f"{len(children)} child node elements; expected 1")
            node, nested = self.parse_node_element(children[0], base,
                                                   lang)
            return node, nested
        text = element.text or ""
        datatype = element.get(f"{_rdf}datatype")
        if datatype is not None:
            return Literal(text, datatype=URI(datatype)), []
        return Literal(text, language=lang), []


# ----------------------------------------------------------------------
# serialization
# ----------------------------------------------------------------------

def serialize_rdfxml(triples) -> str:
    """Serialize triples as RDF/XML (``rdf:Description`` form).

    Deterministic output: subjects and predicates sorted; namespaces
    derived from the predicate URIs and declared on the root.  Blank
    nodes use ``rdf:nodeID`` so graphs round-trip exactly.
    """
    by_subject: dict[RDFTerm, list[Triple]] = {}
    for triple in triples:
        by_subject.setdefault(triple.subject, []).append(triple)

    namespaces: dict[str, str] = {RDF_NS: "rdf"}
    import re as _re

    local_name_re = _re.compile(r"[A-Za-z_][A-Za-z0-9._-]*$")

    def prefix_for(uri: str) -> tuple[str, str]:
        """Split a predicate URI into (namespace, local), registering
        a prefix for the namespace.

        RDF/XML spells predicates as XML element names, so the local
        part must be a legal XML name; a predicate URI that cannot be
        split that way (e.g. ``urn:123``) is not representable in
        RDF/XML at all and is rejected rather than silently mangled.
        """
        from repro.errors import ReproError

        for separator in ("#", "/", ":"):
            index = uri.rfind(separator)
            if index not in (-1, len(uri) - 1):
                namespace, local = uri[:index + 1], uri[index + 1:]
                if local_name_re.match(local):
                    break
        else:
            raise ReproError(
                f"predicate {uri!r} cannot be written as an RDF/XML "
                "element name; serialize as N-Triples or Turtle "
                "instead")
        if namespace not in namespaces:
            namespaces[namespace] = f"ns{len(namespaces)}"
        return namespace, local

    body_lines: list[str] = []
    for subject in sorted(by_subject, key=lambda t: t.lexical):
        if isinstance(subject, BlankNode):
            opening = (f'  <rdf:Description rdf:nodeID='
                       f'"{subject.label}">')
        else:
            opening = (f'  <rdf:Description rdf:about='
                       f'"{_xml_escape(subject.lexical)}">')
        body_lines.append(opening)
        for triple in sorted(by_subject[subject],
                             key=lambda t: (t.predicate.value,
                                            t.object.lexical)):
            namespace, local = prefix_for(triple.predicate.value)
            tag = f"{namespaces[namespace]}:{local}"
            body_lines.append(_property_xml(tag, triple.object))
        body_lines.append("  </rdf:Description>")

    declarations = " ".join(
        f'xmlns:{prefix}="{_xml_escape(namespace)}"'
        for namespace, prefix in sorted(namespaces.items(),
                                        key=lambda kv: kv[1]))
    return (f"<rdf:RDF {declarations}>\n"
            + "\n".join(body_lines) + "\n</rdf:RDF>\n")


def _property_xml(tag: str, obj: RDFTerm) -> str:
    if isinstance(obj, URI):
        return f'    <{tag} rdf:resource="{_xml_escape(obj.value)}"/>'
    if isinstance(obj, BlankNode):
        return f'    <{tag} rdf:nodeID="{obj.label}"/>'
    assert isinstance(obj, Literal)
    text = _xml_escape(obj.lexical_form)
    if obj.datatype is not None:
        return (f'    <{tag} rdf:datatype='
                f'"{_xml_escape(obj.datatype.value)}">{text}</{tag}>')
    if obj.language is not None:
        return f'    <{tag} xml:lang="{obj.language}">{text}</{tag}>'
    return f"    <{tag}>{text}</{tag}>"


def _xml_escape(text: str) -> str:
    return (text.replace("&", "&amp;").replace("<", "&lt;")
                .replace(">", "&gt;").replace('"', "&quot;"))


def _tag_to_uri(tag: str) -> str:
    """ElementTree ``{namespace}local`` -> concatenated URI."""
    if tag.startswith("{"):
        namespace, _brace, local = tag[1:].partition("}")
        return namespace + local
    return tag


def _resolve(reference: str, base: str) -> str:
    """Resolve ``reference`` against ``xml:base`` (subset semantics).

    Absolute URIs pass through; fragments append to the base; other
    relative references join on '/'.  Without a base, references are
    kept verbatim (many standalone documents rely on that).
    """
    if not reference:
        return base or reference
    if ":" in reference.split("/", 1)[0].split("#", 1)[0]:
        return reference  # absolute (has a scheme before any / or #)
    if not base:
        return reference
    if reference.startswith("#"):
        return base.split("#", 1)[0] + reference
    return base.rstrip("/") + "/" + reference

"""The ``rdf_model$`` registry and per-model views.

Creating a model records it in ``rdf_model$`` and creates the view
``rdfm_<model_name>`` over ``rdf_link$`` "that contains only data for the
model" (paper section 4.3) — the only window non-privileged users get on
the link table.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterator

from repro.core.schema import LINK_TABLE, MODEL_TABLE, MODEL_VERSION_TABLE
from repro.errors import ModelError, ModelExistsError, ModelNotFoundError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.db.connection import Database

_MODEL_NAME_RE = re.compile(r"[A-Za-z][A-Za-z0-9_]*$")


@dataclass(frozen=True, slots=True)
class ModelInfo:
    """One rdf_model$ row."""

    model_id: int
    model_name: str
    table_name: str
    column_name: str

    @property
    def view_name(self) -> str:
        """The per-model view over rdf_link$."""
        return f"rdfm_{self.model_name}"


class ModelRegistry:
    """CRUD over ``rdf_model$`` plus per-model view management."""

    def __init__(self, database: "Database") -> None:
        self._db = database
        # model_name (lowered) -> ModelInfo; model names are
        # case-insensitive like Oracle identifiers.
        self._cache: dict[str, ModelInfo] = {}

    @staticmethod
    def _normalize(model_name: str) -> str:
        return model_name.lower()

    def create(self, model_name: str, table_name: str,
               column_name: str) -> ModelInfo:
        """Register a model and create its ``rdfm_<model>`` view."""
        if not _MODEL_NAME_RE.match(model_name):
            raise ModelError(
                f"illegal model name {model_name!r}: must start with a "
                "letter and contain only letters, digits, underscore")
        name = self._normalize(model_name)
        if self.exists(name):
            raise ModelExistsError(model_name)
        cursor = self._db.execute(
            f'INSERT INTO "{MODEL_TABLE}" '
            "(model_name, table_name, column_name) VALUES (?, ?, ?)",
            (name, table_name, column_name))
        info = ModelInfo(int(cursor.lastrowid), name, table_name,
                         column_name)
        self._create_view(info)
        self._cache[name] = info
        self._db.bump_data_version()
        return info

    def _create_view(self, info: ModelInfo) -> None:
        self._db.execute(
            f'CREATE VIEW IF NOT EXISTS "{info.view_name}" AS '
            f'SELECT * FROM "{LINK_TABLE}" WHERE model_id = {info.model_id}')

    def drop(self, model_name: str) -> ModelInfo:
        """Remove the model row and its view.

        The model's triples must already be gone; the store facade
        handles cascading deletion.
        """
        info = self.get(model_name)
        self._db.drop_view(info.view_name)
        self._db.execute(
            f'DELETE FROM "{MODEL_TABLE}" WHERE model_id = ?',
            (info.model_id,))
        if self._db.table_exists(MODEL_VERSION_TABLE):
            self._db.execute(
                f'DELETE FROM "{MODEL_VERSION_TABLE}" '
                "WHERE model_id = ?", (info.model_id,))
        self._cache.pop(info.model_name, None)
        self._db.bump_data_version()
        return info

    def exists(self, model_name: str) -> bool:
        name = self._normalize(model_name)
        if name in self._cache:
            return True
        return self._db.query_one(
            f'SELECT 1 FROM "{MODEL_TABLE}" WHERE model_name = ?',
            (name,)) is not None

    def get(self, model_name: str) -> ModelInfo:
        """Model info by name; raises ModelNotFoundError."""
        name = self._normalize(model_name)
        cached = self._cache.get(name)
        if cached is not None:
            return cached
        row = self._db.query_one(
            f'SELECT * FROM "{MODEL_TABLE}" WHERE model_name = ?', (name,))
        if row is None:
            raise ModelNotFoundError(model_name)
        info = ModelInfo(int(row["model_id"]), row["model_name"],
                         row["table_name"], row["column_name"])
        self._cache[name] = info
        return info

    def get_by_id(self, model_id: int) -> ModelInfo:
        """Model info by MODEL_ID."""
        row = self._db.query_one(
            f'SELECT * FROM "{MODEL_TABLE}" WHERE model_id = ?',
            (model_id,))
        if row is None:
            raise ModelNotFoundError(f"<model_id={model_id}>")
        return ModelInfo(int(row["model_id"]), row["model_name"],
                         row["table_name"], row["column_name"])

    def __iter__(self) -> Iterator[ModelInfo]:
        for row in self._db.query_all(
                f'SELECT * FROM "{MODEL_TABLE}" ORDER BY model_id'):
            yield ModelInfo(int(row["model_id"]), row["model_name"],
                            row["table_name"], row["column_name"])

    def invalidate_cache(self) -> None:
        self._cache.clear()

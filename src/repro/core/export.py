"""Exporting models back out of the central schema.

The inverse of the loaders: a model's triples serialized as N-Triples,
Turtle, or RDF/XML.  Streamlined reification statements are exported
either verbatim (DBUri subjects and all, the default) or *expanded*
back into portable reification quads with minted resources — the form
other RDF systems understand, closing the loop with the quad loader.
"""

from __future__ import annotations

from pathlib import Path
from typing import TYPE_CHECKING, Iterator

from repro.db.dburi import is_dburi
from repro.errors import ReproError
from repro.rdf.namespaces import AliasSet
from repro.rdf.ntriples import serialize_ntriples
from repro.rdf.rdfxml import serialize_rdfxml
from repro.rdf.reification_vocab import expand_quad
from repro.rdf.terms import URI
from repro.rdf.triple import Triple
from repro.rdf.turtle import serialize_turtle

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.store import RDFStore

FORMATS = ("ntriples", "turtle", "rdfxml")


def export_model(store: "RDFStore", model_name: str,
                 format: str = "ntriples",
                 expand_reification: bool = False,
                 aliases: AliasSet | None = None) -> str:
    """Serialize a model's triples.

    :param format: one of ``ntriples`` / ``turtle`` / ``rdfxml``.
    :param expand_reification: rewrite DBUri reification statements and
        the assertions about them into portable quads (see
        :func:`portable_triples`).
    """
    if format not in FORMATS:
        raise ReproError(
            f"unknown export format {format!r}; one of {FORMATS}")
    if expand_reification:
        triples = list(portable_triples(store, model_name))
    else:
        triples = list(store.iter_model_triples(model_name))
    if format == "ntriples":
        return serialize_ntriples(triples) or ""
    if format == "turtle":
        return serialize_turtle(triples, aliases=aliases)
    return serialize_rdfxml(triples)


def export_model_to_file(store: "RDFStore", model_name: str,
                         path: str | Path,
                         format: str | None = None,
                         expand_reification: bool = False) -> int:
    """Export to a file; format inferred from the extension when not
    given.  Returns the number of triples written."""
    path = Path(path)
    if format is None:
        format = {
            ".nt": "ntriples", ".ntriples": "ntriples",
            ".ttl": "turtle", ".turtle": "turtle",
            ".rdf": "rdfxml", ".xml": "rdfxml", ".owl": "rdfxml",
        }.get(path.suffix.lower(), "ntriples")
    document = export_model(store, model_name, format=format,
                            expand_reification=expand_reification)
    path.write_text(document, encoding="utf-8")
    if expand_reification:
        return sum(1 for _ in portable_triples(store, model_name))
    return store.links.count(store.models.get(model_name).model_id)


def portable_triples(store: "RDFStore",
                     model_name: str) -> Iterator[Triple]:
    """The model's triples with DBUris replaced by portable resources.

    Every streamlined reification statement ``<DBUri, rdf:type,
    rdf:Statement>`` becomes the full four-statement quad reified by a
    minted ``urn:repro:stmt:<link_id>`` resource, and every other
    mention of that DBUri (assertions) is rewritten to the minted
    resource.  The result is plain, interoperable RDF.
    """
    from repro.db.dburi import DBUri

    def portable(term):
        if isinstance(term, URI) and is_dburi(term.value):
            uri = DBUri.parse(term.value)
            if uri.is_link_uri:
                return URI(f"urn:repro:stmt:{uri.link_id}")
        return term

    emitted_quads: set[int] = set()
    for triple in store.iter_model_triples(model_name):
        subject = triple.subject
        if (isinstance(subject, URI) and is_dburi(subject.value)
                and triple.predicate.value.endswith("#type")
                and triple.object.lexical.endswith("#Statement")):
            from repro.db.dburi import DBUri

            link_id = DBUri.parse(subject.value).link_id
            if link_id in emitted_quads:
                continue
            emitted_quads.add(link_id)
            base = store.triple_of(link_id)
            resource = URI(f"urn:repro:stmt:{link_id}")
            yield from expand_quad(resource, base)
            continue
        yield Triple(portable(triple.subject), triple.predicate,
                     portable(triple.object))

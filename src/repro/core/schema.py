"""DDL for the central RDF schema.

The tables mirror the paper's Figure 4:

``rdf_model$``
    one row per RDF model (graph): MODEL_ID, MODEL_NAME, and the
    application table/column the model was created for.

``rdf_value$``
    every distinct text value (URI, blank node, literal) exactly once:
    VALUE_ID, VALUE_NAME, VALUE_TYPE, LITERAL_TYPE, LANGUAGE_TYPE,
    LONG_VALUE.  For long literals (lexical form > 4000 chars) VALUE_NAME
    holds the 4000-char prefix and LONG_VALUE the full text, so the
    prefix stays indexable — the same reason Oracle splits the columns.

``rdf_node$``
    the NDM node table: one row per value that participates in a triple
    as subject or object.  NODE_ID equals the value's VALUE_ID.

``rdf_link$``
    the NDM link table and the triple table in one: LINK_ID,
    START_NODE_ID, P_VALUE_ID, END_NODE_ID, CANON_END_NODE_ID,
    LINK_TYPE, COST, CONTEXT, REIF_LINK, MODEL_ID.

``rdf_blank_node$``
    per-model blank-node bookkeeping: which VALUE_IDs are blank nodes of
    which model, under which original label.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.ndm.catalog import NetworkCatalog, NetworkMetadata

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.db.connection import Database

MODEL_TABLE = "rdf_model$"
VALUE_TABLE = "rdf_value$"
NODE_TABLE = "rdf_node$"
LINK_TABLE = "rdf_link$"
BLANK_NODE_TABLE = "rdf_blank_node$"
VERSION_TABLE = "rdf_schema_version$"
MODEL_VERSION_TABLE = "rdf_model_version$"
IDEMPOTENCY_TABLE = "rdf_idempotency$"

#: Bumped on incompatible central-schema layout changes; a database
#: written by a newer layout refuses to open under older code.
SCHEMA_VERSION = 1

#: The catalog name of the RDF universe network (all models together).
RDF_NETWORK_NAME = "RDF_NETWORK"

_SCHEMA_SQL = f"""
CREATE TABLE IF NOT EXISTS "{MODEL_TABLE}" (
    model_id    INTEGER PRIMARY KEY,
    model_name  TEXT NOT NULL UNIQUE,
    table_name  TEXT NOT NULL,
    column_name TEXT NOT NULL
);

CREATE TABLE IF NOT EXISTS "{VALUE_TABLE}" (
    value_id      INTEGER PRIMARY KEY,
    value_name    TEXT NOT NULL,
    value_type    TEXT NOT NULL,
    literal_type  TEXT,
    language_type TEXT,
    long_value    TEXT
);

-- Uniqueness covers LONG_VALUE too: two long literals sharing the
-- 4000-char VALUE_NAME prefix are distinct values.
CREATE UNIQUE INDEX IF NOT EXISTS rdf_value_uniq
    ON "{VALUE_TABLE}" (value_name, value_type,
                        IFNULL(literal_type, ''),
                        IFNULL(language_type, ''),
                        IFNULL(long_value, ''));

CREATE TABLE IF NOT EXISTS "{NODE_TABLE}" (
    node_id   INTEGER PRIMARY KEY
              REFERENCES "{VALUE_TABLE}" (value_id),
    node_type TEXT NOT NULL,
    active    TEXT NOT NULL DEFAULT 'Y'
);

CREATE TABLE IF NOT EXISTS "{LINK_TABLE}" (
    link_id            INTEGER PRIMARY KEY,
    start_node_id      INTEGER NOT NULL
                       REFERENCES "{NODE_TABLE}" (node_id),
    p_value_id         INTEGER NOT NULL
                       REFERENCES "{VALUE_TABLE}" (value_id),
    end_node_id        INTEGER NOT NULL
                       REFERENCES "{NODE_TABLE}" (node_id),
    canon_end_node_id  INTEGER NOT NULL
                       REFERENCES "{VALUE_TABLE}" (value_id),
    link_type          TEXT NOT NULL DEFAULT 'STANDARD',
    cost               INTEGER NOT NULL DEFAULT 1,
    context            TEXT NOT NULL DEFAULT 'D'
                       CHECK (context IN ('D', 'I')),
    reif_link          TEXT NOT NULL DEFAULT 'N'
                       CHECK (reif_link IN ('Y', 'N')),
    model_id           INTEGER NOT NULL
                       REFERENCES "{MODEL_TABLE}" (model_id)
);

-- One row per distinct triple per model (section 4.1: "a check is made
-- to determine if the triple already exists in the specified graph").
CREATE UNIQUE INDEX IF NOT EXISTS rdf_link_uniq
    ON "{LINK_TABLE}" (model_id, start_node_id, p_value_id, end_node_id);

-- Access-path indexes; the model_id leading column is the SQLite
-- equivalent of the paper's "partitioned by graphs" layout.
CREATE INDEX IF NOT EXISTS rdf_link_spo
    ON "{LINK_TABLE}" (model_id, start_node_id);
CREATE INDEX IF NOT EXISTS rdf_link_pos
    ON "{LINK_TABLE}" (model_id, p_value_id, canon_end_node_id);
CREATE INDEX IF NOT EXISTS rdf_link_osp
    ON "{LINK_TABLE}" (model_id, canon_end_node_id);

CREATE TABLE IF NOT EXISTS "{BLANK_NODE_TABLE}" (
    value_id   INTEGER NOT NULL
               REFERENCES "{VALUE_TABLE}" (value_id),
    model_id   INTEGER NOT NULL
               REFERENCES "{MODEL_TABLE}" (model_id),
    orig_label TEXT NOT NULL,
    PRIMARY KEY (value_id, model_id)
);

CREATE TABLE IF NOT EXISTS "{VERSION_TABLE}" (
    version INTEGER PRIMARY KEY
);

-- Persistent per-model write counter: bumped inside every transaction
-- that changes a model's triple set (insert, delete, bulk load).  Rules
-- indexes record these at build time; staleness is the comparison —
-- unlike triple counts, a balanced delete+insert still moves the
-- version, and unlike in-memory counters, it survives restarts.
CREATE TABLE IF NOT EXISTS "{MODEL_VERSION_TABLE}" (
    model_id INTEGER PRIMARY KEY,
    version  INTEGER NOT NULL DEFAULT 0
);
"""

#: DDL for the serving layer's exactly-once write ledger.  One row per
#: Idempotency-Key the server has applied: the recorded outcome is
#: written **inside the same transaction** as the write it describes,
#: so a client retry after a dropped connection replays the stored
#: answer instead of applying the mutation twice.  ``seq`` orders rows
#: for the bounded-size prune (oldest evicted first); created by
#: :func:`repro.server.state.ensure_serve_state`, not part of the
#: central schema proper.
IDEMPOTENCY_SQL = f"""
CREATE TABLE IF NOT EXISTS "{IDEMPOTENCY_TABLE}" (
    key          TEXT PRIMARY KEY,
    seq          INTEGER NOT NULL,
    route        TEXT NOT NULL,
    outcome_json TEXT NOT NULL,
    created_at   REAL NOT NULL
);
CREATE INDEX IF NOT EXISTS rdf_idempotency_seq
    ON "{IDEMPOTENCY_TABLE}" (seq);
"""


def create_central_schema(database: "Database") -> None:
    """Create the central RDF schema (idempotent).

    Also registers the RDF universe network in the NDM catalog, which is
    what "built on top of NDM" means operationally: ``rdf_node$`` and
    ``rdf_link$`` *are* the NDM tables for this network.

    Raises :class:`repro.errors.SchemaError` when the database carries a
    newer schema version than this code understands.
    """
    _check_schema_version(database)
    database.executescript(_SCHEMA_SQL)
    database.execute(
        f'INSERT OR IGNORE INTO "{VERSION_TABLE}" VALUES (?)',
        (SCHEMA_VERSION,))
    catalog = NetworkCatalog(database)
    if not catalog.exists(RDF_NETWORK_NAME):
        catalog.register(NetworkMetadata(
            network_name=RDF_NETWORK_NAME,
            node_table=NODE_TABLE,
            link_table=LINK_TABLE,
            node_id_column="node_id",
            link_id_column="link_id",
            start_node_column="start_node_id",
            end_node_column="end_node_id",
            cost_column=None,
            directed=True,
            partition_column="model_id"))


def _check_schema_version(database: "Database") -> None:
    from repro.errors import SchemaError

    if not database.table_exists(VERSION_TABLE):
        return
    stored = database.query_value(
        f'SELECT MAX(version) FROM "{VERSION_TABLE}"')
    if stored is not None and int(stored) > SCHEMA_VERSION:
        raise SchemaError(
            f"database schema version {stored} is newer than this "
            f"library's {SCHEMA_VERSION}; upgrade the library")


def central_schema_exists(database: "Database") -> bool:
    """True when the central schema tables are present."""
    return all(database.table_exists(table) for table in (
        MODEL_TABLE, VALUE_TABLE, NODE_TABLE, LINK_TABLE, BLANK_NODE_TABLE))

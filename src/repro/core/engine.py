"""The storage-engine interface.

The reproduction grew up with exactly one storage layout: the paper's
central schema in a single SQLite file, fronted by :class:`RDFStore`.
This module names the contract that layout satisfies, so a second
backend — the sharded engine of :mod:`repro.core.sharded` — can slot in
behind the same call sites (CLI, server, benchmarks, tests) without
them caring which physical layout answers.

Two engines implement it:

:class:`~repro.core.store.RDFStore` (``engine_kind == "single"``)
    One database, one ``rdf_link$``/``rdf_value$`` pair, the layout of
    the paper.  Embeds everything, including in-memory stores.

:class:`~repro.core.sharded.ShardedRDFStore` (``engine_kind == "sharded"``)
    ``rdf_link$`` partitioned across N SQLite files by (model, subject)
    hash, one writer queue per shard, scatter-gather reads.

Construction stays on the familiar facade: ``RDFStore(path, shards=4)``
returns a :class:`ShardedRDFStore` — the ``shards`` keyword is the
engine selector, so no call site needs to import the sharded backend
explicitly.

The interface is intentionally the *triple-level* surface.  ID-level
accessors (``values``, ``links``, ``plan_cache``) are per-shard
concepts: VALUE_IDs are only meaningful within one shard file, so they
stay on :class:`RDFStore` and the sharded engine exposes them per
shard, never globally.
"""

from __future__ import annotations

import abc
from typing import TYPE_CHECKING, Any, Iterator

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.links import LinkRow
    from repro.core.models import ModelInfo
    from repro.core.triple_s import SDO_RDF_TRIPLE_S
    from repro.rdf.triple import Triple


class StorageEngine(abc.ABC):
    """What every storage backend must provide.

    ``sdo_rdf_match`` additionally duck-types on ``scatter_match``:
    an engine that defines it evaluates queries itself (scatter-gather);
    one that does not is compiled against directly (single SQL file).
    """

    #: "single" or "sharded" — surfaced in ``/stats`` and the CLI.
    engine_kind: str = "single"

    # -- model management --------------------------------------------------

    @abc.abstractmethod
    def create_model(self, model_name: str, table_name: str = "",
                     column_name: str = "triple") -> "ModelInfo":
        """Create an RDF model (graph)."""

    @abc.abstractmethod
    def drop_model(self, model_name: str) -> int:
        """Drop a model; returns the number of triples removed."""

    @abc.abstractmethod
    def model_exists(self, model_name: str) -> bool:
        """True when a model with this name exists."""

    # -- triples -----------------------------------------------------------

    @abc.abstractmethod
    def insert_triple(self, model_name: str, subject: str,
                      predicate: str, obj: str,
                      context: Any = None) -> "SDO_RDF_TRIPLE_S":
        """Insert (or find) a triple given as text."""

    @abc.abstractmethod
    def insert_triple_obj(self, model_name: str, triple: "Triple",
                          context: Any = None,
                          count_cost: bool = True) -> "SDO_RDF_TRIPLE_S":
        """Insert a parsed :class:`~repro.rdf.triple.Triple`."""

    @abc.abstractmethod
    def remove_triple(self, model_name: str, subject: str,
                      predicate: str, obj: str,
                      force: bool = False) -> bool:
        """Remove one reference to a triple."""

    @abc.abstractmethod
    def find_link(self, model_name: str, subject: str, predicate: str,
                  obj: str) -> "LinkRow | None":
        """The stored link row for a text triple, or None."""

    @abc.abstractmethod
    def iter_model_triples(self, model_name: str) -> "Iterator[Triple]":
        """All triples of a model as term objects."""

    # -- lifecycle ---------------------------------------------------------

    @abc.abstractmethod
    def close(self) -> None:
        """Release every connection/thread the engine holds."""

    def __enter__(self) -> "StorageEngine":
        return self

    def __exit__(self, *_exc_info: object) -> None:
        self.close()

"""The paper's primary contribution: object-typed RDF storage.

All RDF data in one database lives under a *central schema* — the global
tables ``rdf_model$``, ``rdf_value$``, ``rdf_node$``, ``rdf_link$``, and
``rdf_blank_node$`` (paper section 4).  User application tables hold
:class:`~repro.core.triple_s.SDO_RDF_TRIPLE_S` objects: five IDs that
reference the triple in the central schema, resolved back to text by the
member functions ``GET_TRIPLE`` / ``GET_SUBJECT`` / ``GET_PROPERTY`` /
``GET_OBJECT``.

Entry points:

* :class:`repro.core.store.RDFStore` — open/create the central schema in
  a :class:`repro.db.Database`;
* :class:`repro.core.sdo_rdf.SDO_RDF` — the procedural package
  (``CREATE_RDF_MODEL``, ``IS_TRIPLE``, ``IS_REIFIED``, ...);
* :class:`repro.core.apptable.ApplicationTable` — user tables with an
  SDO_RDF_TRIPLE_S column.
"""

from repro.core.store import RDFStore
from repro.core.triple_s import SDO_RDF_TRIPLE, SDO_RDF_TRIPLE_S
from repro.core.sdo_rdf import SDO_RDF
from repro.core.apptable import ApplicationTable
from repro.core.bulkload import BulkLoader, bulk_load_ntriples
from repro.core.container_ops import fetch_container, insert_container
from repro.core.links import Context, LinkRow, LinkType
from repro.core.models import ModelInfo

__all__ = [
    "ApplicationTable",
    "BulkLoader",
    "Context",
    "LinkRow",
    "LinkType",
    "ModelInfo",
    "RDFStore",
    "SDO_RDF",
    "SDO_RDF_TRIPLE",
    "SDO_RDF_TRIPLE_S",
    "bulk_load_ntriples",
    "fetch_container",
    "insert_container",
]

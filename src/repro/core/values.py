"""The ``rdf_value$`` store: every text value exactly once.

"Each text entry is uniquely stored" (paper section 4) — URIs, blank
nodes, and literals get one VALUE_ID no matter how many triples, models,
or application tables mention them.  This is the normalization that lets
the IC scenario of Figure 2/6 share VALUE_IDs across the CIA, DHS, and
FBI models.

Long literals (lexical form > 4000 chars) store the full text in
``LONG_VALUE`` and the indexable 4000-char prefix in ``VALUE_NAME``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.schema import VALUE_TABLE
from repro.errors import ValueNotFoundError
from repro.rdf.terms import (
    LONG_LITERAL_THRESHOLD,
    Literal,
    RDFTerm,
    ValueType,
    term_from_lexical,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.db.connection import Database


def _decompose(term: RDFTerm) -> tuple[str, str, str | None, str | None,
                                        str | None]:
    """Split a term into its rdf_value$ columns.

    Returns (value_name, value_type, literal_type, language_type,
    long_value).
    """
    value_type = term.value_type
    literal_type = None
    language_type = None
    long_value = None
    lexical = term.lexical
    if isinstance(term, Literal):
        if term.datatype is not None:
            literal_type = term.datatype.value
        if term.language is not None:
            language_type = term.language
        if term.is_long:
            long_value = lexical
            lexical = lexical[:LONG_LITERAL_THRESHOLD]
    return lexical, value_type.value, literal_type, language_type, long_value


class ValueStore:
    """Lookup/insert interface over ``rdf_value$``.

    A small in-process cache keeps the hot term->VALUE_ID mapping out of
    SQL; it is write-through and safe because VALUE_IDs are immutable
    once assigned.
    """

    #: VALUE_IDs per batched ``IN (...)`` lookup — comfortably under
    #: SQLite's default 999-parameter limit.
    _BATCH_SIZE = 400

    def __init__(self, database: "Database",
                 cache_size: int = 100_000) -> None:
        self._db = database
        self._cache_size = cache_size
        self._id_cache: dict[RDFTerm, int] = {}
        self._term_cache: dict[int, RDFTerm] = {}

    # ------------------------------------------------------------------
    # lookups
    # ------------------------------------------------------------------

    def find_id(self, term: RDFTerm) -> int | None:
        """The VALUE_ID of ``term``, or None when not yet stored.

        The lookup matches every column of the uniqueness key,
        LONG_VALUE included — so a short literal never collides with a
        long literal sharing its 4000-char VALUE_NAME prefix, and two
        long literals with equal prefixes stay distinct.
        """
        cached = self._id_cache.get(term)
        if cached is not None:
            return cached
        name, vtype, ltype, lang, long_value = _decompose(term)
        row = self._db.query_one(
            f'SELECT value_id FROM "{VALUE_TABLE}" '
            "WHERE value_name = ? AND value_type = ? "
            "AND IFNULL(literal_type, '') = ? "
            "AND IFNULL(language_type, '') = ? "
            "AND IFNULL(long_value, '') = ?",
            (name, vtype, ltype or "", lang or "", long_value or ""))
        if row is None:
            return None
        value_id = int(row["value_id"])
        self._remember(term, value_id)
        return value_id

    def lookup_or_insert(self, term: RDFTerm) -> int:
        """The VALUE_ID of ``term``, inserting a new row if needed.

        This is the section 4.1 step: "the rdf_value$ table is checked to
        determine if the text values already exist ... if not found, they
        are inserted and assigned new VALUE_IDs".
        """
        existing = self.find_id(term)
        if existing is not None:
            return existing
        name, vtype, ltype, lang, long_value = _decompose(term)
        cursor = self._db.execute(
            f'INSERT INTO "{VALUE_TABLE}" '
            "(value_name, value_type, literal_type, language_type,"
            " long_value) VALUES (?, ?, ?, ?, ?)",
            (name, vtype, ltype, lang, long_value))
        value_id = int(cursor.lastrowid)
        self._remember(term, value_id)
        return value_id

    def get_term(self, value_id: int) -> RDFTerm:
        """Rebuild the term stored under ``value_id``.

        Raises :class:`repro.errors.ValueNotFoundError` for unknown IDs.
        """
        cached = self._term_cache.get(value_id)
        if cached is not None:
            return cached
        row = self._db.query_one(
            f'SELECT * FROM "{VALUE_TABLE}" WHERE value_id = ?',
            (value_id,))
        if row is None:
            raise ValueNotFoundError(value_id)
        lexical = row["long_value"] if row["long_value"] is not None \
            else row["value_name"]
        term = term_from_lexical(
            lexical, ValueType(row["value_type"]),
            literal_type=row["literal_type"],
            language_type=row["language_type"])
        self._remember(term, value_id)
        return term

    def get_terms(self, value_ids) -> dict[int, RDFTerm]:
        """Batch form of :meth:`get_term`: one ``IN (...)`` query per
        chunk instead of a round trip per VALUE_ID.

        The match pipeline resolves a whole result page through this —
        N rows x V variables collapse into a handful of statements.
        Cached terms are served from memory; raises
        :class:`~repro.errors.ValueNotFoundError` if any requested ID
        is unknown.
        """
        wanted = set(value_ids)
        resolved: dict[int, RDFTerm] = {}
        missing: list[int] = []
        for value_id in wanted:
            cached = self._term_cache.get(value_id)
            if cached is not None:
                resolved[value_id] = cached
            else:
                missing.append(value_id)
        for start in range(0, len(missing), self._BATCH_SIZE):
            chunk = missing[start:start + self._BATCH_SIZE]
            placeholders = ", ".join("?" for _ in chunk)
            rows = self._db.query_all(
                f'SELECT * FROM "{VALUE_TABLE}" '
                f"WHERE value_id IN ({placeholders})", chunk)
            for row in rows:
                value_id = int(row["value_id"])
                lexical = row["long_value"] \
                    if row["long_value"] is not None else row["value_name"]
                term = term_from_lexical(
                    lexical, ValueType(row["value_type"]),
                    literal_type=row["literal_type"],
                    language_type=row["language_type"])
                self._remember(term, value_id)
                resolved[value_id] = term
        if len(resolved) != len(wanted):
            raise ValueNotFoundError(min(wanted - resolved.keys()))
        return resolved

    def get_lexical(self, value_id: int) -> str:
        """The lexical form stored under ``value_id`` (VALUE_NAME or
        LONG_VALUE)."""
        row = self._db.query_one(
            f'SELECT value_name, long_value FROM "{VALUE_TABLE}" '
            "WHERE value_id = ?", (value_id,))
        if row is None:
            raise ValueNotFoundError(value_id)
        if row["long_value"] is not None:
            return row["long_value"]
        return row["value_name"]

    def count(self) -> int:
        """Number of distinct stored values."""
        return self._db.row_count(VALUE_TABLE)

    # ------------------------------------------------------------------
    # cache
    # ------------------------------------------------------------------

    def _remember(self, term: RDFTerm, value_id: int) -> None:
        if len(self._id_cache) >= self._cache_size:
            self._id_cache.clear()
            self._term_cache.clear()
        self._id_cache[term] = value_id
        self._term_cache[value_id] = term

    def invalidate_cache(self) -> None:
        """Drop the in-process caches (after bulk deletes)."""
        self._id_cache.clear()
        self._term_cache.clear()

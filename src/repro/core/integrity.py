"""Central-schema integrity checking.

The central schema carries invariants the paper's design relies on:

* every link component references an existing ``rdf_value$`` row, and
  subject/object references an ``rdf_node$`` row;
* ``CANON_END_NODE_ID`` references an existing value;
* ``MODEL_ID`` references an ``rdf_model$`` row;
* ``REIF_LINK='Y'`` exactly when a component is a DBUri (and vice
  versa);
* every reification statement's DBUri resolves to an existing
  ``rdf_link$`` row (no dangling reifications);
* no orphan nodes (``rdf_node$`` rows no link touches);
* ``COST`` is never negative; predicates are URIs; subjects are not
  literals.

:func:`check_integrity` sweeps them all and returns a list of
:class:`Violation` — empty on a healthy store.  The test suite uses it
both as a production health check and as the oracle for
corruption-injection tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.core.schema import (
    LINK_TABLE,
    MODEL_TABLE,
    NODE_TABLE,
    VALUE_TABLE,
)
from repro.db.dburi import DBUri, is_dburi

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.store import RDFStore


@dataclass(frozen=True, slots=True)
class Violation:
    """One integrity violation."""

    check: str
    detail: str

    def __str__(self) -> str:
        return f"[{self.check}] {self.detail}"


def check_integrity(store: "RDFStore") -> list[Violation]:
    """Run every integrity check; returns all violations found."""
    violations: list[Violation] = []
    violations.extend(_check_link_references(store))
    violations.extend(_check_node_registration(store))
    violations.extend(_check_orphan_nodes(store))
    violations.extend(_check_reif_flags(store))
    violations.extend(_check_dangling_reifications(store))
    violations.extend(_check_component_kinds(store))
    violations.extend(_check_costs(store))
    return violations


def _check_link_references(store: "RDFStore") -> list[Violation]:
    """Every link column references an existing value/model row."""
    db = store.database
    violations = []
    for column, target, target_col in (
            ("start_node_id", VALUE_TABLE, "value_id"),
            ("p_value_id", VALUE_TABLE, "value_id"),
            ("end_node_id", VALUE_TABLE, "value_id"),
            ("canon_end_node_id", VALUE_TABLE, "value_id"),
            ("model_id", MODEL_TABLE, "model_id")):
        for row in db.query_all(
                f'SELECT link_id, {column} AS ref FROM "{LINK_TABLE}" l '
                f'WHERE NOT EXISTS (SELECT 1 FROM "{target}" t '
                f"WHERE t.{target_col} = l.{column})"):
            violations.append(Violation(
                "link-references",
                f"LINK_ID={row['link_id']}: {column}={row['ref']} has "
                f"no row in {target}"))
    return violations


def _check_node_registration(store: "RDFStore") -> list[Violation]:
    """Subjects and objects must be registered NDM nodes."""
    db = store.database
    violations = []
    for column in ("start_node_id", "end_node_id"):
        for row in db.query_all(
                f'SELECT link_id, {column} AS ref FROM "{LINK_TABLE}" l '
                f'WHERE NOT EXISTS (SELECT 1 FROM "{NODE_TABLE}" n '
                f"WHERE n.node_id = l.{column})"):
            violations.append(Violation(
                "node-registration",
                f"LINK_ID={row['link_id']}: {column}={row['ref']} is "
                "not in rdf_node$"))
    return violations


def _check_orphan_nodes(store: "RDFStore") -> list[Violation]:
    """rdf_node$ rows that no link touches."""
    rows = store.database.query_all(
        f'SELECT node_id FROM "{NODE_TABLE}" n '
        f'WHERE NOT EXISTS (SELECT 1 FROM "{LINK_TABLE}" l '
        "WHERE l.start_node_id = n.node_id "
        "OR l.end_node_id = n.node_id)")
    return [Violation("orphan-node",
                      f"NODE_ID={row['node_id']} has no links")
            for row in rows]


def _check_reif_flags(store: "RDFStore") -> list[Violation]:
    """REIF_LINK must equal 'Y' iff a component is a DBUri."""
    violations = []
    for row in store.database.query_all(
            f'SELECT l.link_id, l.reif_link, '
            "sv.value_name AS s_name, pv.value_name AS p_name, "
            "ov.value_name AS o_name "
            f'FROM "{LINK_TABLE}" l '
            f'JOIN "{VALUE_TABLE}" sv ON sv.value_id = l.start_node_id '
            f'JOIN "{VALUE_TABLE}" pv ON pv.value_id = l.p_value_id '
            f'JOIN "{VALUE_TABLE}" ov ON ov.value_id = l.end_node_id'):
        has_dburi = any(is_dburi(row[name])
                        for name in ("s_name", "p_name", "o_name"))
        flagged = row["reif_link"] == "Y"
        if has_dburi != flagged:
            violations.append(Violation(
                "reif-flag",
                f"LINK_ID={row['link_id']}: REIF_LINK="
                f"{row['reif_link']!r} but DBUri component is "
                f"{has_dburi}"))
    return violations


def _check_dangling_reifications(store: "RDFStore") -> list[Violation]:
    """Every DBUri in any component must resolve to a link row."""
    violations = []
    seen: set[str] = set()
    for row in store.database.query_all(
            f'SELECT DISTINCT v.value_name FROM "{VALUE_TABLE}" v '
            f'JOIN "{LINK_TABLE}" l ON l.start_node_id = v.value_id '
            "OR l.end_node_id = v.value_id OR l.p_value_id = v.value_id "
            "WHERE v.value_name LIKE '/ORADB/%'"):
        text = row["value_name"]
        if text in seen or not is_dburi(text):
            continue
        seen.add(text)
        uri = DBUri.parse(text)
        if not uri.is_link_uri:
            continue
        if not store.links.exists(uri.link_id):
            violations.append(Violation(
                "dangling-reification",
                f"{text} references a deleted triple"))
    return violations


def _check_component_kinds(store: "RDFStore") -> list[Violation]:
    """Predicates must be URIs; subjects must not be literals."""
    db = store.database
    violations = []
    for row in db.query_all(
            f'SELECT l.link_id, v.value_type FROM "{LINK_TABLE}" l '
            f'JOIN "{VALUE_TABLE}" v ON v.value_id = l.p_value_id '
            "WHERE v.value_type != 'UR'"):
        violations.append(Violation(
            "predicate-kind",
            f"LINK_ID={row['link_id']}: predicate has VALUE_TYPE="
            f"{row['value_type']!r}, expected 'UR'"))
    for row in db.query_all(
            f'SELECT l.link_id, v.value_type FROM "{LINK_TABLE}" l '
            f'JOIN "{VALUE_TABLE}" v ON v.value_id = l.start_node_id '
            "WHERE v.value_type NOT IN ('UR', 'BN')"):
        violations.append(Violation(
            "subject-kind",
            f"LINK_ID={row['link_id']}: subject has VALUE_TYPE="
            f"{row['value_type']!r}, expected URI or blank node"))
    return violations


def _check_costs(store: "RDFStore") -> list[Violation]:
    rows = store.database.query_all(
        f'SELECT link_id, cost FROM "{LINK_TABLE}" WHERE cost < 0')
    return [Violation("cost", f"LINK_ID={row['link_id']}: negative "
                      f"COST {row['cost']}")
            for row in rows]

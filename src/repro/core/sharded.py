"""The sharded storage engine: ``rdf_link$`` partitioned across N files.

:class:`ShardedRDFStore` implements the
:class:`~repro.core.engine.StorageEngine` contract over N complete
central-schema SQLite files.  Construction goes through the familiar
facade — ``RDFStore(path, shards=4)`` returns one of these.

**Layout.**  Every shard is a full single-file store (``rdf_value$``,
``rdf_node$``, ``rdf_link$``, model registry, …) plus the
``rdf_shard$`` identity row of :mod:`repro.db.shard`.  Triples are
routed by the stable (model, subject) hash of
:class:`~repro.db.shard.ShardRouter`; model DDL is broadcast to every
shard so any shard can answer any pattern of any model.

**Dictionary encoding.**  ``rdf_value$`` is *replicated on demand*:
each shard dict-encodes only the terms its own triples use, with
shard-local VALUE_IDs.  The alternative — one global value store —
would put a cross-shard coordination point back on the write path,
which is exactly what sharding exists to remove.  The price is
two-fold and documented in ``docs/sharding.md``: a term appearing on k
shards stores k value rows, and cross-shard query results must be
merged on resolved terms, never on VALUE_IDs (see
:mod:`repro.inference.scatter`).

**Concurrency.**  One :class:`~repro.db.pool.WriterQueue` per shard —
writes to different shards commit (and fsync) in parallel, which is the
whole throughput story — and one lazy
:class:`~repro.db.pool.ConnectionPool` of read-only sessions per shard
for scatter-gather reads.  LINK_IDs come from per-shard strides
(:data:`~repro.db.shard.LINK_ID_STRIDE`), so they stay globally unique
and reification DBUris keep resolving.

**Known limits** (documented in ``docs/sharding.md``): rulebase
inference is rejected (a per-partition closure is not the closure of
the union), and there is no cross-shard atomic snapshot — each shard's
read is transactionally consistent, the vector of them is not.
"""

from __future__ import annotations

import threading
from concurrent.futures import Future, ThreadPoolExecutor
from contextlib import contextmanager
from pathlib import Path
from typing import Any, Callable, Iterator, Sequence

from repro.core.engine import StorageEngine
from repro.core.links import Context, LinkRow
from repro.core.store import RDFStore
from repro.core.triple_s import SDO_RDF_TRIPLE_S
from repro.db.connection import Database
from repro.db.pool import ConnectionPool, WriterQueue
from repro.db.resilience import resolve_profile
from repro.db.shard import ShardRouter, ensure_shard_meta, shard_of_link_id
from repro.db.dburi import DBUri
from repro.errors import StorageError, TripleNotFoundError
from repro.rdf.namespaces import RDF
from repro.rdf.terms import URI
from repro.rdf.triple import Triple

_RDF_TYPE = RDF.type
_RDF_STATEMENT = RDF.Statement


def _invalidate_session(store: RDFStore) -> None:
    """Pool acquire-snoop hook: another connection committed to this
    shard, so the session's term *and* model caches are stale (model
    DDL is broadcast — a dropped model must disappear from pooled
    readers too)."""
    store.values.invalidate_cache()
    store.models.invalidate_cache()


class _ShardReader:
    """A tiny read-side store stand-in for one shard.

    ``SDO_RDF_TRIPLE_S`` handles returned by the sharded engine are
    attached to one of these instead of the shard's *writer* session —
    the writer connection lives on the writer thread and must never be
    touched from the caller's thread.  Member functions only need
    ``lexical_of``/``term_of``, resolved through the shard's read pool.
    """

    def __init__(self, engine: "ShardedRDFStore", shard: int) -> None:
        self._engine = engine
        self._shard = shard

    def lexical_of(self, value_id: int) -> str:
        with self._engine.shard_session(self._shard) as session:
            return session.values.get_lexical(value_id)

    def term_of(self, value_id: int):
        with self._engine.shard_session(self._shard) as session:
            return session.values.get_term(value_id)


class ShardedRDFStore(StorageEngine):
    """N-file partitioned RDF store (see module docstring).

    :param database: the logical base path; shard files are its
        ``.shard<k>`` siblings.  Must be file-backed — ``:memory:``
        cannot be partitioned across connections.
    :param observe: observability switch forwarded to each shard's
        writer store.
    :param durability: profile name; must be a WAL profile
        (``durable``/``paranoid``) because every shard serves pooled
        readers concurrently with its writer.  Default ``durable``.
    :param shards: number of partitions (>= 1 — 1 is allowed and
        useful as a like-for-like baseline in benchmarks).
    :param writer_queue: per-shard bound on queued write jobs.
    :param pool_size: read connections per shard.
    :param pool_timeout: seconds a read lease waits before 429-style
        :class:`~repro.errors.PoolTimeoutError`.
    :param writer_init: optional hook run once inside each shard's
        writer thread, right after its store opens (the server
        installs its serve-state table here).
    """

    engine_kind = "sharded"

    def __init__(self, database: str | Path | None,
                 observe: bool | None = None,
                 durability: str | None = None, *,
                 shards: int,
                 writer_queue: int = 256,
                 pool_size: int = 2,
                 pool_timeout: float = 5.0,
                 writer_init: Callable[[RDFStore], None] | None = None
                 ) -> None:
        if not isinstance(database, (str, Path)):
            raise StorageError(
                "a sharded store is constructed from a base *path* "
                f"(got {type(database).__name__}); it opens one "
                "database file per shard itself")
        profile = resolve_profile(durability if durability is not None
                                  else "durable")
        if profile.journal_mode != "WAL":
            raise StorageError(
                f"durability profile {profile.name!r} journals in "
                f"{profile.journal_mode}; a sharded store needs a WAL "
                "profile (durable/paranoid) so each shard's readers "
                "can run concurrently with its writer")
        self.router = ShardRouter(database, shards)
        self._durability = profile.name
        self._observe = observe
        self._pool_size = pool_size
        self._pool_timeout = pool_timeout
        self._writer_init = writer_init
        self._lock = threading.Lock()
        self._closed = False
        self._result_cache = None
        self._pools: list[ConnectionPool | None] = [None] * shards
        self._executor = ThreadPoolExecutor(
            max_workers=max(2, 2 * shards),
            thread_name_prefix="repro-shard")
        # Writers start eagerly: the factory creates each shard's
        # schema, so lazily-created read pools always find it.
        self._writers: list[WriterQueue] = []
        try:
            for index in range(shards):
                writer = WriterQueue(self._shard_factory(index),
                                     maxsize=writer_queue)
                writer.start()
                self._writers.append(writer)
        except BaseException:
            self.close()
            raise

    def _shard_factory(self, index: int) -> Callable[[], RDFStore]:
        def factory() -> RDFStore:
            database = Database(self.router.shard_path(index),
                                durability=self._durability)
            ensure_shard_meta(database, index, self.router.shard_count)
            # replica=False: per-shard stores must not each grow an
            # in-memory replica off the REPRO_REPLICA environment —
            # the sharded engine is scatter-only.
            store = RDFStore(database, observe=self._observe,
                             replica=False)
            store.links.set_link_id_range(
                *self.router.link_id_range(index))
            if self._writer_init is not None:
                self._writer_init(store)
            return store
        return factory

    # ------------------------------------------------------------------
    # shard access
    # ------------------------------------------------------------------

    @property
    def shard_count(self) -> int:
        return self.router.shard_count

    @property
    def executor(self) -> ThreadPoolExecutor:
        """The fan-out executor (scatter-gather reads run on it)."""
        return self._executor

    def writer(self, index: int) -> WriterQueue:
        """Shard ``index``'s writer queue."""
        return self._writers[index]

    def pool(self, index: int) -> ConnectionPool:
        """Shard ``index``'s read pool (created on first use)."""
        pool = self._pools[index]
        if pool is None:
            with self._lock:
                pool = self._pools[index]
                if pool is None:
                    if self._closed:
                        raise StorageError(
                            f"sharded store {self.router.base_path} "
                            "is closed")
                    pool = ConnectionPool(
                        self.router.shard_path(index),
                        size=self._pool_size,
                        durability=self._durability,
                        timeout=self._pool_timeout,
                        wrap=lambda db: RDFStore(db, observe=False,
                                                 replica=False),
                        invalidate=_invalidate_session)
                    self._pools[index] = pool
        return pool

    @contextmanager
    def shard_session(self, index: int) -> Iterator[RDFStore]:
        """A leased read-only :class:`RDFStore` session on one shard."""
        with self.pool(index).lease() as session:
            yield session

    def submit(self, index: int, job: Callable[[RDFStore], Any],
               timeout: float | None = None) -> Future:
        """Enqueue a mutation on shard ``index``'s writer.

        The default ``timeout=None`` blocks until queue space frees
        (embedded callers want backpressure, not failures); the server
        passes 0 to turn a full queue into an immediate 429.
        """
        return self._writers[index].submit(job, timeout=timeout)

    def call(self, index: int, job: Callable[[RDFStore], Any]) -> Any:
        """Submit to one shard and wait for the result."""
        return self.submit(index, job).result()

    def broadcast(self, job: Callable[[RDFStore], Any]) -> list[Any]:
        """Run ``job`` on every shard's writer, in shard order.

        Sequential on purpose: broadcasts are rare DDL (model
        create/drop) where "shard 3 failed but 0-2 committed" is much
        easier to reason about — and repair, by re-running — when the
        failure point is ordered.
        """
        return [self.call(index, job)
                for index in self.router.all_shards()]

    def shard_stats(self) -> list[dict[str, Any]]:
        """Per-shard depth/version gauges for ``/stats`` and doctor."""
        stats = []
        for index in self.router.all_shards():
            pool = self._pools[index]
            entry: dict[str, Any] = {
                "shard": index,
                "path": self.router.shard_path(index),
                "writer": self._writers[index].stats(),
                "pool": pool.stats() if pool is not None else None,
            }
            stats.append(entry)
        return stats

    def pool_in_use(self) -> int:
        """Read leases out across every shard's pool (live gauge).

        Pools that were never created (no read ever touched that
        shard) count zero — they hold no leases by definition.
        """
        return sum(pool.in_use for pool in self._pools
                   if pool is not None)

    def data_version_vector(self) -> list[int]:
        """Per-shard data_version counters, as seen by the read pools.

        Leasing snoops ``PRAGMA data_version``, so a commit on any
        shard since the last read is reflected here — this vector is
        what keys every per-shard plan/statistics/term cache.
        """
        vector = []
        for index in self.router.all_shards():
            with self.shard_session(index) as session:
                vector.append(session.database.data_version)
        return vector

    # ------------------------------------------------------------------
    # StorageEngine: model management
    # ------------------------------------------------------------------

    def create_model(self, model_name: str, table_name: str = "",
                     column_name: str = "triple"):
        """Create a model on every shard (broadcast DDL).

        MODEL_IDs are shard-local and may differ between shards, which
        is why the whole engine addresses models by *name*.
        """
        results = self.broadcast(
            lambda store: store.create_model(model_name, table_name,
                                             column_name))
        return results[0]

    def drop_model(self, model_name: str) -> int:
        removed = self.broadcast(
            lambda store: store.drop_model(model_name))
        return sum(removed)

    def model_exists(self, model_name: str) -> bool:
        with self.shard_session(0) as session:
            return session.model_exists(model_name)

    # ------------------------------------------------------------------
    # StorageEngine: triples
    # ------------------------------------------------------------------

    def shard_of_triple(self, model_name: str, triple: Triple) -> int:
        return self.router.shard_of(model_name, triple.subject.lexical)

    def insert_triple(self, model_name: str, subject: str,
                      predicate: str, obj: str,
                      context: Context = Context.DIRECT
                      ) -> SDO_RDF_TRIPLE_S:
        return self.insert_triple_obj(
            model_name, Triple.from_text(subject, predicate, obj),
            context=context)

    def insert_triple_obj(self, model_name: str, triple: Triple,
                          context: Context = Context.DIRECT,
                          count_cost: bool = True) -> SDO_RDF_TRIPLE_S:
        shard, result = self._insert_obj(model_name, triple, context,
                                         count_cost)
        return self._handle(shard, result.link)

    def _insert_obj(self, model_name: str, triple: Triple,
                    context: Context, count_cost: bool = True):
        shard = self.shard_of_triple(model_name, triple)

        def job(store: RDFStore):
            info = store.models.get(model_name)
            return store.parser.insert(info, triple, context=context,
                                       count_cost=count_cost)

        return shard, self.call(shard, job)

    def insert_many(self, model_name: str,
                    triples: "Iterator[Triple] | list[Triple]",
                    context: Context = Context.DIRECT) -> int:
        """Bulk insert: one transaction per touched shard, committed in
        parallel — this is the sharded write-throughput fast path."""
        groups: dict[int, list[Triple]] = {}
        for triple in triples:
            shard = self.shard_of_triple(model_name, triple)
            groups.setdefault(shard, []).append(triple)
        futures = [
            self.submit(shard, lambda store, batch=batch:
                        store.insert_many(model_name, batch,
                                          context=context))
            for shard, batch in groups.items()]
        return sum(future.result() for future in futures)

    def bulk_load(self, model_name: str,
                  triples: "Iterator[Triple] | list[Triple]",
                  batch_size: int = 10_000) -> "BulkLoadReport":
        """Staged bulk load, one :class:`BulkLoader` per touched shard.

        This is the true parallel write path: the staged pipeline
        spends its time in long set-wise SQLite statements
        (``executemany`` staging, ``INSERT ... SELECT`` merges) that
        release the GIL, so the per-shard loads genuinely overlap —
        unlike :meth:`insert_many`, whose row-at-a-time Python loop
        serialises on the interpreter lock.  LINK_IDs come from each
        shard's stride (the loader consults
        :attr:`repro.core.links.LinkStore.id_range`).
        """
        from repro.core.bulkload import BulkLoader, BulkLoadReport

        groups: dict[int, list[Triple]] = {}
        for triple in triples:
            shard = self.shard_of_triple(model_name, triple)
            groups.setdefault(shard, []).append(triple)
        futures = [
            self.submit(shard, lambda store, batch=batch:
                        BulkLoader(store, model_name,
                                   batch_size=batch_size).load(batch))
            for shard, batch in groups.items()]
        reports = [future.result() for future in futures]
        return BulkLoadReport(
            staged=sum(r.staged for r in reports),
            new_values=sum(r.new_values for r in reports),
            new_links=sum(r.new_links for r in reports),
            duplicate_triples=sum(r.duplicate_triples
                                  for r in reports))

    def remove_triple(self, model_name: str, subject: str,
                      predicate: str, obj: str,
                      force: bool = False) -> bool:
        triple = Triple.from_text(subject, predicate, obj)
        shard = self.shard_of_triple(model_name, triple)
        return self.call(
            shard, lambda store: store.remove_triple(
                model_name, subject, predicate, obj, force=force))

    def find_link(self, model_name: str, subject: str, predicate: str,
                  obj: str) -> LinkRow | None:
        triple = Triple.from_text(subject, predicate, obj)
        shard = self.shard_of_triple(model_name, triple)
        with self.shard_session(shard) as session:
            return session.find_link(model_name, subject, predicate,
                                     obj)

    def is_triple(self, model_name: str, subject: str, predicate: str,
                  obj: str) -> bool:
        return self.find_link(model_name, subject, predicate, obj) \
            is not None

    def iter_model_triples(self, model_name: str) -> Iterator[Triple]:
        """All triples of a model, shard by shard.

        Each shard's triples are materialised under its own lease (a
        generator must not hold a pooled connection hostage while the
        caller dawdles); order is shard-major, LINK_ID-minor.
        """
        for index in self.router.all_shards():
            with self.shard_session(index) as session:
                chunk = list(session.iter_model_triples(model_name))
            yield from chunk

    def count_triples(self, model_name: str | None = None) -> int:
        """Total triples across every shard (optionally one model)."""
        total = 0
        for index in self.router.all_shards():
            with self.shard_session(index) as session:
                model_id = None
                if model_name is not None:
                    model_id = session.models.get(model_name).model_id
                total += session.links.count(model_id)
        return total

    # ------------------------------------------------------------------
    # reification — LINK_IDs name their shard, so DBUris still resolve
    # ------------------------------------------------------------------

    def get_triple_s(self, link_id: int) -> SDO_RDF_TRIPLE_S:
        shard = shard_of_link_id(link_id)
        self._check_shard_of_link(shard, link_id)
        with self.shard_session(shard) as session:
            link = session.links.get(link_id)
        return self._handle(shard, link)

    def triple_of(self, link_id: int) -> Triple:
        shard = shard_of_link_id(link_id)
        self._check_shard_of_link(shard, link_id)
        with self.shard_session(shard) as session:
            return session.triple_of(link_id)

    def reify_triple(self, model_name: str,
                     rdf_t_id: int) -> SDO_RDF_TRIPLE_S:
        """The reification constructor on a partitioned store.

        The base triple lives on the shard its LINK_ID names; the
        reification *statement* routes by its own subject (the DBUri
        text) and may land on a different shard — which is fine, the
        DBUri resolves by LINK_ID, not by co-location.
        """
        source = shard_of_link_id(rdf_t_id)
        self._check_shard_of_link(source, rdf_t_id)
        with self.shard_session(source) as session:
            if not session.links.exists(rdf_t_id):
                raise TripleNotFoundError(rdf_t_id)
        resource = URI(DBUri.for_link(rdf_t_id).text)
        statement = Triple(resource, _RDF_TYPE, _RDF_STATEMENT)
        return self.insert_triple_obj(model_name, statement)

    def is_reified_id(self, model_name: str, rdf_t_id: int) -> bool:
        shard = self.router.shard_of(
            model_name, DBUri.for_link(rdf_t_id).text)
        with self.shard_session(shard) as session:
            return session.is_reified_id(model_name, rdf_t_id)

    def is_reified(self, model_name: str, subject: str, predicate: str,
                   obj: str) -> bool:
        link = self.find_link(model_name, subject, predicate, obj)
        if link is None:
            return False
        return self.is_reified_id(model_name, link.link_id)

    def assert_about(self, model_name: str, subject: str,
                     predicate: str, rdf_t_id: int) -> SDO_RDF_TRIPLE_S:
        source = shard_of_link_id(rdf_t_id)
        self._check_shard_of_link(source, rdf_t_id)
        with self.shard_session(source) as session:
            if not session.links.exists(rdf_t_id):
                raise TripleNotFoundError(rdf_t_id)
        if not self.is_reified_id(model_name, rdf_t_id):
            self.reify_triple(model_name, rdf_t_id)
        resource = DBUri.for_link(rdf_t_id).text
        assertion = Triple.from_text(subject, predicate, resource)
        return self.insert_triple_obj(model_name, assertion)

    def assert_implied(self, model_name: str, reif_sub: str,
                       reif_prop: str, subject: str, predicate: str,
                       obj: str) -> SDO_RDF_TRIPLE_S:
        base = Triple.from_text(subject, predicate, obj)
        _, result = self._insert_obj(model_name, base,
                                     Context.INDIRECT, count_cost=False)
        base_id = result.link_id
        if not self.is_reified_id(model_name, base_id):
            self.reify_triple(model_name, base_id)
        resource = DBUri.for_link(base_id).text
        assertion = Triple.from_text(reif_sub, reif_prop, resource)
        return self.insert_triple_obj(model_name, assertion)

    def _check_shard_of_link(self, shard: int, link_id: int) -> None:
        if not 0 <= shard < self.shard_count:
            raise TripleNotFoundError(link_id)

    def _handle(self, shard: int, link: LinkRow) -> SDO_RDF_TRIPLE_S:
        return SDO_RDF_TRIPLE_S(
            rdf_t_id=link.link_id, rdf_m_id=link.model_id,
            rdf_s_id=link.start_node_id, rdf_p_id=link.p_value_id,
            rdf_o_id=link.end_node_id,
            _store=_ShardReader(self, shard))

    # ------------------------------------------------------------------
    # querying
    # ------------------------------------------------------------------

    @property
    def result_cache(self):
        """The attached :class:`~repro.cache.ResultCache`, or None.

        Sharded entries key on the whole per-shard data-version
        *vector* (a tuple), so a committed write on any shard
        invalidates — the cache only ever compares versions for
        equality, which makes the vector form work unchanged.
        """
        return self._result_cache

    def enable_result_cache(self, max_bytes: int | None = None):
        """Attach a fresh result cache over the scatter path."""
        from repro.cache import ResultCache
        self._result_cache = ResultCache(max_bytes=max_bytes)
        return self._result_cache

    def attach_result_cache(self, cache) -> None:
        """Attach an existing cache, or None to detach."""
        self._result_cache = cache

    def scatter_match(self, query: str, models: Sequence[str],
                      rulebases: Sequence[str] = (),
                      aliases=None, filter: str | None = None,
                      order_by: str | None = None,
                      limit: int | None = None,
                      explain: bool = False, optimize: bool = True):
        """Scatter-gather SDO_RDF_MATCH — ``sdo_rdf_match`` delegates
        here for any store that defines this method."""
        from repro.inference.scatter import scatter_match
        cache = self._result_cache
        cache_key = None
        cache_version = None
        if cache is not None and optimize and not explain:
            from repro.cache import normalized_key
            from repro.cache.result_cache import estimate_bytes
            cache_key = normalized_key(query, models, rulebases,
                                       aliases, filter, order_by, limit)
            # Version vector read before the scatter, per the usual
            # rule: a racing write can only make the stored rows newer
            # than their key, never older.
            cache_version = tuple(self.data_version_vector())
            cached = cache.lookup(cache_key, cache_version)
            if cached is not None:
                return list(cached)
        result = scatter_match(self, query, models, rulebases=rulebases,
                               aliases=aliases, filter=filter,
                               order_by=order_by, limit=limit,
                               explain=explain, optimize=optimize)
        if explain:
            if cache is not None and optimize:
                from repro.cache import normalized_key
                if cache.would_serve(
                        normalized_key(query, models, rulebases,
                                       aliases, filter, order_by,
                                       limit),
                        tuple(self.data_version_vector())):
                    result.engine = "cache"
            return result
        if cache_key is not None:
            cache.store(cache_key, cache_version, result,
                        nbytes=estimate_bytes(
                            [row.as_dict() for row in result]))
        return result

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    def close(self) -> None:
        """Drain every writer, close every pool (idempotent)."""
        if self._closed:
            return
        self._closed = True
        for writer in self._writers:
            try:
                writer.stop(drain=True)
            except Exception:  # pragma: no cover - defensive
                pass
        for pool in self._pools:
            if pool is not None:
                pool.close()
        self._executor.shutdown(wait=False)

    @property
    def closed(self) -> bool:
        return self._closed

    def __repr__(self) -> str:
        return (f"ShardedRDFStore(base={self.router.base_path!r}, "
                f"shards={self.shard_count}, "
                f"durability={self._durability!r})")

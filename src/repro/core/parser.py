"""The triple insert pipeline (paper section 4.1).

When a triple is inserted:

1. the model must exist;
2. each component's text value is looked up in ``rdf_value$`` (inserted
   and assigned a VALUE_ID when new);
3. subject and object values are registered as NDM nodes in
   ``rdf_node$`` — "nodes are stored only once, regardless of the number
   of times they participate in triples";
4. blank nodes are tracked per model in ``rdf_blank_node$``;
5. ``rdf_link$`` is checked for the triple in the target model: if it is
   already there, the existing IDs are returned and COST is incremented
   ("the IDs for the previously inserted triple are returned ... no new
   inserts are made"); otherwise a new link row is created.

Deletion reverses the pipeline: COST decrements, the link goes away at
zero, and nodes are removed only when no other links touch them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.core.links import Context, LinkRow, LinkStore, LinkType
from repro.core.models import ModelInfo, ModelRegistry
from repro.core.schema import BLANK_NODE_TABLE, NODE_TABLE
from repro.core.values import ValueStore
from repro.db.dburi import DBUri, is_dburi
from repro.rdf.canonical import canonical_term
from repro.rdf.terms import BlankNode, RDFTerm, URI
from repro.rdf.triple import Triple

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.db.connection import Database


@dataclass(frozen=True, slots=True)
class InsertResult:
    """Outcome of one triple insert: the link row plus a newness flag."""

    link: LinkRow
    created: bool

    @property
    def link_id(self) -> int:
        return self.link.link_id


class TripleParser:
    """The section 4.1 pipeline bound to one database."""

    def __init__(self, database: "Database", values: ValueStore,
                 links: LinkStore, models: ModelRegistry) -> None:
        self._db = database
        self._values = values
        self._links = links
        self._models = models
        self._delta_hook = None

    def set_delta_hook(self, hook) -> None:
        """Register ``hook(model, added_triples, removed_triples)``.

        Called inside the insert/remove transaction whenever a model's
        triple set actually changes (a new link row, or a link row
        going away — COST-only updates don't fire).  The store uses
        this to maintain incremental rules indexes atomically with the
        base write: a hook failure rolls the base write back too.
        """
        self._delta_hook = hook

    # ------------------------------------------------------------------
    # insert
    # ------------------------------------------------------------------

    def insert(self, model: ModelInfo, triple: Triple,
               context: Context = Context.DIRECT,
               count_cost: bool = True) -> InsertResult:
        """Insert ``triple`` into ``model``; dedupes against rdf_link$.

        ``context`` is INDIRECT for base triples created by the
        reification constructors (section 5.2).  ``count_cost`` is False
        for internal inserts that do not correspond to an application
        table row (the COST column counts application rows only).
        """
        try:
            with self._db.transaction():
                subject_id = self._register_node(model, triple.subject)
                predicate_id = self._values.lookup_or_insert(
                    triple.predicate)
                object_id = self._register_node(model, triple.object)
                existing = self._links.find(
                    model.model_id, subject_id, predicate_id, object_id)
                if existing is not None:
                    return self._merge_existing(existing, context,
                                                count_cost)
                canon_id = self._canonical_object_id(triple.object,
                                                     object_id)
                link = self._links.insert(
                    model_id=model.model_id,
                    start_node_id=subject_id,
                    p_value_id=predicate_id,
                    end_node_id=object_id,
                    canon_end_node_id=canon_id,
                    link_type=LinkType.for_predicate(triple.predicate),
                    context=context,
                    reif_link=self._references_reified(triple))
                if not count_cost:
                    # insert() seeds COST=1 assuming an application row;
                    # internal inserts start at 0.
                    self._links.decrement_cost(link.link_id)
                    link = self._links.get(link.link_id)
                if self._delta_hook is not None:
                    self._delta_hook(model, (triple,), ())
                return InsertResult(link, created=True)
        except BaseException:
            # The rollback discards value ids allocated in this scope;
            # the cache must not keep handing them out.
            self._values.invalidate_cache()
            raise

    def _merge_existing(self, existing: LinkRow, context: Context,
                        count_cost: bool) -> InsertResult:
        """Reconcile a duplicate insert with the stored row."""
        if (existing.context is Context.INDIRECT
                and context is Context.DIRECT):
            # Section 5.2 note: an implied triple subsequently entered
            # as a fact flips from 'I' to 'D'.
            self._links.promote_context(existing.link_id)
        if count_cost:
            self._links.increment_cost(existing.link_id)
        return InsertResult(self._links.get(existing.link_id),
                            created=False)

    def _register_node(self, model: ModelInfo, term: RDFTerm) -> int:
        """VALUE_ID of ``term``, registering it in rdf_node$ (and
        rdf_blank_node$ for blank nodes)."""
        value_id = self._values.lookup_or_insert(term)
        self._db.execute(
            f'INSERT OR IGNORE INTO "{NODE_TABLE}" (node_id, node_type) '
            "VALUES (?, ?)", (value_id, term.value_type.value))
        if isinstance(term, BlankNode):
            self._db.execute(
                f'INSERT OR IGNORE INTO "{BLANK_NODE_TABLE}" '
                "(value_id, model_id, orig_label) VALUES (?, ?, ?)",
                (value_id, model.model_id, term.label))
        return value_id

    def _canonical_object_id(self, obj: RDFTerm, object_id: int) -> int:
        """VALUE_ID of the canonical form of the object."""
        canonical = canonical_term(obj)
        if canonical == obj:
            return object_id
        return self._values.lookup_or_insert(canonical)

    @staticmethod
    def _references_reified(triple: Triple) -> bool:
        """REIF_LINK: does any component reference a reified triple?"""
        for term in triple:
            if isinstance(term, URI) and is_dburi(term.value):
                return True
        return False

    # ------------------------------------------------------------------
    # delete
    # ------------------------------------------------------------------

    def remove(self, model: ModelInfo, triple: Triple,
               force: bool = False) -> bool:
        """Remove one application reference to ``triple``.

        COST decrements per application row; the link row disappears when
        COST reaches zero (or immediately with ``force=True``), and
        "the nodes attached to this link are not removed if there are
        other links connected to them" (section 4).  Returns True when
        the link row itself was deleted.
        """
        subject_id = self._values.find_id(triple.subject)
        predicate_id = self._values.find_id(triple.predicate)
        object_id = self._values.find_id(triple.object)
        if None in (subject_id, predicate_id, object_id):
            return False
        link = self._links.find(model.model_id, subject_id, predicate_id,
                                object_id)
        if link is None:
            return False
        with self._db.transaction():
            if not force:
                remaining = self._links.decrement_cost(link.link_id)
                if remaining > 0:
                    return False
            removed_triples = [triple]
            self._links.delete(link.link_id)
            self._cascade_reification(model, link.link_id,
                                      removed_triples)
            self._collect_node(subject_id)
            self._collect_node(object_id)
            if self._delta_hook is not None:
                self._delta_hook(model, (), tuple(removed_triples))
        return True

    def _link_triple(self, link: LinkRow) -> Triple:
        """The stored triple of a link row, resolved back to terms."""
        terms = self._values.get_terms(
            {link.start_node_id, link.p_value_id, link.end_node_id})
        predicate = terms[link.p_value_id]
        assert isinstance(predicate, URI)
        return Triple(terms[link.start_node_id], predicate,
                      terms[link.end_node_id])

    def _cascade_reification(self, model: ModelInfo, link_id: int,
                             removed_triples: list[Triple] | None = None
                             ) -> None:
        """Remove statements referencing the deleted triple's DBUri.

        The paper removes the link when a triple is deleted; its
        streamlined reification statement (and assertions about it)
        would otherwise dangle on a DBUri that no longer resolves.
        Cascades recursively, since a reification statement can itself
        be reified.
        """
        dburi_id = self._values.find_id(URI(DBUri.for_link(link_id).text))
        if dburi_id is None:
            return
        dependent_ids = [row["link_id"] for row in self._db.query_all(
            'SELECT link_id FROM "rdf_link$" WHERE model_id = ? '
            "AND (start_node_id = ? OR end_node_id = ?)",
            (model.model_id, dburi_id, dburi_id))]
        for dependent_id in dependent_ids:
            dependent = self._links.get(dependent_id)
            if removed_triples is not None:
                removed_triples.append(self._link_triple(dependent))
            self._links.delete(dependent_id)
            self._cascade_reification(model, dependent_id,
                                      removed_triples)
            self._collect_node(dependent.start_node_id)
            self._collect_node(dependent.end_node_id)

    def _collect_node(self, node_id: int) -> None:
        """Drop the rdf_node$ row when no links touch the node."""
        if self._links.node_in_use(node_id):
            return
        self._db.execute(
            f'DELETE FROM "{BLANK_NODE_TABLE}" WHERE value_id = ?',
            (node_id,))
        self._db.execute(
            f'DELETE FROM "{NODE_TABLE}" WHERE node_id = ?', (node_id,))

    def remove_model_triples(self, model: ModelInfo) -> int:
        """Bulk-delete every triple of a model (used by DROP model)."""
        removed = 0
        for link in list(self._links.iter_model(model.model_id)):
            self._links.delete(link.link_id)
            self._collect_node(link.start_node_id)
            self._collect_node(link.end_node_id)
            removed += 1
        self._db.execute(
            f'DELETE FROM "{BLANK_NODE_TABLE}" WHERE model_id = ?',
            (model.model_id,))
        return removed

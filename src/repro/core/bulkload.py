"""Bulk loading into the central schema.

Section 7.3 of the paper describes the load path for large datasets:
the input is staged in full (temporary tables, deleted at the end of
the loading process) before triples are inserted.  This module
implements that pipeline:

1. parse the input (N-Triples file/stream or an iterable of triples)
   into the staging table ``rdf_stage$``;
2. merge new text values into ``rdf_value$`` set-wise (one INSERT ...
   SELECT instead of one lookup per component);
3. register nodes and insert the new link rows set-wise, deduplicating
   against existing triples of the model;
4. drop the staging rows.

For large inputs this is much faster than the row-at-a-time
:meth:`repro.core.store.RDFStore.insert_triple` path (the LOAD
benchmark quantifies it), at the cost of the temporary staging space
the paper mentions.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import IO, Iterable

from repro.core.links import LinkType
from repro.core.schema import (
    BLANK_NODE_TABLE,
    LINK_TABLE,
    NODE_TABLE,
    VALUE_TABLE,
)
from repro.core.store import RDFStore
from repro.core.values import _decompose
from repro.rdf.canonical import canonical_term
from repro.rdf.ntriples import parse_ntriples
from repro.rdf.triple import Triple

STAGE_TABLE = "rdf_stage$"

_STAGE_DDL = f"""
CREATE TABLE IF NOT EXISTS "{STAGE_TABLE}" (
    stage_id   INTEGER PRIMARY KEY,
    s_name     TEXT NOT NULL, s_type TEXT NOT NULL,
    s_ltype    TEXT, s_lang TEXT, s_long TEXT,
    p_name     TEXT NOT NULL, p_type TEXT NOT NULL,
    p_ltype    TEXT, p_lang TEXT, p_long TEXT,
    o_name     TEXT NOT NULL, o_type TEXT NOT NULL,
    o_ltype    TEXT, o_lang TEXT, o_long TEXT,
    c_name     TEXT NOT NULL, c_type TEXT NOT NULL,
    c_ltype    TEXT, c_lang TEXT, c_long TEXT,
    link_type  TEXT NOT NULL
);
"""


@dataclass(frozen=True, slots=True)
class BulkLoadReport:
    """Outcome of one bulk load."""

    staged: int
    new_values: int
    new_links: int
    duplicate_triples: int


class BulkLoader:
    """Set-based loader bound to one store and model."""

    def __init__(self, store: RDFStore, model_name: str,
                 batch_size: int = 10_000) -> None:
        self._store = store
        self._db = store.database
        self._model = store.models.get(model_name)
        self._batch_size = batch_size
        # A single CREATE TABLE: execute() keeps it legal inside an
        # open transaction scope (executescript would not be).
        self._db.execute(_STAGE_DDL)

    # ------------------------------------------------------------------
    # entry points
    # ------------------------------------------------------------------

    def load_file(self, path: str | Path) -> BulkLoadReport:
        """Bulk-load an RDF file; format chosen by extension.

        ``.ttl``/``.turtle`` parse as Turtle, ``.rdf``/``.xml``/``.owl``
        as RDF/XML, everything else as N-Triples.
        """
        path = Path(path)
        suffix = path.suffix.lower()
        if suffix in (".ttl", ".turtle"):
            from repro.rdf.turtle import parse_turtle

            return self.load(parse_turtle(
                path.read_text(encoding="utf-8")))
        if suffix in (".rdf", ".xml", ".owl"):
            from repro.rdf.rdfxml import parse_rdfxml

            return self.load(parse_rdfxml(
                path.read_text(encoding="utf-8")))
        with open(path, encoding="utf-8") as stream:
            return self.load(parse_ntriples(stream))

    def load_stream(self, stream: IO[str]) -> BulkLoadReport:
        """Bulk-load an N-Triples text stream."""
        return self.load(parse_ntriples(stream))

    def load(self, triples: Iterable[Triple]) -> BulkLoadReport:
        """Bulk-load parsed triples.

        The entire input is staged before any central-schema insert —
        the same whole-input-first behaviour the paper describes.
        """
        observer = self._db.observer
        maintenance = self._store.rules_maintenance_targets(
            self._model.model_name)
        with observer.span("bulkload.load",
                           model=self._model.model_name) as span:
            try:
                with self._db.transaction():
                    with observer.span("bulkload.stage") as stage_span:
                        staged = self._stage(triples)
                        stage_span.set("staged", staged)
                    with observer.span("bulkload.merge_values") as mv_span:
                        new_values = self._merge_values()
                        mv_span.set("new_values", new_values)
                    # Maintenance needs the exact triples this load
                    # creates (duplicates excluded) — snapshot the link
                    # counter so they can be read back after the merge.
                    link_floor = self._max_link_id() if maintenance \
                        else 0
                    with observer.span("bulkload.merge_links") as ml_span:
                        new_links = self._merge_links()
                        ml_span.set("new_links", new_links)
                    self._fix_reif_flags()
                    self._db.execute(f'DELETE FROM "{STAGE_TABLE}"')
                    if new_links:
                        self._store.links.bump_model_version(
                            self._model.model_id)
                    if maintenance and new_links:
                        # Same transaction as the merge: the indexes
                        # and the base rows commit (or roll back)
                        # together.
                        self._store.values.invalidate_cache()
                        self._store.run_rules_maintenance(
                            maintenance,
                            self._new_link_triples(link_floor), (),
                            self._model)
            except BaseException:
                self._discard_staged()
                raise
            self._store.values.invalidate_cache()
            if new_links:
                self._db.bump_data_version()
                # Keep the planner's selectivity estimates current.
                with observer.span("bulkload.analyze"):
                    self._db.analyze()
            span.set("staged", staged)
            span.set("new_links", new_links)
            if observer.enabled:
                observer.counter("bulkload.triples_staged").inc(staged)
                observer.counter("bulkload.links_created").inc(new_links)
        return BulkLoadReport(staged, new_values, new_links,
                              staged - new_links)

    def _max_link_id(self) -> int:
        row = self._db.query_one(
            f'SELECT IFNULL(MAX(link_id), 0) AS floor FROM "{LINK_TABLE}"')
        return row["floor"]

    def _new_link_triples(self, link_floor: int) -> list[Triple]:
        """The triples whose link rows this load created."""
        rows = self._db.query_all(
            "SELECT start_node_id, p_value_id, end_node_id "
            f'FROM "{LINK_TABLE}" WHERE model_id = ? AND link_id > ?',
            (self._model.model_id, link_floor))
        wanted: set[int] = set()
        for row in rows:
            wanted.update((row[0], row[1], row[2]))
        terms = self._store.values.get_terms(wanted)
        return [Triple(terms[row[0]], terms[row[1]], terms[row[2]])
                for row in rows]

    def _discard_staged(self) -> None:
        """Drop staging rows after a failed load.

        The transaction rollback already removes rows staged inside
        it, but a load that fails while nested in a caller's
        transaction (SAVEPOINT rollback) — or is interrupted between
        scopes — must not leak its staging rows into the next load.
        Best effort: a dead connection is ignored, the next load's
        rollback protection still holds.
        """
        from repro.errors import StorageError

        try:
            self._db.execute(f'DELETE FROM "{STAGE_TABLE}"')
        except StorageError:  # pragma: no cover - dead connection
            pass

    # ------------------------------------------------------------------
    # pipeline stages
    # ------------------------------------------------------------------

    def _stage(self, triples: Iterable[Triple]) -> int:
        rows: list[tuple] = []
        staged = 0
        insert_sql = (
            f'INSERT INTO "{STAGE_TABLE}" '
            "(s_name, s_type, s_ltype, s_lang, s_long,"
            " p_name, p_type, p_ltype, p_lang, p_long,"
            " o_name, o_type, o_ltype, o_lang, o_long,"
            " c_name, c_type, c_ltype, c_lang, c_long, link_type)"
            " VALUES (" + ", ".join("?" * 21) + ")")
        batch_counter = self._db.observer.counter(
            "bulkload.batches", "staging batches written")
        # Per-term memoisation: RDF inputs repeat subjects, predicates
        # and objects heavily, and this loop is the load's dominant
        # Python cost (decompose + classify per component).  Bounded —
        # a pathological all-distinct input cannot grow them without
        # limit.  Keeping the loop lean matters twice on the sharded
        # engine: the staging loop holds the GIL, so it is the part of
        # a per-shard load that cannot overlap with its siblings.
        dec_cache: dict = {}
        canon_cache: dict = {}
        type_cache: dict = {}
        for triple in triples:
            subject, predicate, obj = (triple.subject, triple.predicate,
                                       triple.object)
            s_row = dec_cache.get(subject)
            if s_row is None:
                s_row = dec_cache[subject] = _decompose(subject)
            p_row = dec_cache.get(predicate)
            if p_row is None:
                p_row = dec_cache[predicate] = _decompose(predicate)
            o_row = dec_cache.get(obj)
            if o_row is None:
                o_row = dec_cache[obj] = _decompose(obj)
            c_row = canon_cache.get(obj)
            if c_row is None:
                c_row = canon_cache[obj] = _decompose(
                    canonical_term(obj))
            link_type = type_cache.get(predicate)
            if link_type is None:
                link_type = type_cache[predicate] = \
                    LinkType.for_predicate(predicate).value
            rows.append(s_row + p_row + o_row + c_row + (link_type,))
            staged += 1
            if len(rows) >= self._batch_size:
                self._db.executemany(insert_sql, rows)
                batch_counter.inc()
                rows = []
                if len(dec_cache) > 100_000:
                    dec_cache.clear()
                    canon_cache.clear()
        if rows:
            self._db.executemany(insert_sql, rows)
            batch_counter.inc()
        return staged

    def _merge_values(self) -> int:
        """INSERT ... SELECT the distinct new text values."""
        before = self._db.row_count(VALUE_TABLE)
        for role in ("s", "p", "o", "c"):
            self._db.execute(
                f'INSERT OR IGNORE INTO "{VALUE_TABLE}" '
                "(value_name, value_type, literal_type, language_type,"
                " long_value) "
                f"SELECT DISTINCT {role}_name, {role}_type, "
                f"{role}_ltype, {role}_lang, {role}_long "
                f'FROM "{STAGE_TABLE}"')
        return self._db.row_count(VALUE_TABLE) - before

    def _value_join(self, role: str, alias: str) -> str:
        """Join predicate matching a staged component to rdf_value$."""
        return (f"{alias}.value_name = st.{role}_name "
                f"AND {alias}.value_type = st.{role}_type "
                f"AND IFNULL({alias}.literal_type, '') "
                f"= IFNULL(st.{role}_ltype, '') "
                f"AND IFNULL({alias}.language_type, '') "
                f"= IFNULL(st.{role}_lang, '') "
                f"AND IFNULL({alias}.long_value, '') "
                f"= IFNULL(st.{role}_long, '')")

    def _merge_links(self) -> int:
        """Register nodes and insert the deduplicated link rows."""
        # Nodes: every staged subject and object value.
        for role in ("s", "o"):
            self._db.execute(
                f'INSERT OR IGNORE INTO "{NODE_TABLE}" '
                "(node_id, node_type) "
                f"SELECT DISTINCT v.value_id, v.value_type "
                f'FROM "{STAGE_TABLE}" st JOIN "{VALUE_TABLE}" v '
                f"ON {self._value_join(role, 'v')}")
            # Blank nodes of this model.
            self._db.execute(
                f'INSERT OR IGNORE INTO "{BLANK_NODE_TABLE}" '
                "(value_id, model_id, orig_label) "
                f"SELECT DISTINCT v.value_id, ?, "
                f"SUBSTR(st.{role}_name, 3) "
                f'FROM "{STAGE_TABLE}" st JOIN "{VALUE_TABLE}" v '
                f"ON {self._value_join(role, 'v')} "
                f"WHERE st.{role}_type = 'BN'",
                (self._model.model_id,))
        before = self._db.row_count(LINK_TABLE)
        # COST starts at 0: bulk-loaded triples have no application rows.
        distinct_links = (
            "SELECT DISTINCT sv.value_id AS s_id, pv.value_id AS p_id, "
            "ov.value_id AS o_id, cv.value_id AS c_id, st.link_type "
            "AS link_type, "
            "CASE WHEN st.s_name LIKE '/ORADB/%' "
            "OR st.p_name LIKE '/ORADB/%' "
            "OR st.o_name LIKE '/ORADB/%' THEN 'Y' ELSE 'N' END "
            "AS reif_link "
            f'FROM "{STAGE_TABLE}" st '
            f'JOIN "{VALUE_TABLE}" sv ON {self._value_join("s", "sv")} '
            f'JOIN "{VALUE_TABLE}" pv ON {self._value_join("p", "pv")} '
            f'JOIN "{VALUE_TABLE}" ov ON {self._value_join("o", "ov")} '
            f'JOIN "{VALUE_TABLE}" cv ON {self._value_join("c", "cv")}')
        id_range = self._store.links.id_range
        if id_range is None:
            # Single-file store: SQLite's implicit rowid allocation.
            self._db.execute(
                f'INSERT OR IGNORE INTO "{LINK_TABLE}" '
                "(start_node_id, p_value_id, end_node_id,"
                " canon_end_node_id, link_type, cost, context,"
                " reif_link, model_id) "
                "SELECT s_id, p_id, o_id, c_id, link_type, 0, 'D', "
                f"reif_link, ? FROM ({distinct_links})",
                (self._model.model_id,))
        else:
            # Sharded store: explicit LINK_IDs numbered upward from
            # the shard's stride floor.  Duplicate triples still hit
            # the natural-key unique index and are ignored, leaving
            # gaps in the numbering — harmless, the stride only has
            # to stay globally unique and shard-identifying.
            low, high = id_range
            self._db.execute(
                f'INSERT OR IGNORE INTO "{LINK_TABLE}" '
                "(link_id, start_node_id, p_value_id, end_node_id,"
                " canon_end_node_id, link_type, cost, context,"
                " reif_link, model_id) "
                "SELECT (SELECT IFNULL(MAX(link_id), ? - 1) "
                f'FROM "{LINK_TABLE}" '
                "WHERE link_id >= ? AND link_id < ?)"
                " + ROW_NUMBER() OVER (), "
                "s_id, p_id, o_id, c_id, link_type, 0, 'D', "
                f"reif_link, ? FROM ({distinct_links})",
                (low, low, high, self._model.model_id))
        return self._db.row_count(LINK_TABLE) - before

    def _fix_reif_flags(self) -> None:
        """Reconcile REIF_LINK with the strict DBUri grammar.

        The SQL merge approximates DBUri detection with a LIKE prefix;
        the few candidate rows (any component starting ``/ORADB/``) are
        re-checked here with the real parser so the flag always agrees
        with :func:`repro.db.dburi.is_dburi` — the invariant the
        integrity checker enforces.
        """
        rows = self._db.query_all(
            f'SELECT l.link_id, sv.value_name AS s_name, '
            "pv.value_name AS p_name, ov.value_name AS o_name, "
            "l.reif_link "
            f'FROM "{LINK_TABLE}" l '
            f'JOIN "{VALUE_TABLE}" sv ON sv.value_id = l.start_node_id '
            f'JOIN "{VALUE_TABLE}" pv ON pv.value_id = l.p_value_id '
            f'JOIN "{VALUE_TABLE}" ov ON ov.value_id = l.end_node_id '
            "WHERE l.model_id = ? AND (sv.value_name LIKE '/ORADB/%' "
            "OR pv.value_name LIKE '/ORADB/%' "
            "OR ov.value_name LIKE '/ORADB/%')",
            (self._model.model_id,))
        for row in rows:
            actual = any(_is_dburi_text(row[name])
                         for name in ("s_name", "p_name", "o_name"))
            flagged = row["reif_link"] == "Y"
            if actual != flagged:
                self._db.execute(
                    f'UPDATE "{LINK_TABLE}" SET reif_link = ? '
                    "WHERE link_id = ?",
                    ("Y" if actual else "N", row["link_id"]))


def _is_dburi_text(text: str) -> bool:
    from repro.db.dburi import is_dburi

    return is_dburi(text)


def bulk_load_ntriples(store: RDFStore, model_name: str,
                       path: str | Path) -> BulkLoadReport:
    """One-call convenience: bulk-load an N-Triples file into a model."""
    return BulkLoader(store, model_name).load_file(path)

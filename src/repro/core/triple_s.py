"""The RDF object types: SDO_RDF_TRIPLE and SDO_RDF_TRIPLE_S.

``SDO_RDF_TRIPLE`` is the *triple view*: plain subject/property/object
strings.  ``SDO_RDF_TRIPLE_S`` (RDF triple *storage*) is what application
tables persist: five IDs pointing at the triple in the central schema
(paper Figure 5/6)::

    rdf_t_id  — LINK_ID        (the unique triple ID)
    rdf_m_id  — MODEL_ID       (the graph)
    rdf_s_id  — START_NODE_ID  (subject VALUE_ID)
    rdf_p_id  — P_VALUE_ID     (predicate VALUE_ID)
    rdf_o_id  — END_NODE_ID    (object VALUE_ID)

The PL/SQL type has several constructors (sections 4.2 and 5); here they
are all reachable through :meth:`SDO_RDF_TRIPLE_S.construct`, which
dispatches on the argument shapes exactly as Oracle overload resolution
would:

* ``(model, subject, property, object)``      — insert/lookup a triple;
* ``(model, rdf_t_id)``                       — reify an existing triple;
* ``(model, subject, property, rdf_t_id)``    — assert about a triple;
* ``(model, reif_sub, reif_prop, s, p, o)``   — assert about an implied
  (or existing) statement.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.errors import ReproError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.store import RDFStore


@dataclass(frozen=True, slots=True)
class SDO_RDF_TRIPLE:
    """The triple view of RDF data: plain text components."""

    subject: str
    property: str
    object: str

    def __str__(self) -> str:
        return f"<{self.subject}, {self.property}, {self.object}>"


@dataclass(frozen=True)
class SDO_RDF_TRIPLE_S:
    """The persistent RDF triple storage object: five reference IDs.

    Equality and hashing consider only the IDs, so two handles to the
    same stored triple compare equal regardless of which store object
    resolved them.
    """

    rdf_t_id: int
    rdf_m_id: int
    rdf_s_id: int
    rdf_p_id: int
    rdf_o_id: int
    _store: "RDFStore | None" = field(default=None, compare=False,
                                      repr=False)

    # ------------------------------------------------------------------
    # constructors (Oracle overloads)
    # ------------------------------------------------------------------

    @classmethod
    def construct(cls, store: "RDFStore", model_name: str,
                  *args: object) -> "SDO_RDF_TRIPLE_S":
        """Dispatch to the right constructor overload.

        See the module docstring for the four signatures.  Raises
        :class:`repro.errors.ReproError` for shapes that match none.
        """
        if len(args) == 3 and all(isinstance(a, str) for a in args):
            subject, predicate, obj = args
            return store.insert_triple(model_name, subject, predicate, obj)
        if len(args) == 1 and isinstance(args[0], int):
            return store.reify_triple(model_name, args[0])
        if (len(args) == 3 and isinstance(args[0], str)
                and isinstance(args[1], str) and isinstance(args[2], int)):
            subject, predicate, rdf_t_id = args
            return store.assert_about(model_name, subject, predicate,
                                      rdf_t_id)
        if len(args) == 5 and all(isinstance(a, str) for a in args):
            reif_sub, reif_prop, subject, predicate, obj = args
            return store.assert_implied(model_name, reif_sub, reif_prop,
                                        subject, predicate, obj)
        raise ReproError(
            "no SDO_RDF_TRIPLE_S constructor matches arguments "
            f"({model_name!r}, {', '.join(repr(a) for a in args)})")

    # ------------------------------------------------------------------
    # member functions
    # ------------------------------------------------------------------

    def _require_store(self) -> "RDFStore":
        if self._store is None:
            raise ReproError(
                "this SDO_RDF_TRIPLE_S is detached; resolve member "
                "functions through a store (store.attach(obj))")
        return self._store

    def get_triple(self) -> SDO_RDF_TRIPLE:
        """GET_TRIPLE(): the subject/property/object text view."""
        store = self._require_store()
        return SDO_RDF_TRIPLE(
            subject=store.lexical_of(self.rdf_s_id),
            property=store.lexical_of(self.rdf_p_id),
            object=store.lexical_of(self.rdf_o_id))

    def get_subject(self) -> str:
        """GET_SUBJECT(): the subject text."""
        return self._require_store().lexical_of(self.rdf_s_id)

    def get_property(self) -> str:
        """GET_PROPERTY(): the predicate text."""
        return self._require_store().lexical_of(self.rdf_p_id)

    def get_object(self) -> str:
        """GET_OBJECT(): the object text.

        Returns the full text even for long literals — the CLOB return
        type of the PL/SQL member function.
        """
        return self._require_store().lexical_of(self.rdf_o_id)

    def with_store(self, store: "RDFStore") -> "SDO_RDF_TRIPLE_S":
        """A copy of this object attached to ``store``."""
        return SDO_RDF_TRIPLE_S(self.rdf_t_id, self.rdf_m_id,
                                self.rdf_s_id, self.rdf_p_id,
                                self.rdf_o_id, store)

    def ids(self) -> tuple[int, int, int, int, int]:
        """The five stored IDs as a tuple (Figure 6 layout)."""
        return (self.rdf_t_id, self.rdf_m_id, self.rdf_s_id,
                self.rdf_p_id, self.rdf_o_id)

    def __str__(self) -> str:
        return ("SDO_RDF_TRIPLE_S ("
                f"{self.rdf_t_id}, {self.rdf_m_id}, {self.rdf_s_id}, "
                f"{self.rdf_p_id}, {self.rdf_o_id})")

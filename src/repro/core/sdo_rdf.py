"""The SDO_RDF package: procedural access to the RDF store.

Mirrors the PL/SQL package of the paper (sections 4.3 and 6): functions
and procedures for managing the SDO_RDF_TRIPLE_S object — model creation,
membership tests, ID lookups, reification checks.  Method names keep the
Oracle spelling (upper-case in the paper, snake_case here) so the
examples read like the paper's SQL.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.apptable import ApplicationTable
from repro.core.models import ModelInfo
from repro.errors import TripleNotFoundError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.store import RDFStore


class SDO_RDF:
    """The procedural package bound to one store."""

    def __init__(self, store: "RDFStore") -> None:
        self._store = store

    @property
    def store(self) -> "RDFStore":
        return self._store

    # ------------------------------------------------------------------
    # model management (section 4.3)
    # ------------------------------------------------------------------

    def create_rdf_model(self, model_name: str, table_name: str,
                         column_name: str = "triple") -> ModelInfo:
        """``SDO_RDF.CREATE_RDF_MODEL('cia', 'ciadata', 'triple')``.

        The application table must already exist (the paper's step 1
        precedes step 2); a missing table raises, matching Oracle.
        """
        ApplicationTable.open(self._store, table_name,
                              object_column=column_name)
        return self._store.create_model(model_name, table_name,
                                        column_name)

    def drop_rdf_model(self, model_name: str) -> int:
        """Drop a model and all of its triples; returns the count."""
        return self._store.drop_model(model_name)

    # ------------------------------------------------------------------
    # queries (section 6)
    # ------------------------------------------------------------------

    def is_triple(self, model_name: str, subject: str, property: str,
                  object: str) -> bool:
        """``SDO_RDF.IS_TRIPLE(model, s, p, o)``."""
        return self._store.is_triple(model_name, subject, property, object)

    def get_model_id(self, model_name: str) -> int:
        """``SDO_RDF.GET_MODEL_ID(model)``."""
        return self._store.models.get(model_name).model_id

    def get_triple_id(self, model_name: str, subject: str, property: str,
                      object: str) -> int:
        """The LINK_ID of a triple; raises when absent."""
        link = self._store.find_link(model_name, subject, property, object)
        if link is None:
            raise TripleNotFoundError(-1)
        return link.link_id

    def is_reified(self, model_name: str, subject: str, property: str,
                   object: str) -> bool:
        """``SDO_RDF.IS_REIFIED(model, s, p, o)`` (paper Figure 11)."""
        return self._store.is_reified(model_name, subject, property,
                                      object)

    def get_triple(self, link_id: int):
        """The SDO_RDF_TRIPLE view of a stored triple by LINK_ID."""
        return self._store.get_triple_s(link_id).get_triple()

    def triple_count(self, model_name: str | None = None) -> int:
        """Number of stored triples, optionally per model."""
        if model_name is None:
            return self._store.links.count()
        model_id = self._store.models.get(model_name).model_id
        return self._store.links.count(model_id)

"""Model-level access control.

Paper section 4.3: when a model is created, its ``rdfm_<model>`` view
"is accessible only to the owner of the model and users with SELECT
privileges on the model".  Oracle enforces this with schema privileges;
here a :class:`PrivilegeRegistry` records owners and grants in the
``rdf_priv$`` table, and :class:`SecureStoreSession` wraps a store with
a current user whose reads and writes are checked against it.

The registry is opt-in — the plain :class:`~repro.core.store.RDFStore`
API remains unrestricted (a DBA connection, in Oracle terms).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

from repro.db.connection import quote_identifier
from repro.errors import ReproError
from repro.inference.match import MatchRow, sdo_rdf_match
from repro.rdf.namespaces import AliasSet

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.store import RDFStore
    from repro.core.triple_s import SDO_RDF_TRIPLE_S

PRIVILEGE_TABLE = "rdf_priv$"

#: Grantable privileges: read a model, or insert/remove its triples.
PRIVILEGES = ("SELECT", "INSERT")


class AccessDenied(ReproError, PermissionError):
    """The current user lacks the privilege for this operation."""

    def __init__(self, user: str, privilege: str, model_name: str) -> None:
        self.user = user
        self.privilege = privilege
        self.model_name = model_name
        super().__init__(
            f"user {user!r} lacks {privilege} on model {model_name!r}")


@dataclass(frozen=True, slots=True)
class Grant:
    """One privilege grant row."""

    model_name: str
    user: str
    privilege: str


class PrivilegeRegistry:
    """Owner and grant bookkeeping for RDF models."""

    def __init__(self, store: "RDFStore") -> None:
        self._store = store
        self._db = store.database
        self._db.execute(
            f"CREATE TABLE IF NOT EXISTS "
            f"{quote_identifier(PRIVILEGE_TABLE)} ("
            " model_name TEXT NOT NULL,"
            " user_name TEXT NOT NULL,"
            " privilege TEXT NOT NULL"
            "  CHECK (privilege IN ('OWNER', 'SELECT', 'INSERT')),"
            " PRIMARY KEY (model_name, user_name, privilege))")

    # ------------------------------------------------------------------
    # ownership
    # ------------------------------------------------------------------

    def set_owner(self, model_name: str, user: str) -> None:
        """Record ``user`` as the model's owner (full access)."""
        self._store.models.get(model_name)  # must exist
        self._db.execute(
            f"INSERT OR IGNORE INTO {quote_identifier(PRIVILEGE_TABLE)} "
            "VALUES (?, ?, 'OWNER')", (model_name.lower(), user))

    def owner_of(self, model_name: str) -> str | None:
        row = self._db.query_one(
            f"SELECT user_name FROM {quote_identifier(PRIVILEGE_TABLE)} "
            "WHERE model_name = ? AND privilege = 'OWNER'",
            (model_name.lower(),))
        return None if row is None else row["user_name"]

    # ------------------------------------------------------------------
    # grants
    # ------------------------------------------------------------------

    def grant(self, model_name: str, user: str, privilege: str) -> None:
        """``GRANT SELECT ON rdfm_<model> TO user`` semantics."""
        privilege = privilege.upper()
        if privilege not in PRIVILEGES:
            raise ReproError(
                f"unknown privilege {privilege!r}; grantable: "
                f"{', '.join(PRIVILEGES)}")
        self._store.models.get(model_name)
        self._db.execute(
            f"INSERT OR IGNORE INTO {quote_identifier(PRIVILEGE_TABLE)} "
            "VALUES (?, ?, ?)", (model_name.lower(), user, privilege))

    def revoke(self, model_name: str, user: str, privilege: str) -> None:
        self._db.execute(
            f"DELETE FROM {quote_identifier(PRIVILEGE_TABLE)} "
            "WHERE model_name = ? AND user_name = ? AND privilege = ?",
            (model_name.lower(), user, privilege.upper()))

    def grants_for(self, model_name: str) -> list[Grant]:
        return [Grant(row["model_name"], row["user_name"],
                      row["privilege"])
                for row in self._db.query_all(
                    f"SELECT * FROM {quote_identifier(PRIVILEGE_TABLE)} "
                    "WHERE model_name = ? ORDER BY user_name, privilege",
                    (model_name.lower(),))]

    # ------------------------------------------------------------------
    # checks
    # ------------------------------------------------------------------

    def has_privilege(self, user: str, model_name: str,
                      privilege: str) -> bool:
        """True when ``user`` owns the model or holds the privilege.

        A model with no recorded owner is unrestricted, matching the
        registry's opt-in nature.
        """
        name = model_name.lower()
        if self.owner_of(name) is None:
            return True
        row = self._db.query_one(
            f"SELECT 1 FROM {quote_identifier(PRIVILEGE_TABLE)} "
            "WHERE model_name = ? AND user_name = ? "
            "AND privilege IN ('OWNER', ?)",
            (name, user, privilege.upper()))
        return row is not None

    def check(self, user: str, model_name: str, privilege: str) -> None:
        if not self.has_privilege(user, model_name, privilege):
            raise AccessDenied(user, privilege.upper(), model_name)


class SecureStoreSession:
    """A store handle bound to one user, enforcing privileges.

    Reads (``query``, ``iter_triples``, ``view_rows``) need SELECT;
    writes (``insert_triple``, ``remove_triple``) need INSERT.
    """

    def __init__(self, store: "RDFStore", user: str,
                 registry: PrivilegeRegistry | None = None) -> None:
        self._store = store
        self.user = user
        self.privileges = registry or PrivilegeRegistry(store)

    # -- writes --------------------------------------------------------

    def insert_triple(self, model_name: str, subject: str,
                      predicate: str, obj: str) -> "SDO_RDF_TRIPLE_S":
        self.privileges.check(self.user, model_name, "INSERT")
        return self._store.insert_triple(model_name, subject, predicate,
                                         obj)

    def remove_triple(self, model_name: str, subject: str,
                      predicate: str, obj: str) -> bool:
        self.privileges.check(self.user, model_name, "INSERT")
        return self._store.remove_triple(model_name, subject, predicate,
                                         obj)

    # -- reads ---------------------------------------------------------

    def iter_triples(self, model_name: str):
        self.privileges.check(self.user, model_name, "SELECT")
        return self._store.iter_model_triples(model_name)

    def view_rows(self, model_name: str) -> list:
        """Rows of the model's ``rdfm_<model>`` view."""
        self.privileges.check(self.user, model_name, "SELECT")
        info = self._store.models.get(model_name)
        return self._store.database.query_all(
            f"SELECT * FROM {quote_identifier(info.view_name)}")

    def query(self, query: str, models: Sequence[str],
              rulebases: Sequence[str] = (),
              aliases: AliasSet | None = None,
              filter: str | None = None) -> list[MatchRow]:
        """SDO_RDF_MATCH over models the user can SELECT from."""
        for model_name in models:
            self.privileges.check(self.user, model_name, "SELECT")
        return sdo_rdf_match(self._store, query, models,
                             rulebases=rulebases, aliases=aliases,
                             filter=filter)

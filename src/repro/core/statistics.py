"""Store statistics: the DBA's view of the central schema.

Aggregate figures over the paper's tables — per-model triple counts,
VALUE_TYPE and LINK_TYPE histograms, CONTEXT and REIF_LINK breakdowns,
sharing metrics (how much the values-once design saves) — consumed by
the CLI ``stats`` command and useful for capacity planning and tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.core.schema import LINK_TABLE, VALUE_TABLE

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.store import RDFStore


@dataclass
class StoreStatistics:
    """Aggregate figures for one store (optionally one model)."""

    model_name: str | None
    triple_count: int
    distinct_value_count: int
    value_types: dict[str, int] = field(default_factory=dict)
    link_types: dict[str, int] = field(default_factory=dict)
    contexts: dict[str, int] = field(default_factory=dict)
    reified_statement_count: int = 0
    total_cost: int = 0

    @property
    def sharing_factor(self) -> float:
        """Component references per stored value — how hard the
        store-values-once design is working.  3 references per triple;
        1.0 means no sharing at all."""
        if self.distinct_value_count == 0:
            return 0.0
        return (3 * self.triple_count) / self.distinct_value_count

    def lines(self) -> list[str]:
        """Human-readable report lines."""
        scope = self.model_name or "<all models>"
        lines = [
            f"scope: {scope}",
            f"triples: {self.triple_count}",
            f"distinct values: {self.distinct_value_count} "
            f"(sharing factor {self.sharing_factor:.2f})",
            f"application references (COST total): {self.total_cost}",
            f"reified statements: {self.reified_statement_count}",
        ]
        for label, histogram in (("value types", self.value_types),
                                 ("link types", self.link_types),
                                 ("contexts", self.contexts)):
            if histogram:
                summary = ", ".join(
                    f"{key}={count}" for key, count in
                    sorted(histogram.items()))
                lines.append(f"{label}: {summary}")
        return lines


def gather_statistics(store: "RDFStore",
                      model_name: str | None = None) -> StoreStatistics:
    """Compute :class:`StoreStatistics` for the store or one model."""
    db = store.database
    if model_name is None:
        link_filter, params = "", ()
    else:
        model_id = store.models.get(model_name).model_id
        link_filter, params = " WHERE model_id = ?", (model_id,)

    triple_count = int(db.query_value(
        f'SELECT COUNT(*) FROM "{LINK_TABLE}"{link_filter}', params,
        default=0))
    total_cost = int(db.query_value(
        f'SELECT COALESCE(SUM(cost), 0) FROM "{LINK_TABLE}"'
        f"{link_filter}", params, default=0))

    link_types = {row["link_type"]: row["n"] for row in db.query_all(
        f'SELECT link_type, COUNT(*) AS n FROM "{LINK_TABLE}"'
        f"{link_filter} GROUP BY link_type", params)}
    contexts = {row["context"]: row["n"] for row in db.query_all(
        f'SELECT context, COUNT(*) AS n FROM "{LINK_TABLE}"'
        f"{link_filter} GROUP BY context", params)}
    reified = int(db.query_value(
        f'SELECT COUNT(*) FROM "{LINK_TABLE}"{link_filter}'
        + (" AND" if link_filter else " WHERE")
        + " reif_link = 'Y'", params, default=0))

    if model_name is None:
        distinct_values = store.values.count()
        value_types = {row["value_type"]: row["n"]
                       for row in db.query_all(
                           f'SELECT value_type, COUNT(*) AS n FROM '
                           f'"{VALUE_TABLE}" GROUP BY value_type')}
    else:
        distinct_values = int(db.query_value(
            'SELECT COUNT(*) FROM (SELECT start_node_id AS v FROM '
            f'"{LINK_TABLE}"{link_filter} UNION SELECT p_value_id FROM '
            f'"{LINK_TABLE}"{link_filter} UNION SELECT end_node_id '
            f'FROM "{LINK_TABLE}"{link_filter})',
            params * 3, default=0))
        value_types = {row["value_type"]: row["n"]
                       for row in db.query_all(
                           'SELECT v.value_type, COUNT(DISTINCT '
                           'v.value_id) AS n FROM '
                           f'"{VALUE_TABLE}" v JOIN "{LINK_TABLE}" l '
                           "ON v.value_id IN (l.start_node_id, "
                           "l.p_value_id, l.end_node_id)"
                           f"{link_filter.replace('model_id', 'l.model_id')} "
                           "GROUP BY v.value_type", params)}
    return StoreStatistics(
        model_name=model_name,
        triple_count=triple_count,
        distinct_value_count=distinct_values,
        value_types=value_types,
        link_types=link_types,
        contexts=contexts,
        reified_statement_count=reified,
        total_cost=total_cost)

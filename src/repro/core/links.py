"""The ``rdf_link$`` store: triples as NDM links.

"The rdf_link$ table is dual-purposed: it stores the triples for all the
RDF graphs in the database, and it defines the logical network seen by
NDM" (paper section 4).  Each row is one triple of one model:

* START_NODE_ID / P_VALUE_ID / END_NODE_ID — the component VALUE_IDs;
* CANON_END_NODE_ID — VALUE_ID of the canonical form of the object;
* LINK_TYPE — STANDARD, RDF_TYPE (rdf:type), RDF_MEMBER (rdf:_n), or
  RDF_* (other rdf-vocabulary predicates);
* COST — how many application-table rows reference this triple;
* CONTEXT — 'D' (directly asserted) or 'I' (exists only as the base of a
  reification, section 5.2);
* REIF_LINK — 'Y' when a component references a reified triple (a DBUri).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import TYPE_CHECKING, Iterator

from repro.core.schema import LINK_TABLE, MODEL_VERSION_TABLE
from repro.errors import TripleNotFoundError
from repro.rdf.containers import is_membership_property
from repro.rdf.namespaces import RDF
from repro.rdf.terms import URI

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.db.connection import Database


class LinkType(str, Enum):
    """``LINK_TYPE`` codes (paper section 4)."""

    STANDARD = "STANDARD"
    RDF_TYPE = "RDF_TYPE"
    RDF_MEMBER = "RDF_MEMBER"
    RDF_OTHER = "RDF_*"

    @classmethod
    def for_predicate(cls, predicate: URI) -> "LinkType":
        """Classify a predicate URI into its link type.

        Both the full-URI and the ``rdf:``-prefixed spellings classify
        (the paper's examples store prefixed names verbatim).
        """
        value = predicate.value
        if value.startswith("rdf:"):
            value = RDF.base + value[len("rdf:"):]
        if value == RDF.type.value:
            return cls.RDF_TYPE
        if is_membership_property(URI(value)):
            return cls.RDF_MEMBER
        if value.startswith(RDF.base):
            return cls.RDF_OTHER
        return cls.STANDARD


class Context(str, Enum):
    """``CONTEXT`` codes: direct assertion vs indirect (implied) triple."""

    DIRECT = "D"
    INDIRECT = "I"


@dataclass(frozen=True, slots=True)
class LinkRow:
    """One materialised rdf_link$ row."""

    link_id: int
    start_node_id: int
    p_value_id: int
    end_node_id: int
    canon_end_node_id: int
    link_type: LinkType
    cost: int
    context: Context
    reif_link: bool
    model_id: int

    @classmethod
    def from_row(cls, row) -> "LinkRow":
        return cls(
            link_id=int(row["link_id"]),
            start_node_id=int(row["start_node_id"]),
            p_value_id=int(row["p_value_id"]),
            end_node_id=int(row["end_node_id"]),
            canon_end_node_id=int(row["canon_end_node_id"]),
            link_type=LinkType(row["link_type"]),
            cost=int(row["cost"]),
            context=Context(row["context"]),
            reif_link=row["reif_link"] == "Y",
            model_id=int(row["model_id"]))


class LinkStore:
    """Insert/lookup/delete interface over ``rdf_link$``."""

    def __init__(self, database: "Database") -> None:
        self._db = database
        self._id_range: tuple[int, int] | None = None

    def set_link_id_range(self, low: int, high: int) -> None:
        """Confine new LINK_IDs to the half-open range ``[low, high)``.

        The sharded engine gives each shard its own stride of the
        LINK_ID line (see :mod:`repro.db.shard`), so a LINK_ID is
        globally unique and identifies its shard — which keeps
        reification DBUris resolvable on a partitioned store.  The
        default (no range) preserves the single-file behaviour:
        SQLite's implicit rowid allocation.
        """
        if not 0 <= low < high:
            raise ValueError(f"bad link id range [{low}, {high})")
        self._id_range = (low, high)

    @property
    def id_range(self) -> tuple[int, int] | None:
        """The confined LINK_ID range, or None (single-file store).

        Bulk-path writers (:mod:`repro.core.bulkload`) must consult
        this: a set-wise INSERT without explicit LINK_IDs would let
        SQLite allocate global rowids outside the shard's stride.
        """
        return self._id_range

    # ------------------------------------------------------------------
    # lookups
    # ------------------------------------------------------------------

    def find(self, model_id: int, start_node_id: int, p_value_id: int,
             end_node_id: int) -> LinkRow | None:
        """The link row for (model, s, p, o) IDs, or None."""
        row = self._db.query_one(
            f'SELECT * FROM "{LINK_TABLE}" WHERE model_id = ? '
            "AND start_node_id = ? AND p_value_id = ? AND end_node_id = ?",
            (model_id, start_node_id, p_value_id, end_node_id))
        return None if row is None else LinkRow.from_row(row)

    def get(self, link_id: int) -> LinkRow:
        """The link row with ``link_id``; raises TripleNotFoundError."""
        row = self._db.query_one(
            f'SELECT * FROM "{LINK_TABLE}" WHERE link_id = ?', (link_id,))
        if row is None:
            raise TripleNotFoundError(link_id)
        return LinkRow.from_row(row)

    def exists(self, link_id: int) -> bool:
        return self._db.query_one(
            f'SELECT 1 FROM "{LINK_TABLE}" WHERE link_id = ?',
            (link_id,)) is not None

    def count(self, model_id: int | None = None) -> int:
        """Triple count, optionally restricted to one model."""
        if model_id is None:
            return self._db.row_count(LINK_TABLE)
        return int(self._db.query_value(
            f'SELECT COUNT(*) FROM "{LINK_TABLE}" WHERE model_id = ?',
            (model_id,), default=0))

    def iter_model(self, model_id: int) -> Iterator[LinkRow]:
        """All link rows of one model."""
        for row in self._db.execute(
                f'SELECT * FROM "{LINK_TABLE}" WHERE model_id = ? '
                "ORDER BY link_id", (model_id,)):
            yield LinkRow.from_row(row)

    # ------------------------------------------------------------------
    # per-model write versions
    # ------------------------------------------------------------------

    def model_version(self, model_id: int) -> int:
        """The persistent write version of a model (0 when unwritten).

        Tolerates a pre-migration database without the version table
        (possible only on read-only opens — writable opens create it).
        """
        if not self._db.table_exists(MODEL_VERSION_TABLE):
            return 0
        return int(self._db.query_value(
            f'SELECT version FROM "{MODEL_VERSION_TABLE}" '
            "WHERE model_id = ?", (model_id,), default=0))

    def model_versions(self, model_ids) -> dict[int, int]:
        """Batch form of :meth:`model_version`."""
        ids = list(model_ids)
        versions = {model_id: 0 for model_id in ids}
        if not ids or not self._db.table_exists(MODEL_VERSION_TABLE):
            return versions
        placeholders = ", ".join("?" for _ in ids)
        for row in self._db.query_all(
                f'SELECT model_id, version FROM "{MODEL_VERSION_TABLE}" '
                f"WHERE model_id IN ({placeholders})", ids):
            versions[int(row["model_id"])] = int(row["version"])
        return versions

    def bump_model_version(self, model_id: int) -> None:
        """Advance a model's write version (inside the caller's
        transaction, so it commits or rolls back with the change)."""
        self._db.execute(
            f'INSERT INTO "{MODEL_VERSION_TABLE}" (model_id, version) '
            "VALUES (?, 1) ON CONFLICT (model_id) "
            "DO UPDATE SET version = version + 1", (model_id,))

    def drop_model_version(self, model_id: int) -> None:
        """Forget a dropped model's version row."""
        if self._db.table_exists(MODEL_VERSION_TABLE):
            self._db.execute(
                f'DELETE FROM "{MODEL_VERSION_TABLE}" '
                "WHERE model_id = ?", (model_id,))

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------

    def insert(self, model_id: int, start_node_id: int, p_value_id: int,
               end_node_id: int, canon_end_node_id: int,
               link_type: LinkType, context: Context,
               reif_link: bool) -> LinkRow:
        """Insert a new link row with COST=1 and return it."""
        if self._id_range is None:
            cursor = self._db.execute(
                f'INSERT INTO "{LINK_TABLE}" '
                "(start_node_id, p_value_id, end_node_id,"
                " canon_end_node_id, link_type, cost, context,"
                " reif_link, model_id)"
                " VALUES (?, ?, ?, ?, ?, 1, ?, ?, ?)",
                (start_node_id, p_value_id, end_node_id,
                 canon_end_node_id, link_type.value, context.value,
                 "Y" if reif_link else "N", model_id))
        else:
            # Explicit max+1 allocation inside the shard's stride.
            # Safe without locking: each shard has exactly one writer
            # (the shard's WriterQueue serialises every insert).
            low, high = self._id_range
            cursor = self._db.execute(
                f'INSERT INTO "{LINK_TABLE}" '
                "(link_id, start_node_id, p_value_id, end_node_id,"
                " canon_end_node_id, link_type, cost, context,"
                " reif_link, model_id)"
                " VALUES ((SELECT IFNULL(MAX(link_id) + 1, ?) "
                f'FROM "{LINK_TABLE}" '
                "WHERE link_id >= ? AND link_id < ?),"
                " ?, ?, ?, ?, ?, 1, ?, ?, ?)",
                (low, low, high,
                 start_node_id, p_value_id, end_node_id,
                 canon_end_node_id, link_type.value, context.value,
                 "Y" if reif_link else "N", model_id))
        self.bump_model_version(model_id)
        self._db.bump_data_version()
        return self.get(int(cursor.lastrowid))

    def increment_cost(self, link_id: int) -> int:
        """COST += 1 (another application row references the triple)."""
        self._db.execute(
            f'UPDATE "{LINK_TABLE}" SET cost = cost + 1 '
            "WHERE link_id = ?", (link_id,))
        return self.get(link_id).cost

    def decrement_cost(self, link_id: int) -> int:
        """COST -= 1; returns the new cost (may reach 0)."""
        self._db.execute(
            f'UPDATE "{LINK_TABLE}" SET cost = MAX(cost - 1, 0) '
            "WHERE link_id = ?", (link_id,))
        return self.get(link_id).cost

    def promote_context(self, link_id: int) -> None:
        """Flip CONTEXT from 'I' to 'D' (section 5.2 note: an implied
        triple later entered as a fact becomes direct)."""
        self._db.execute(
            f'UPDATE "{LINK_TABLE}" SET context = ? WHERE link_id = ?',
            (Context.DIRECT.value, link_id))

    def delete(self, link_id: int) -> LinkRow:
        """Remove the link row; returns the removed row.

        Node garbage collection (removing nodes with no remaining links)
        is the parser's job, since it owns rdf_node$.
        """
        row = self.get(link_id)
        self._db.execute(
            f'DELETE FROM "{LINK_TABLE}" WHERE link_id = ?', (link_id,))
        self.bump_model_version(row.model_id)
        self._db.bump_data_version()
        return row

    def node_in_use(self, node_id: int) -> bool:
        """True while any link starts or ends at ``node_id``."""
        return self._db.query_one(
            f'SELECT 1 FROM "{LINK_TABLE}" '
            "WHERE start_node_id = ? OR end_node_id = ? LIMIT 1",
            (node_id, node_id)) is not None

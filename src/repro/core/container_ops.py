"""Storing and retrieving RDF containers through the central schema.

Containers (Bag/Seq/Alt, paper section 2) are plain triples at the
storage level — an ``rdf:type`` statement plus ``rdf:_n`` membership
statements whose links get ``LINK_TYPE='RDF_MEMBER'``.  These helpers
round-trip :class:`repro.rdf.containers.Container` objects through a
model.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.links import LinkType
from repro.errors import ModelError
from repro.rdf.containers import Container, container_from_triples
from repro.rdf.terms import RDFTerm

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.store import RDFStore


def insert_container(store: "RDFStore", model_name: str,
                     container: Container) -> int:
    """Store a container's statements; returns the number inserted.

    Membership links are classified ``RDF_MEMBER``, so they can be
    filtered or excluded by link type like Oracle does.
    """
    inserted = 0
    with store.database.transaction():
        for triple in container.triples():
            store.insert_triple_obj(model_name, triple,
                                    count_cost=False)
            inserted += 1
    return inserted


def fetch_container(store: "RDFStore", model_name: str,
                    node: RDFTerm) -> Container:
    """Rebuild the container rooted at ``node`` from a model.

    Raises :class:`repro.errors.ModelError` when the node has no
    membership statements at all.
    """
    triples = [triple for triple in store.iter_model_triples(model_name)
               if triple.subject == node]
    container = container_from_triples(node, triples)
    if len(container) == 0 and not _has_container_type(store, model_name,
                                                       node):
        raise ModelError(
            f"{node} is not a container in model {model_name!r}")
    return container


def _has_container_type(store: "RDFStore", model_name: str,
                        node: RDFTerm) -> bool:
    from repro.rdf.containers import Alt, Bag, Seq
    from repro.rdf.namespaces import RDF

    for kind in (Bag, Seq, Alt):
        if store.is_triple(model_name, node.lexical, RDF.type.value,
                           kind.TYPE.value):
            return True
    return False


def member_links(store: "RDFStore", model_name: str) -> int:
    """Count the RDF_MEMBER links of a model."""
    model_id = store.models.get(model_name).model_id
    return int(store.database.query_value(
        'SELECT COUNT(*) FROM "rdf_link$" '
        "WHERE model_id = ? AND link_type = ?",
        (model_id, LinkType.RDF_MEMBER.value), default=0))

"""Application tables: user tables with an SDO_RDF_TRIPLE_S column.

The paper's application pattern (section 4.3)::

    CREATE TABLE ciadata (id NUMBER, triple SDO_RDF_TRIPLE_S);
    EXECUTE SDO_RDF.CREATE_RDF_MODEL('cia', 'ciadata', 'triple');
    INSERT INTO ciadata VALUES (1, SDO_RDF_TRIPLE_S('cia', 'gov:files',
        'gov:terrorSuspect', 'id:JohnDoe'));

:class:`ApplicationTable` reproduces this: the object column is stored as
five physical ID columns (``<col>_t_id`` ... ``<col>_o_id``), the insert
path accepts constructor arguments exactly like the SQL above, and the
query path implements both access plans of section 7.2 — an indexed
ID-lookup when a function-based index exists on the queried member
function, and a full scan resolving the member function per row when it
does not.  The ABL-IDX benchmark measures that difference.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator

from repro.core.triple_s import SDO_RDF_TRIPLE_S
from repro.db.connection import quote_identifier
from repro.db.indexes import index_for
from repro.errors import StorageError
from repro.rdf.terms import parse_term_text

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.store import RDFStore

_ID_SUFFIXES = ("t_id", "m_id", "s_id", "p_id", "o_id")
_MEMBER_TO_SUFFIX = {
    "GET_SUBJECT": "s_id",
    "GET_PROPERTY": "p_id",
    "GET_OBJECT": "o_id",
}


class ApplicationTable:
    """A user table holding rows of (id, SDO_RDF_TRIPLE_S).

    :param store: the RDF store whose central schema the objects
        reference.
    :param table_name: the physical table name.
    :param object_column: the logical name of the object column
        (default ``triple``, as in the paper's examples).
    """

    def __init__(self, store: "RDFStore", table_name: str,
                 object_column: str = "triple") -> None:
        self._store = store
        self._db = store.database
        self.table_name = table_name
        self.object_column = object_column

    # ------------------------------------------------------------------
    # DDL
    # ------------------------------------------------------------------

    @classmethod
    def create(cls, store: "RDFStore", table_name: str,
               object_column: str = "triple") -> "ApplicationTable":
        """``CREATE TABLE <name> (id NUMBER, <col> SDO_RDF_TRIPLE_S)``."""
        table = cls(store, table_name, object_column)
        columns = ", ".join(
            f"{quote_identifier(f'{object_column}_{suffix}')} INTEGER"
            for suffix in _ID_SUFFIXES)
        store.database.execute(
            f"CREATE TABLE {quote_identifier(table_name)} "
            f"(id INTEGER, {columns})")
        return table

    @classmethod
    def open(cls, store: "RDFStore", table_name: str,
             object_column: str = "triple") -> "ApplicationTable":
        """Bind to an existing application table."""
        if not store.database.table_exists(table_name):
            raise StorageError(f"no such application table: {table_name}")
        return cls(store, table_name, object_column)

    def _id_columns(self) -> list[str]:
        return [f"{self.object_column}_{suffix}" for suffix in _ID_SUFFIXES]

    # ------------------------------------------------------------------
    # DML
    # ------------------------------------------------------------------

    def insert(self, row_id: int, *constructor_args: object
               ) -> SDO_RDF_TRIPLE_S:
        """``INSERT INTO t VALUES (row_id, SDO_RDF_TRIPLE_S(...))``.

        ``constructor_args`` are the SDO_RDF_TRIPLE_S constructor
        arguments, starting with the model name; see
        :meth:`repro.core.triple_s.SDO_RDF_TRIPLE_S.construct`.
        """
        if not constructor_args:
            raise StorageError("missing SDO_RDF_TRIPLE_S constructor args")
        model_name, *rest = constructor_args
        if not isinstance(model_name, str):
            raise StorageError("first constructor argument must be the "
                               "model name")
        obj = SDO_RDF_TRIPLE_S.construct(self._store, model_name, *rest)
        return self.insert_object(row_id, obj)

    def insert_object(self, row_id: int,
                      obj: SDO_RDF_TRIPLE_S) -> SDO_RDF_TRIPLE_S:
        """Insert an already-constructed storage object."""
        columns = ["id"] + self._id_columns()
        placeholders = ", ".join("?" for _ in columns)
        column_list = ", ".join(quote_identifier(c) for c in columns)
        self._db.execute(
            f"INSERT INTO {quote_identifier(self.table_name)} "
            f"({column_list}) VALUES ({placeholders})",
            (row_id, *obj.ids()))
        return obj.with_store(self._store)

    def delete_row(self, row_id: int) -> int:
        """Delete rows by id; returns the count removed.

        Note: this removes application rows only — central-schema COST
        accounting is the caller's concern (``store.remove_triple``).
        """
        cursor = self._db.execute(
            f"DELETE FROM {quote_identifier(self.table_name)} "
            "WHERE id = ?", (row_id,))
        return cursor.rowcount

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return self._db.row_count(self.table_name)

    def rows(self) -> Iterator[tuple[int, SDO_RDF_TRIPLE_S]]:
        """All (id, object) rows."""
        columns = ", ".join(
            quote_identifier(c) for c in ["id"] + self._id_columns())
        for row in self._db.execute(
                f"SELECT {columns} FROM "
                f"{quote_identifier(self.table_name)}"):
            yield row[0], self._object_from_row(row)

    def _object_from_row(self, row) -> SDO_RDF_TRIPLE_S:
        return SDO_RDF_TRIPLE_S(
            rdf_t_id=row[1], rdf_m_id=row[2], rdf_s_id=row[3],
            rdf_p_id=row[4], rdf_o_id=row[5], _store=self._store)

    def select_where_member(self, member_function: str,
                            text_value: str
                            ) -> list[tuple[int, SDO_RDF_TRIPLE_S]]:
        """``SELECT * FROM t WHERE t.triple.<member>() = :text``.

        Chooses the access path the paper's section 7.2 describes:

        * a registered function-based index on the member function →
          resolve ``text_value`` to its VALUE_ID once and do an indexed
          equality lookup on the backing ID column;
        * no index → full scan, evaluating the member function per row.
        """
        member = member_function.upper().rstrip("()")
        suffix = _MEMBER_TO_SUFFIX.get(member)
        if suffix is None:
            raise StorageError(
                f"cannot query on member function {member_function!r}")
        if index_for(self._db, self.table_name, member) is not None:
            return self._indexed_lookup(suffix, text_value)
        return self._scan_lookup(member, text_value)

    def _indexed_lookup(self, suffix: str, text_value: str
                        ) -> list[tuple[int, SDO_RDF_TRIPLE_S]]:
        term = parse_term_text(text_value)
        value_id = self._store.values.find_id(term)
        if value_id is None:
            return []
        columns = ", ".join(
            quote_identifier(c) for c in ["id"] + self._id_columns())
        key_column = quote_identifier(f"{self.object_column}_{suffix}")
        rows = self._db.query_all(
            f"SELECT {columns} FROM {quote_identifier(self.table_name)} "
            f"WHERE {key_column} = ?", (value_id,))
        return [(row[0], self._object_from_row(row)) for row in rows]

    def _scan_lookup(self, member: str, text_value: str
                     ) -> list[tuple[int, SDO_RDF_TRIPLE_S]]:
        getter = {
            "GET_SUBJECT": SDO_RDF_TRIPLE_S.get_subject,
            "GET_PROPERTY": SDO_RDF_TRIPLE_S.get_property,
            "GET_OBJECT": SDO_RDF_TRIPLE_S.get_object,
        }[member]
        # Normalise the probe exactly like the indexed path, so a
        # quoted literal ('"bombing"') matches on both access paths.
        probe = parse_term_text(text_value).lexical
        matches: list[tuple[int, SDO_RDF_TRIPLE_S]] = []
        for row_id, obj in self.rows():
            if getter(obj) == probe:
                matches.append((row_id, obj))
        return matches

    def get_triples(self, member_function: str, text_value: str):
        """``SELECT t.triple.GET_TRIPLE() ... WHERE <member>() = :text``.

        The paper's Experiment I/II query shape: returns the
        SDO_RDF_TRIPLE views of the matching rows.
        """
        return [obj.get_triple() for _id, obj in
                self.select_where_member(member_function, text_value)]

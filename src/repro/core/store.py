"""The RDF store facade: one object per database's RDF universe.

:class:`RDFStore` owns the central schema of a
:class:`repro.db.Database` and exposes the operations of the paper:

* model management (``CREATE_RDF_MODEL`` semantics, per-model views);
* triple insertion through the parse pipeline of section 4.1;
* the four ``SDO_RDF_TRIPLE_S`` constructor semantics of sections 4.2
  and 5, including streamlined DBUri reification;
* lookups used by the object member functions;
* NDM access — every model is a partition of the universe network.
"""

from __future__ import annotations

import os
import threading
from pathlib import Path
from typing import Iterator

from repro.core.engine import StorageEngine
from repro.core.links import Context, LinkRow, LinkStore
from repro.core.models import ModelInfo, ModelRegistry
from repro.core.parser import InsertResult, TripleParser
from repro.core.schema import (
    RDF_NETWORK_NAME,
    central_schema_exists,
    create_central_schema,
)
from repro.core.triple_s import SDO_RDF_TRIPLE_S
from repro.core.values import ValueStore
from repro.db.connection import Database
from repro.db.dburi import DBUri
from repro.errors import (
    ModelNotFoundError,
    ReificationError,
    ReplicaError,
    SchemaError,
    TripleNotFoundError,
)
from repro.ndm.network import LogicalNetwork
from repro.obs.observer import Observer, observe_from_env
from repro.rdf.namespaces import RDF
from repro.rdf.terms import RDFTerm, URI
from repro.rdf.triple import Triple

#: The object of every streamlined reification statement.
_RDF_TYPE = RDF.type
_RDF_STATEMENT = RDF.Statement


class RDFStore(StorageEngine):
    """The central-schema RDF store.

    :param database: the hosting database; pass an existing
        :class:`~repro.db.connection.Database`, a path, or nothing for an
        in-memory store.
    :param observe: switch observability (SQL timing, spans, metrics —
        see :mod:`repro.obs`) on for the hosting database.  ``None``
        (the default) defers to the ``REPRO_OBSERVE`` environment
        variable; an existing enabled observer on a passed-in database
        is never downgraded.
    :param durability: durability profile for the hosting database
        (``ephemeral``/``durable``/``paranoid`` — see
        :mod:`repro.db.resilience`).  ``None`` defers to the
        ``REPRO_DURABILITY`` environment variable.  Ignored when an
        already-constructed :class:`Database` is passed in — that
        database's own profile stands.
    :param shards: keyword-only engine selector.  The default (1) is
        this class, the paper's single-file layout.  ``shards=N > 1``
        makes the constructor return a
        :class:`~repro.core.sharded.ShardedRDFStore` instead —
        ``rdf_link$`` partitioned across N files with one writer queue
        each (requires a file path; see :mod:`repro.core.sharded`).
    :param replica: keyword-only switch for the in-memory compressed
        read replica (see :mod:`repro.replica` and
        ``docs/replica.md``).  ``None`` (the default) defers to the
        ``REPRO_REPLICA`` environment variable; ``False`` disables it
        unconditionally; ``True`` (or an on-word / byte-cap string
        accepted by
        :func:`~repro.replica.manager.parse_replica_setting`, or an
        int byte cap) enables it; an existing
        :class:`~repro.replica.manager.ReplicaManager` is attached
        as-is (how pooled server readers share one).  Incompatible
        with ``shards > 1``.
    """

    engine_kind = "single"

    def __new__(cls, database: Database | str | Path | None = None,
                observe: bool | None = None,
                durability: str | None = None, *,
                shards: int = 1, replica=None) -> "RDFStore":
        if cls is RDFStore and shards > 1:
            if replica:
                raise ReplicaError(
                    "the in-memory replica requires the single-file "
                    "engine (shards=1); the sharded store routes "
                    "queries through scatter-gather instead")
            from repro.core.sharded import ShardedRDFStore
            # Not an RDFStore subclass, so Python skips __init__ on
            # the returned instance: it comes back fully constructed.
            return ShardedRDFStore(database, observe=observe,
                                   durability=durability, shards=shards)
        return super().__new__(cls)

    def __init__(self, database: Database | str | Path | None = None,
                 observe: bool | None = None,
                 durability: str | None = None, *,
                 shards: int = 1, replica=None) -> None:
        if database is None:
            database = Database(durability=durability)
        elif isinstance(database, (str, Path)):
            database = Database(database, durability=durability)
        if observe is None:
            observe = observe_from_env()
        if observe and not database.observer.enabled:
            database.set_observer(Observer())
        self._db = database
        if database.read_only:
            # A pooled server reader cannot create the schema (and the
            # "idempotent" re-create path writes); the writer must have
            # established it first.
            if not central_schema_exists(database):
                raise SchemaError(
                    f"read-only database {database.path} has no central "
                    "RDF schema; open it writable once (or start the "
                    "writer) before attaching pooled readers")
        else:
            # Idempotent: ensures the NDM catalog entry exists too.
            create_central_schema(database)
        self.values = ValueStore(database)
        self.links = LinkStore(database)
        self.models = ModelRegistry(database)
        self.parser = TripleParser(database, self.values, self.links,
                                   self.models)
        self._plan_cache = None
        self._match_statistics = None
        self._rules_indexes = None
        self._auto_rules_indexes = None
        # RLock: loading maintenance targets under the lock may itself
        # construct the lazy rules-index manager.
        self._lazy_lock = threading.RLock()
        self._result_cache = None
        cache_setting = os.environ.get("REPRO_RESULT_CACHE")
        if cache_setting is not None:
            from repro.cache import ResultCache, parse_cache_setting
            enabled, max_bytes = parse_cache_setting(cache_setting)
            if enabled:
                self._result_cache = ResultCache(max_bytes=max_bytes)
        self._replica = None
        setting = replica
        if setting is None:
            setting = os.environ.get("REPRO_REPLICA")
        if setting is not None and setting is not False:
            from repro.replica.manager import (
                ReplicaManager,
                parse_replica_setting,
            )
            if isinstance(setting, ReplicaManager):
                self._replica = setting
            else:
                enabled, max_bytes = parse_replica_setting(setting)
                if enabled:
                    self._replica = ReplicaManager(max_bytes=max_bytes)
        if not database.read_only:
            self.parser.set_delta_hook(self._on_base_delta)

    @property
    def database(self) -> Database:
        """The hosting database engine."""
        return self._db

    @property
    def plan_cache(self):
        """The SDO_RDF_MATCH plan cache (lazy, one per store)."""
        if self._plan_cache is None:
            with self._lazy_lock:
                if self._plan_cache is None:
                    from repro.inference.plan import PlanCache
                    self._plan_cache = PlanCache()
        return self._plan_cache

    @property
    def match_statistics(self):
        """Planner statistics over this store (lazy, version-checked)."""
        if self._match_statistics is None:
            with self._lazy_lock:
                if self._match_statistics is None:
                    from repro.inference.stats import MatchStatistics
                    self._match_statistics = MatchStatistics(self)
        return self._match_statistics

    @property
    def rules_indexes(self):
        """The rules-index manager (lazy, one per store).

        Sharing one manager keeps its in-memory closure states warm
        across the write path, the query planner, and the inference
        facade — constructing ad-hoc managers would reload the closure
        on every delta.
        """
        if self._rules_indexes is None:
            with self._lazy_lock:
                if self._rules_indexes is None:
                    from repro.inference.rules_index import (
                        RulesIndexManager,
                    )
                    self._rules_indexes = RulesIndexManager(self)
        return self._rules_indexes

    def invalidate_rules_maintenance(self) -> None:
        """Forget the cached write-time maintenance targets (called by
        the manager when indexes are created/dropped/repoliced)."""
        self._auto_rules_indexes = None

    def rules_maintenance_targets(self, model_name: str):
        """Auto-maintained rules indexes covering ``model_name``."""
        targets = self._auto_rules_indexes
        if targets is None:
            with self._lazy_lock:
                targets = self._auto_rules_indexes
                if targets is None:
                    targets = self._load_maintenance_targets()
                    self._auto_rules_indexes = targets
        name = model_name.lower()
        return tuple(index for index in targets
                     if name in index.model_names)

    def _load_maintenance_targets(self):
        # Cheap path for stores that never created a rules index: one
        # sqlite_master probe, then a cached empty tuple — the write
        # path must not pay for inference it doesn't use.
        from repro.inference.rules_index import INDEX_CATALOG
        if self._rules_indexes is None \
                and not self._db.table_exists(INDEX_CATALOG):
            return ()
        return tuple(self.rules_indexes.auto_maintained())

    def _on_base_delta(self, model: ModelInfo, added, removed) -> None:
        """Parser hook: maintain covering auto-policy rules indexes
        inside the same transaction as the base write."""
        targets = self.rules_maintenance_targets(model.model_name)
        if targets:
            self.run_rules_maintenance(targets, added, removed, model)
        if self._replica is not None:
            # Advisory only: the durable model version (bumped in this
            # same transaction) is what actually gates freshness.
            self._replica.note_delta(model.model_name)

    # ------------------------------------------------------------------
    # the in-memory read replica (see repro.replica, docs/replica.md)
    # ------------------------------------------------------------------

    @property
    def replica(self):
        """The attached :class:`~repro.replica.manager.ReplicaManager`,
        or None when the replica is disabled.  The match path routes
        through this via duck typing."""
        return self._replica

    def enable_replica(self, max_bytes: int | None = None,
                       refresh: str = "inline"):
        """Attach a fresh replica manager; returns it."""
        from repro.replica.manager import ReplicaManager
        self._replica = ReplicaManager(max_bytes=max_bytes,
                                       refresh=refresh)
        return self._replica

    def attach_replica(self, manager) -> None:
        """Attach an existing (possibly shared) manager, or None to
        detach.  The server attaches one manager to every pooled
        reader so they serve from the same partitions."""
        self._replica = manager

    # ------------------------------------------------------------------
    # the query-result cache (see repro.cache, docs/result_cache.md)
    # ------------------------------------------------------------------

    @property
    def result_cache(self):
        """The attached :class:`~repro.cache.ResultCache`, or None when
        result caching is disabled.  The match path routes through
        this via duck typing (cache -> replica -> SQL)."""
        return self._result_cache

    def enable_result_cache(self, max_bytes: int | None = None):
        """Attach a fresh result cache; returns it.

        The cache keys on this connection's ``data_version``, so it is
        coherent per store instance — pooled readers must share one
        cache keyed on the durable write_version instead (the server
        does; see :mod:`repro.server.app`).
        """
        from repro.cache import ResultCache
        self._result_cache = ResultCache(max_bytes=max_bytes)
        return self._result_cache

    def attach_result_cache(self, cache) -> None:
        """Attach an existing cache, or None to detach."""
        self._result_cache = cache

    def run_rules_maintenance(self, targets, added, removed,
                              model: "ModelInfo | None" = None) -> None:
        """Apply each target's maintenance policy for a base delta."""
        manager = self.rules_indexes
        for index in targets:
            try:
                if index.maintain == "incremental":
                    manager.apply_delta(index.index_name, added, removed,
                                        source_model=model)
                else:
                    manager.rebuild(index.index_name)
            except ModelNotFoundError:
                # Another covered model was dropped: the index cannot
                # be maintained, but that must not fail writes to the
                # surviving models — it simply stays stale.
                continue

    @property
    def observer(self) -> Observer:
        """The hosting database's observer (no-op unless enabled)."""
        return self._db.observer

    def close(self) -> None:
        """Close the underlying database connection."""
        self._db.close()

    def __enter__(self) -> "RDFStore":
        return self

    def __exit__(self, *_exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------
    # model management
    # ------------------------------------------------------------------

    def create_model(self, model_name: str, table_name: str = "",
                     column_name: str = "triple") -> ModelInfo:
        """Create an RDF model (graph) and its ``rdfm_<model>`` view."""
        return self.models.create(model_name, table_name or model_name,
                                  column_name)

    def drop_model(self, model_name: str) -> int:
        """Drop a model: its triples, blank nodes, view, and registry row.

        Returns the number of triples removed.
        """
        info = self.models.get(model_name)
        removed = self.parser.remove_model_triples(info)
        self.models.drop(model_name)
        self.values.invalidate_cache()
        if self._replica is not None:
            self._replica.drop(model_name)
        return removed

    def model_exists(self, model_name: str) -> bool:
        """True when a model with this name exists."""
        return self.models.exists(model_name)

    # ------------------------------------------------------------------
    # triple insertion / removal
    # ------------------------------------------------------------------

    def insert_triple(self, model_name: str, subject: str, predicate: str,
                      obj: str,
                      context: Context = Context.DIRECT
                      ) -> SDO_RDF_TRIPLE_S:
        """The base constructor: insert (or find) a triple from text.

        Prefixed names are stored verbatim, matching the paper's examples
        ("the prefixes gov: and id: are used ... for simplicity").
        """
        return self.insert_triple_obj(
            model_name, Triple.from_text(subject, predicate, obj),
            context=context)

    def insert_triple_obj(self, model_name: str, triple: Triple,
                          context: Context = Context.DIRECT,
                          count_cost: bool = True) -> SDO_RDF_TRIPLE_S:
        """Insert a parsed :class:`~repro.rdf.triple.Triple`."""
        info = self.models.get(model_name)
        result = self.parser.insert(info, triple, context=context,
                                    count_cost=count_cost)
        observer = self._db.observer
        if observer.enabled:
            observer.counter("store.insert_triple").inc()
            if result.created:
                observer.counter("store.triples_created").inc()
        return self._handle(result.link)

    def insert_many(self, model_name: str,
                    triples: "Iterator[Triple] | list[Triple]",
                    context: Context = Context.DIRECT) -> int:
        """Bulk insert; returns the number of *new* link rows created."""
        info = self.models.get(model_name)
        created = 0
        total = 0
        with self._db.observer.span("store.insert_many",
                                    model=model_name) as span:
            with self._db.transaction():
                for triple in triples:
                    result = self.parser.insert(info, triple,
                                                context=context)
                    created += 1 if result.created else 0
                    total += 1
            span.set("triples", total)
            span.set("created", created)
        return created

    def remove_triple(self, model_name: str, subject: str, predicate: str,
                      obj: str, force: bool = False) -> bool:
        """Remove one reference to the triple (see parser.remove)."""
        info = self.models.get(model_name)
        return self.parser.remove(
            info, Triple.from_text(subject, predicate, obj), force=force)

    # ------------------------------------------------------------------
    # reification (section 5)
    # ------------------------------------------------------------------

    def reify_triple(self, model_name: str,
                     rdf_t_id: int) -> SDO_RDF_TRIPLE_S:
        """The reification constructor: ``SDO_RDF_TRIPLE_S(model, t_id)``.

        Generates ``</ORADB/MDSYS/RDF_LINK$/ROW[LINK_ID=t_id], rdf:type,
        rdf:Statement>`` — the only part of the reification quad the
        store keeps.  The inserted link's REIF_LINK is 'Y' because its
        subject is a DBUri.
        """
        if not self.links.exists(rdf_t_id):
            raise TripleNotFoundError(rdf_t_id)
        self._db.observer.counter("store.reify_triple").inc()
        resource = URI(DBUri.for_link(rdf_t_id).text)
        statement = Triple(resource, _RDF_TYPE, _RDF_STATEMENT)
        return self.insert_triple_obj(model_name, statement)

    def assert_about(self, model_name: str, subject: str, predicate: str,
                     rdf_t_id: int) -> SDO_RDF_TRIPLE_S:
        """Assertion constructor for a direct triple.

        Reifies the triple identified by ``rdf_t_id`` (when not already
        reified) and inserts ``<subject, predicate, DBUri(rdf_t_id)>``.
        """
        if not self.links.exists(rdf_t_id):
            raise TripleNotFoundError(rdf_t_id)
        if not self.is_reified_id(model_name, rdf_t_id):
            self.reify_triple(model_name, rdf_t_id)
        resource = DBUri.for_link(rdf_t_id).text
        assertion = Triple.from_text(subject, predicate, resource)
        return self.insert_triple_obj(model_name, assertion)

    def assert_implied(self, model_name: str, reif_sub: str,
                       reif_prop: str, subject: str, predicate: str,
                       obj: str) -> SDO_RDF_TRIPLE_S:
        """Assertion constructor for an implied statement (section 5.2).

        Inserts the base triple with CONTEXT='I' when it is new (it is
        not a fact, merely mentioned); an already-direct base triple
        keeps its 'D'.  Then reifies it and makes the assertion.
        """
        info = self.models.get(model_name)
        base = Triple.from_text(subject, predicate, obj)
        result = self.parser.insert(info, base, context=Context.INDIRECT,
                                    count_cost=False)
        base_id = result.link_id
        if not self.is_reified_id(model_name, base_id):
            self.reify_triple(model_name, base_id)
        resource = DBUri.for_link(base_id).text
        assertion = Triple.from_text(reif_sub, reif_prop, resource)
        return self.insert_triple_obj(model_name, assertion)

    def assert_base_for_reification(self, model_name: str,
                                    triple: Triple) -> InsertResult:
        """Insert the base triple of a reification without asserting it.

        New triples get CONTEXT='I' (they exist only because something
        reifies them); an existing direct triple keeps its 'D'.  COST is
        not counted — no application row references the base directly.
        """
        info = self.models.get(model_name)
        return self.parser.insert(info, triple, context=Context.INDIRECT,
                                  count_cost=False)

    def is_reified_id(self, model_name: str, rdf_t_id: int) -> bool:
        """Is the triple with ``rdf_t_id`` reified in ``model_name``?

        "To determine if a triple is reified in a specified graph, a
        search is done for its DBUriType" — a single indexed lookup.
        """
        info = self.models.get(model_name)
        resource = URI(DBUri.for_link(rdf_t_id).text)
        subject_id = self.values.find_id(resource)
        if subject_id is None:
            return False
        type_id = self.values.find_id(_RDF_TYPE)
        statement_id = self.values.find_id(_RDF_STATEMENT)
        if type_id is None or statement_id is None:
            return False
        return self.links.find(info.model_id, subject_id, type_id,
                               statement_id) is not None

    def is_reified(self, model_name: str, subject: str, predicate: str,
                   obj: str) -> bool:
        """``SDO_RDF.IS_REIFIED(model, s, p, o)`` (paper Figure 11)."""
        link = self.find_link(model_name, subject, predicate, obj)
        if link is None:
            return False
        return self.is_reified_id(model_name, link.link_id)

    def reified_target(self, dburi_text: str) -> LinkRow:
        """Resolve a reification resource back to its base triple."""
        uri = DBUri.parse(dburi_text)
        if not uri.is_link_uri:
            raise ReificationError(
                f"{dburi_text} is not an rdf_link$ DBUri")
        return self.links.get(uri.link_id)

    # ------------------------------------------------------------------
    # lookups
    # ------------------------------------------------------------------

    def find_link(self, model_name: str, subject: str, predicate: str,
                  obj: str) -> LinkRow | None:
        """The link row for a text triple in a model, or None."""
        info = self.models.get(model_name)
        triple = Triple.from_text(subject, predicate, obj)
        subject_id = self.values.find_id(triple.subject)
        predicate_id = self.values.find_id(triple.predicate)
        object_id = self.values.find_id(triple.object)
        if None in (subject_id, predicate_id, object_id):
            return None
        return self.links.find(info.model_id, subject_id, predicate_id,
                               object_id)

    def is_triple(self, model_name: str, subject: str, predicate: str,
                  obj: str) -> bool:
        """``SDO_RDF.IS_TRIPLE`` semantics."""
        return self.find_link(model_name, subject, predicate, obj) \
            is not None

    def get_triple_s(self, link_id: int) -> SDO_RDF_TRIPLE_S:
        """The storage object for an existing LINK_ID."""
        return self._handle(self.links.get(link_id))

    def lexical_of(self, value_id: int) -> str:
        """Member-function backend: text of a VALUE_ID."""
        return self.values.get_lexical(value_id)

    def term_of(self, value_id: int) -> RDFTerm:
        """The full term object of a VALUE_ID."""
        return self.values.get_term(value_id)

    def triple_of(self, link_id: int) -> Triple:
        """Reassemble the :class:`Triple` stored under LINK_ID."""
        link = self.links.get(link_id)
        subject = self.values.get_term(link.start_node_id)
        predicate = self.values.get_term(link.p_value_id)
        obj = self.values.get_term(link.end_node_id)
        assert isinstance(predicate, URI)
        return Triple(subject, predicate, obj)

    def iter_model_triples(self, model_name: str) -> Iterator[Triple]:
        """All triples of a model as term objects."""
        info = self.models.get(model_name)
        for link in self.links.iter_model(info.model_id):
            yield self.triple_of(link.link_id)

    def attach(self, obj: SDO_RDF_TRIPLE_S) -> SDO_RDF_TRIPLE_S:
        """Attach a detached storage object to this store."""
        return obj.with_store(self)

    def _handle(self, link: LinkRow) -> SDO_RDF_TRIPLE_S:
        return SDO_RDF_TRIPLE_S(
            rdf_t_id=link.link_id, rdf_m_id=link.model_id,
            rdf_s_id=link.start_node_id, rdf_p_id=link.p_value_id,
            rdf_o_id=link.end_node_id, _store=self)

    # ------------------------------------------------------------------
    # NDM integration
    # ------------------------------------------------------------------

    def network(self, model_name: str | None = None) -> LogicalNetwork:
        """The NDM logical network: the whole universe, or one model's
        partition of it."""
        partition = None
        if model_name is not None:
            partition = self.models.get(model_name).model_id
        return LogicalNetwork.open(self._db, RDF_NETWORK_NAME,
                                   partition=partition)

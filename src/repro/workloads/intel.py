"""The Intelligence Community scenario (paper sections 1, 5, 6.1).

Builds the CIA/DHS/FBI application tables and models with the Figure 2
data, the ``ic.address`` side table, and the ``intel_rb`` rulebase —
everything needed to run the Figure 8 inference query and the section 5
reification examples.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.core.apptable import ApplicationTable
from repro.core.sdo_rdf import SDO_RDF
from repro.inference.sdo_rdf_inference import SDO_RDF_INFERENCE
from repro.rdf.namespaces import AliasSet, Namespace, aliases

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.store import RDFStore

#: The government vocabulary namespace of the paper's examples.
GOV = Namespace("http://www.us.gov#")
#: The person-identifier namespace.
IDNS = Namespace("http://www.us.id#")

#: (name, address) rows of the ic.address table joined in Figure 8.
_ADDRESSES = [
    ("JohnDoe", "Brooklyn, NY"),
    ("JaneDoe", "Brooklyn, NY"),
    ("JimDoe", "Trenton, NJ"),
]


@dataclass
class IntelScenario:
    """Handles to the built scenario."""

    store: "RDFStore"
    sdo_rdf: SDO_RDF
    inference: SDO_RDF_INFERENCE
    cia: ApplicationTable
    dhs: ApplicationTable
    fbi: ApplicationTable
    aliases: AliasSet

    MODEL_NAMES = ("cia", "dhs", "fbi")
    RULEBASE = "intel_rb"
    RULES_INDEX = "rdfs_rix_intel"

    @classmethod
    def build(cls, store: "RDFStore",
              with_rules_index: bool = True) -> "IntelScenario":
        """Create tables, models, data, rulebase, and rules index."""
        sdo_rdf = SDO_RDF(store)
        inference = SDO_RDF_INFERENCE(store)
        tables: dict[str, ApplicationTable] = {}
        for model in cls.MODEL_NAMES:
            table_name = f"{model}data"
            ApplicationTable.create(store, table_name)
            sdo_rdf.create_rdf_model(model, table_name)
            tables[model] = ApplicationTable.open(store, table_name)
        scenario = cls(
            store=store, sdo_rdf=sdo_rdf, inference=inference,
            cia=tables["cia"], dhs=tables["dhs"], fbi=tables["fbi"],
            aliases=aliases(("gov", GOV.base), ("id", IDNS.base)))
        scenario._load_figure2_data()
        scenario._create_address_table()
        scenario._create_rulebase()
        if with_rules_index:
            scenario.create_rules_index()
        return scenario

    # ------------------------------------------------------------------
    # data loading
    # ------------------------------------------------------------------

    def _load_figure2_data(self) -> None:
        """The Figure 2 triples, full-URI form."""
        files = GOV.files.value
        suspect = GOV.terrorSuspect.value
        self.cia.insert(1, "cia", files, suspect, IDNS.JohnDoe.value)
        self.cia.insert(2, "cia", files, suspect, IDNS.JaneDoe.value)
        self.dhs.insert(1, "dhs", IDNS.JimDoe.value,
                        GOV.terrorAction.value, '"bombing"')
        self.dhs.insert(2, "dhs", files, suspect, IDNS.JohnDoe.value)
        self.fbi.insert(1, "fbi", IDNS.JohnDoe.value,
                        GOV.enteredCountry.value, '"June-20-2000"')
        self.fbi.insert(2, "fbi", files, suspect, IDNS.JohnDoe.value)

    def _create_address_table(self) -> None:
        """The ic.address table of Figure 8 (name joined on the ID local
        name)."""
        database = self.store.database
        database.execute(
            "CREATE TABLE ic_address (name TEXT PRIMARY KEY, "
            "address TEXT NOT NULL)")
        database.executemany(
            "INSERT INTO ic_address VALUES (?, ?)",
            [(IDNS.term(name).value, address)
             for name, address in _ADDRESSES])

    def _create_rulebase(self) -> None:
        """intel_rb: bombers are terror suspects (Figure 8)."""
        self.inference.create_rulebase(self.RULEBASE)
        self.inference.insert_rule(
            self.RULEBASE, "intel_rule",
            '(?x gov:terrorAction "bombing")', None,
            "(gov:files gov:terrorSuspect ?x)",
            aliases(("gov", GOV.base)))

    def create_rules_index(self) -> None:
        """``CREATE_RULES_INDEX('rdfs_rix_intel', models, rulebases)``."""
        self.inference.create_rules_index(
            self.RULES_INDEX, list(self.MODEL_NAMES),
            ["RDFS", self.RULEBASE])

    # ------------------------------------------------------------------
    # the Figure 8 query
    # ------------------------------------------------------------------

    def terror_watch_list(self) -> list[tuple[str, str]]:
        """The Figure 8 result: (terror_watch_list, location) rows.

        Runs SDO_RDF_MATCH over the three models with the RDFS and
        intel_rb rulebases, then joins the names against ic_address.
        """
        rows = self.inference.match(
            "(gov:files gov:terrorSuspect ?name)",
            list(self.MODEL_NAMES),
            rulebases=["RDFS", self.RULEBASE],
            aliases=self.aliases)
        database = self.store.database
        results: list[tuple[str, str]] = []
        for row in rows:
            address_row = database.query_one(
                "SELECT address FROM ic_address WHERE name = ?",
                (row["name"],))
            if address_row is not None:
                results.append((self.aliases.compact(row["name"]),
                                address_row["address"]))
        results.sort()
        return results

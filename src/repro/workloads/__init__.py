"""Workload generators for the paper's experiments.

* :mod:`repro.workloads.uniprot` — a deterministic synthetic generator
  shaped like the UniProt RDF catalogue the paper benchmarks with
  (LSID URIs, protein records, ``rdfs:seeAlso`` cross-references, the
  paper's reified-statement ratios);
* :mod:`repro.workloads.intel` — the Intelligence Community scenario of
  the paper's sections 1 and 6.1 (CIA/DHS/FBI models, the intel_rb
  rule, the address table).
"""

from repro.workloads.uniprot import (
    PROBE_OBJECT,
    PROBE_SUBJECT,
    UNIPROT,
    UniProtGenerator,
    paper_reified_count,
)
from repro.workloads.intel import IntelScenario, GOV, IDNS

__all__ = [
    "GOV",
    "IDNS",
    "IntelScenario",
    "PROBE_OBJECT",
    "PROBE_SUBJECT",
    "UNIPROT",
    "UniProtGenerator",
    "paper_reified_count",
]

"""Synthetic UniProt-shaped RDF data.

The paper benchmarks on UniProt, "a catalogue of information on proteins
in RDF", at 10 k / 100 k / 1 M / 5 M triples.  That dataset is not
shipped here, so this generator produces a deterministic synthetic
equivalent that preserves everything the experiments touch:

* subjects are protein LSIDs (``urn:lsid:uniprot.org:uniprot:P#####``);
* each protein record carries a realistic predicate mix — ``rdf:type``,
  name/mnemonic literals, dates, organism links, keyword links, and
  ``rdfs:seeAlso`` cross-references into SMART/InterPro/PROSITE/Pfam;
* the paper's probe subject ``P93259`` exists with **exactly 24
  statements** (Table 1 reports 24 rows for the subject query), one of
  them the ``rdfs:seeAlso`` to ``urn:lsid:uniprot.org:smart:SM00101``
  used by the Table 2 IS_REIFIED=true probe;
* the reified-statement counts match the paper's ratios (659 per 10 k,
  247 002 per 5 M), linearly interpolated in between.

Generation is seeded and streaming: ``triples(n)`` yields exactly ``n``
triples without materialising the dataset.
"""

from __future__ import annotations

import random
from typing import Iterator

from repro.rdf.namespaces import Namespace, RDF, RDFS, XSD
from repro.rdf.terms import Literal, URI
from repro.rdf.triple import Triple

#: The UniProt core ontology namespace used by the generator.
UNIPROT = Namespace("urn:lsid:uniprot.org:ontology:")

#: The Table 1 / Table 2 probe subject (paper Figures 9-11).
PROBE_SUBJECT = "urn:lsid:uniprot.org:uniprot:P93259"
#: The Table 2 IS_REIFIED=true probe object.
PROBE_OBJECT = "urn:lsid:uniprot.org:smart:SM00101"
#: The predicate of the true probe statement.
PROBE_PREDICATE = RDFS.term("seeAlso").value

#: Rows returned by the paper's subject query (Table 1).
PROBE_FANOUT = 24

#: Paper-reported reified statement counts per dataset size.
_PAPER_REIFIED = {10_000: 659, 5_000_000: 247_002}

_CROSS_REFERENCE_DBS = ("smart", "interpro", "prosite", "pfam", "embl",
                        "pdb", "go")
_ORGANISMS = tuple(f"urn:lsid:uniprot.org:taxonomy:{tax_id}"
                   for tax_id in (9606, 10090, 10116, 7227, 6239, 4932,
                                  83333, 3702, 7955, 9913))
_KEYWORDS = tuple(f"urn:lsid:uniprot.org:keywords:{kw_id}"
                  for kw_id in range(100, 160))
_AMINO_ACIDS = "ACDEFGHIKLMNPQRSTVWY"


def paper_reified_count(triple_count: int) -> int:
    """Reified-statement count matching the paper's ratios.

    Exact at 10 k and 5 M; linear in the triple count elsewhere (the two
    paper points are nearly collinear through the origin).
    """
    if triple_count in _PAPER_REIFIED:
        return _PAPER_REIFIED[triple_count]
    slope = _PAPER_REIFIED[5_000_000] / 5_000_000
    return max(1, round(triple_count * slope))


class UniProtGenerator:
    """Deterministic synthetic UniProt generator.

    :param seed: PRNG seed; the same seed yields the same dataset.
    """

    def __init__(self, seed: int = 93259) -> None:
        self._seed = seed

    # ------------------------------------------------------------------
    # triples
    # ------------------------------------------------------------------

    def triples(self, count: int) -> Iterator[Triple]:
        """Exactly ``count`` triples, the probe record first."""
        rng = random.Random(self._seed)
        emitted = 0
        for triple in self._probe_record():
            if emitted >= count:
                return
            yield triple
            emitted += 1
        accession = 0
        while emitted < count:
            accession += 1
            for triple in self._protein_record(rng, accession):
                if emitted >= count:
                    return
                yield triple
                emitted += 1

    def _probe_record(self) -> list[Triple]:
        """The P93259 record: exactly PROBE_FANOUT statements."""
        subject = URI(PROBE_SUBJECT)
        see_also = RDFS.seeAlso
        statements = [
            Triple(subject, RDF.type, UNIPROT.Protein),
            Triple(subject, UNIPROT.name,
                   Literal("Probable inactive purple acid phosphatase 27")),
            Triple(subject, UNIPROT.mnemonic, Literal("PPA27_ARATH")),
            Triple(subject, UNIPROT.created,
                   Literal("1997-05-01", datatype=XSD.date)),
            Triple(subject, UNIPROT.modified,
                   Literal("2005-06-07", datatype=XSD.date)),
            Triple(subject, UNIPROT.version,
                   Literal("42", datatype=XSD.int)),
            Triple(subject, UNIPROT.organism, URI(_ORGANISMS[7])),
            Triple(subject, UNIPROT.sequence,
                   Literal("".join(_AMINO_ACIDS[(i * 7) % 20]
                                   for i in range(60)))),
            Triple(subject, see_also, URI(PROBE_OBJECT)),
        ]
        for index in range(1, 9):
            statements.append(Triple(
                subject, see_also,
                URI(f"urn:lsid:uniprot.org:interpro:IPR{index:06d}")))
        for keyword in _KEYWORDS[:6]:
            statements.append(Triple(subject, UNIPROT.keyword,
                                     URI(keyword)))
        statements.append(Triple(subject, UNIPROT.citation,
                                 URI("urn:lsid:uniprot.org:citations:1")))
        assert len(statements) == PROBE_FANOUT, len(statements)
        return statements

    def _protein_record(self, rng: random.Random,
                        accession: int) -> list[Triple]:
        """One synthetic protein record (8-24 statements)."""
        subject = URI(
            f"urn:lsid:uniprot.org:uniprot:Q{accession:06d}")
        statements = [
            Triple(subject, RDF.type, UNIPROT.Protein),
            Triple(subject, UNIPROT.name,
                   Literal(f"Uncharacterized protein {accession}")),
            Triple(subject, UNIPROT.mnemonic,
                   Literal(f"Y{accession % 10000:04d}_SYNTH")),
            Triple(subject, UNIPROT.created,
                   Literal(f"{1990 + accession % 16:04d}-"
                           f"{1 + accession % 12:02d}-"
                           f"{1 + accession % 28:02d}",
                           datatype=XSD.date)),
            Triple(subject, UNIPROT.organism,
                   URI(rng.choice(_ORGANISMS))),
            Triple(subject, UNIPROT.sequence,
                   Literal("".join(rng.choice(_AMINO_ACIDS)
                                   for _ in range(rng.randint(30, 80))))),
        ]
        references: set[str] = set()
        reference_count = rng.randint(1, 8)
        while len(references) < reference_count:
            db = rng.choice(_CROSS_REFERENCE_DBS)
            ref = rng.randint(1, 99_999)
            references.add(f"urn:lsid:uniprot.org:{db}:X{ref:05d}")
        for reference in sorted(references):
            statements.append(Triple(subject, RDFS.seeAlso,
                                     URI(reference)))
        for keyword in rng.sample(_KEYWORDS, rng.randint(1, 10)):
            statements.append(Triple(subject, UNIPROT.keyword,
                                     URI(keyword)))
        return statements

    # ------------------------------------------------------------------
    # reification targets
    # ------------------------------------------------------------------

    def reified_statements(self, triple_count: int,
                           reified_count: int | None = None
                           ) -> list[Triple]:
        """The statements to reify for a dataset of ``triple_count``.

        Reifies ``rdfs:seeAlso`` statements — cross-reference provenance
        is the natural reification target in UniProt — starting with the
        Table 2 true-probe statement, until ``reified_count`` (default:
        the paper's ratio) is reached.
        """
        if reified_count is None:
            reified_count = paper_reified_count(triple_count)
        see_also = RDFS.seeAlso
        selected: list[Triple] = []
        for triple in self.triples(triple_count):
            if triple.predicate != see_also:
                continue
            selected.append(triple)
            if len(selected) >= reified_count:
                break
        return selected

    def false_probe(self) -> Triple:
        """A statement that exists but is never reified (Table 2 false
        probe): the probe subject's rdf:type statement."""
        return Triple(URI(PROBE_SUBJECT), RDF.type, UNIPROT.Protein)

    def true_probe(self) -> Triple:
        """The reified probe statement (Table 2 true probe)."""
        return Triple(URI(PROBE_SUBJECT), RDFS.seeAlso, URI(PROBE_OBJECT))

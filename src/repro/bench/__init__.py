"""Benchmark harness: dataset builders, timing, and paper-style reports.

Each experiment of the paper's section 7 has a driver here that builds
the workload, runs the measured queries, and renders the same table the
paper prints.  The ``benchmarks/`` directory wires these drivers into
pytest-benchmark; the drivers are also directly runnable (see
``python -m repro.bench.run_all``).
"""

from repro.bench.harness import Timer, format_table, mean_time
from repro.bench.datasets import (
    OracleUniProtFixture,
    JenaUniProtFixture,
    load_oracle_uniprot,
    load_jena_uniprot,
)
from repro.bench.experiments import (
    ExperimentResult,
    run_experiment_1,
    run_experiment_2,
    run_experiment_3,
    run_storage_experiment,
)

__all__ = [
    "ExperimentResult",
    "JenaUniProtFixture",
    "OracleUniProtFixture",
    "Timer",
    "format_table",
    "load_jena_uniprot",
    "load_oracle_uniprot",
    "mean_time",
    "run_experiment_1",
    "run_experiment_2",
    "run_experiment_3",
    "run_storage_experiment",
]

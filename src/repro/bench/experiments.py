"""Experiment drivers: the paper's section 7, runnable end to end.

Each ``run_experiment_*`` function builds its workload, executes the
paper's query on both systems, and returns an
:class:`ExperimentResult` whose ``table()`` renders the corresponding
paper table.  Absolute times differ from the paper (different machine,
different engine); the *shapes* the paper claims are what these drivers
demonstrate — see EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.bench.datasets import (
    MODEL_NAME,
    load_jena_uniprot,
    load_oracle_uniprot,
)
from repro.bench.harness import (
    Timer,
    format_seconds,
    format_table,
    run_trials,
)
from repro.core.schema import LINK_TABLE, VALUE_TABLE
from repro.db.connection import Database
from repro.jena2.model import Statement
from repro.reification.naive import NaiveReificationStore
from repro.reification.streamlined import reification_storage
from repro.workloads.uniprot import PROBE_SUBJECT, UniProtGenerator

#: Default dataset sizes (the paper uses 10 k..5 M; the two smallest
#: keep the default run laptop-sized, larger sizes work too).
DEFAULT_SIZES = (10_000, 100_000)


@dataclass
class ExperimentResult:
    """One experiment's structured output."""

    experiment: str
    headers: list[str]
    rows: list[list[object]]
    notes: list[str] = field(default_factory=list)
    #: label -> Timer summary (trials/mean/p50/p95/stdev/best); the
    #: machine-readable timings behind the formatted cells.
    stats: dict[str, dict[str, float]] = field(default_factory=dict)

    def table(self) -> str:
        text = format_table(self.headers, self.rows,
                            title=self.experiment)
        if self.notes:
            text += "\n" + "\n".join(f"note: {note}" for note in self.notes)
        return text

    def record(self, label: str, timer: Timer) -> None:
        """Keep one timer's full statistics under ``label``."""
        self.stats[label] = timer.summary()

    def to_dict(self) -> dict:
        """JSON-ready form for the ``BENCH_*.json`` snapshots."""
        return {
            "experiment": self.experiment,
            "headers": list(self.headers),
            "rows": [list(row) for row in self.rows],
            "notes": list(self.notes),
            "stats": {label: dict(summary)
                      for label, summary in self.stats.items()},
        }


def _quantiles(timer: Timer) -> str:
    """The ``p50/p95`` cell next to each mean column."""
    return f"{timer.p50:.2f}/{timer.p95:.2f}"


# ----------------------------------------------------------------------
# Experiment I: flat storage tables versus member functions
# ----------------------------------------------------------------------

def flat_table_subject_query(database: Database, model_id: int,
                             subject_text: str) -> list[tuple]:
    """The Figure 9 query against the raw storage tables.

    Three joins against rdf_value$ plus the rdf_link$ scan — the query a
    user would write without the object member functions.
    """
    sql = (
        f'SELECT a.value_name AS subject, b.value_name AS property, '
        f'c.value_name AS object '
        f'FROM "{VALUE_TABLE}" a, "{VALUE_TABLE}" b, "{VALUE_TABLE}" c, '
        f'"{LINK_TABLE}" d '
        "WHERE d.model_id = ? AND a.value_id = d.start_node_id "
        "AND b.value_id = d.p_value_id AND c.value_id = d.end_node_id "
        "AND a.value_name = ?")
    return [tuple(row) for row in database.query_all(
        sql, (model_id, subject_text))]


def run_experiment_1(triple_count: int = DEFAULT_SIZES[0],
                     trials: int = 10) -> ExperimentResult:
    """Experiment I: member functions vs direct storage-table query."""
    fixture = load_oracle_uniprot(triple_count)
    model_id = fixture.store.models.get(MODEL_NAME).model_id
    member = run_trials(
        lambda: fixture.table.get_triples("GET_SUBJECT", PROBE_SUBJECT),
        trials=trials, label="member_functions")
    flat = run_trials(
        lambda: flat_table_subject_query(fixture.store.database,
                                         model_id, PROBE_SUBJECT),
        trials=trials, label="flat_tables")
    rows_returned = len(
        fixture.table.get_triples("GET_SUBJECT", PROBE_SUBJECT))
    result = ExperimentResult(
        experiment=("Experiment I: flat storage tables versus member "
                    f"functions ({triple_count:,} triples)"),
        headers=["Access path", "Mean (sec)", "p50/p95", "Rows"],
        rows=[
            ["Member functions (GET_SUBJECT)",
             format_seconds(member.mean), _quantiles(member),
             rows_returned],
            ["Flat storage tables (3-way join)",
             format_seconds(flat.mean), _quantiles(flat),
             rows_returned],
        ],
        notes=["paper: member functions perform similarly or slightly "
               "better; no significant object overhead"])
    result.record("member_functions", member)
    result.record("flat_tables", flat)
    fixture.store.close()
    return result


# ----------------------------------------------------------------------
# Experiment II / Table 1: Jena2 versus RDF storage objects
# ----------------------------------------------------------------------

def run_experiment_2(sizes: tuple[int, ...] = DEFAULT_SIZES,
                     trials: int = 10) -> ExperimentResult:
    """Table 1: the subject query on both systems across sizes."""
    rows: list[list[object]] = []
    result = ExperimentResult(
        experiment="Table 1. Query times on the UniProt datasets",
        headers=["Triples", "Jena2 (sec)", "Jena2 p50/p95",
                 "RDF objects (sec)", "RDF p50/p95", "Rows"],
        rows=rows,
        notes=["paper: both systems similar; times flat in dataset size "
               "for constant result cardinality (24 rows)"])
    for size in sizes:
        oracle = load_oracle_uniprot(size)
        jena = load_jena_uniprot(size)
        probe = jena.model.get_resource(PROBE_SUBJECT)
        jena_timer = run_trials(
            lambda: list(jena.model.list_statements(subject=probe)),
            trials=trials, label=f"jena2_{size}")
        oracle_timer = run_trials(
            lambda: oracle.table.get_triples("GET_SUBJECT", PROBE_SUBJECT),
            trials=trials, label=f"oracle_{size}")
        returned = len(list(jena.model.list_statements(subject=probe)))
        rows.append([f"{_label(size)}",
                     format_seconds(jena_timer.mean),
                     _quantiles(jena_timer),
                     format_seconds(oracle_timer.mean),
                     _quantiles(oracle_timer), returned])
        result.record(f"jena2_{size}", jena_timer)
        result.record(f"oracle_{size}", oracle_timer)
        oracle.store.close()
        jena.jena.close()
    return result


# ----------------------------------------------------------------------
# Experiment III / Table 2: IS_REIFIED in Jena2 versus Oracle
# ----------------------------------------------------------------------

def run_experiment_3(sizes: tuple[int, ...] = DEFAULT_SIZES,
                     trials: int = 10) -> ExperimentResult:
    """Table 2: IS_REIFIED true/false probes on both systems."""
    generator = UniProtGenerator()
    true_probe = generator.true_probe()
    false_probe = generator.false_probe()
    rows: list[list[object]] = []
    result = ExperimentResult(
        experiment=("Table 2. IS_REIFIED() query times on the UniProt "
                    "datasets"),
        headers=["Triples/Stmts", "Jena2 (sec)", "Jena2 p50/p95",
                 "RDF objects (sec)", "RDF p50/p95", "Res"],
        rows=rows,
        notes=["paper: both ~0.00-0.01 s at every size; single-row "
               "retrieval on both systems"])
    for size in sizes:
        oracle = load_oracle_uniprot(size)
        jena = load_jena_uniprot(size)
        for probe, expected in ((true_probe, True), (false_probe, False)):
            statement = Statement.from_triple(probe)
            suffix = "true" if expected else "false"
            jena_timer = run_trials(
                lambda: jena.model.is_reified(statement), trials=trials,
                label=f"jena2_{size}_{suffix}")
            oracle_timer = run_trials(
                lambda: oracle.sdo_rdf.is_reified(
                    MODEL_NAME, probe.subject.lexical,
                    probe.predicate.lexical, probe.object.lexical),
                trials=trials, label=f"oracle_{size}_{suffix}")
            jena_answer = jena.model.is_reified(statement)
            oracle_answer = oracle.sdo_rdf.is_reified(
                MODEL_NAME, probe.subject.lexical,
                probe.predicate.lexical, probe.object.lexical)
            assert jena_answer == oracle_answer == expected, (
                size, expected, jena_answer, oracle_answer)
            rows.append([
                f"{_label(size)} /{oracle.reified_count}",
                format_seconds(jena_timer.mean), _quantiles(jena_timer),
                format_seconds(oracle_timer.mean),
                _quantiles(oracle_timer), suffix])
            result.record(f"jena2_{size}_{suffix}", jena_timer)
            result.record(f"oracle_{size}_{suffix}", oracle_timer)
        oracle.store.close()
        jena.jena.close()
    return result


# ----------------------------------------------------------------------
# EXP-STOR: reification storage (section 7.3)
# ----------------------------------------------------------------------

def run_storage_experiment(reified_count: int = 659,
                           triple_count: int = 10_000
                           ) -> ExperimentResult:
    """Streamlined vs naive reification storage.

    The paper: "Reification in Oracle requires only 25% of the storage
    required by naive implementations, which store the entire
    reification quad."  Rows tell the story exactly (1 vs 4 per
    reification); bytes land near 25 % as well since each quad row
    repeats the resource text.
    """
    fixture = load_oracle_uniprot(triple_count,
                                  reified_count=reified_count)
    streamlined = reification_storage(fixture.store, MODEL_NAME)
    # Statement-count comparison: 1 stored triple per reification
    # against the naive 4 (this is the paper's 25 %).
    streamlined_statements = fixture.reified_count
    naive = NaiveReificationStore(Database())
    generator = UniProtGenerator()
    for statement in generator.reified_statements(triple_count,
                                                  reified_count):
        naive.reify(statement)
    naive_report = naive.storage()
    statement_ratio = streamlined_statements / max(
        naive_report.row_count, 1)
    byte_ratio = streamlined.ratio_to(naive_report)
    result = ExperimentResult(
        experiment=("Reification storage: streamlined (DBUri) versus "
                    f"naive quad ({fixture.reified_count} reifications)"),
        headers=["Scheme", "Stored triples", "Bytes", "Ratio vs naive"],
        rows=[
            ["Naive quad (4 triples each)", naive_report.row_count,
             naive_report.byte_count, "1.00 / 1.00"],
            ["Streamlined (1 triple each)", streamlined_statements,
             streamlined.byte_count,
             f"{statement_ratio:.2f} / {byte_ratio:.2f}"],
        ],
        notes=["paper section 7.3: streamlined reification requires "
               "only 25% of naive storage (1 stored triple per "
               "reification instead of 4)"])
    fixture.store.close()
    return result


def _label(size: int) -> str:
    if size >= 1_000_000:
        return f"{size // 1_000_000} M"
    if size >= 1_000:
        return f"{size // 1_000} k"
    return str(size)

"""Timing and reporting utilities for the experiment drivers.

The paper reports "the mean results of ten trials with warm caches";
:func:`mean_time` reproduces that protocol (warm-up run, then the mean
of N timed trials).  :class:`Timer` additionally reports p50/p95 and
standard deviation so tail behaviour is visible, not just the mean.
:func:`format_table` renders aligned text tables in the style of the
paper's Tables 1 and 2, and :func:`write_bench_json` emits the
machine-readable ``BENCH_*.json`` snapshots tracked across PRs for the
perf trajectory.
"""

from __future__ import annotations

import json
import math
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Sequence

#: Filename prefix of machine-readable benchmark snapshots.
BENCH_SNAPSHOT_PREFIX = "BENCH_"


@dataclass
class Timer:
    """Accumulates wall-clock samples for one measured operation."""

    label: str
    samples: list[float] = field(default_factory=list)

    def time(self, operation: Callable[[], object]) -> object:
        """Run ``operation`` once, recording its wall time."""
        start = time.perf_counter()
        result = operation()
        self.samples.append(time.perf_counter() - start)
        return result

    @property
    def mean(self) -> float:
        if not self.samples:
            return 0.0
        return sum(self.samples) / len(self.samples)

    @property
    def best(self) -> float:
        return min(self.samples) if self.samples else 0.0

    def percentile(self, q: float) -> float:
        """Exact q-quantile (``q`` in [0, 1]) over the recorded samples
        with linear interpolation between closest ranks."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if not self.samples:
            return 0.0
        ordered = sorted(self.samples)
        if len(ordered) == 1:
            return ordered[0]
        rank = q * (len(ordered) - 1)
        low = math.floor(rank)
        high = math.ceil(rank)
        if low == high:
            return ordered[low]
        fraction = rank - low
        return ordered[low] + (ordered[high] - ordered[low]) * fraction

    @property
    def p50(self) -> float:
        return self.percentile(0.50)

    @property
    def p95(self) -> float:
        return self.percentile(0.95)

    @property
    def stdev(self) -> float:
        """Sample standard deviation (0.0 with fewer than 2 samples)."""
        count = len(self.samples)
        if count < 2:
            return 0.0
        mean = self.mean
        variance = sum((sample - mean) ** 2
                       for sample in self.samples) / (count - 1)
        return math.sqrt(variance)

    def summary(self) -> dict[str, float]:
        """The JSON-ready statistics of this timer."""
        return {
            "trials": len(self.samples),
            "mean": self.mean,
            "p50": self.p50,
            "p95": self.p95,
            "stdev": self.stdev,
            "best": self.best,
        }


def run_trials(operation: Callable[[], object], trials: int = 10,
               warmup: int = 1, label: str = "op") -> Timer:
    """The paper's warm-cache protocol, returning the full Timer.

    Runs ``warmup`` unmeasured executions, then ``trials`` timed ones.
    Use :func:`mean_time` when only the mean matters.
    """
    for _ in range(warmup):
        operation()
    timer = Timer(label)
    for _ in range(trials):
        timer.time(operation)
    return timer


def mean_time(operation: Callable[[], object], trials: int = 10,
              warmup: int = 1) -> float:
    """Mean wall time over ``trials`` runs after ``warmup`` unmeasured
    runs — the paper's warm-cache protocol."""
    return run_trials(operation, trials=trials, warmup=warmup).mean


def format_seconds(seconds: float) -> str:
    """Seconds to 2 decimals, like the paper's tables (0.00 means
    'less than a hundredth of a second')."""
    return f"{seconds:.2f}"


def format_timing_cell(timer: Timer) -> str:
    """``mean/p95`` rendering for table cells — the tail next to the
    headline number the paper reports."""
    return f"{timer.mean:.2f}/{timer.p95:.2f}"


def format_table(headers: Sequence[str],
                 rows: Sequence[Sequence[object]],
                 title: str | None = None) -> str:
    """Render an aligned text table."""
    text_rows = [[str(cell) for cell in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in text_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines: list[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(header.ljust(width)
                           for header, width in zip(headers, widths)))
    lines.append("  ".join("-" * width for width in widths))
    for row in text_rows:
        lines.append("  ".join(cell.ljust(width)
                               for cell, width in zip(row, widths)))
    return "\n".join(lines)


def write_bench_json(name: str, payload: dict[str, Any],
                     directory: str | Path = ".") -> Path:
    """Write one machine-readable ``BENCH_<name>.json`` snapshot.

    The snapshot carries whatever the driver measured — timings
    (p50/p95, not just means), metrics-registry dumps, dataset sizes —
    so the perf trajectory across PRs is diffable without re-parsing
    text tables.
    """
    path = Path(directory) / f"{BENCH_SNAPSHOT_PREFIX}{name}.json"
    path.write_text(json.dumps(payload, indent=2, sort_keys=True,
                               default=repr) + "\n", encoding="utf-8")
    return path

"""Timing and reporting utilities for the experiment drivers.

The paper reports "the mean results of ten trials with warm caches";
:func:`mean_time` reproduces that protocol (warm-up run, then the mean
of N timed trials).  :func:`format_table` renders aligned text tables in
the style of the paper's Tables 1 and 2.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Sequence


@dataclass
class Timer:
    """Accumulates wall-clock samples for one measured operation."""

    label: str
    samples: list[float] = field(default_factory=list)

    def time(self, operation: Callable[[], object]) -> object:
        """Run ``operation`` once, recording its wall time."""
        start = time.perf_counter()
        result = operation()
        self.samples.append(time.perf_counter() - start)
        return result

    @property
    def mean(self) -> float:
        if not self.samples:
            return 0.0
        return sum(self.samples) / len(self.samples)

    @property
    def best(self) -> float:
        return min(self.samples) if self.samples else 0.0


def mean_time(operation: Callable[[], object], trials: int = 10,
              warmup: int = 1) -> float:
    """Mean wall time over ``trials`` runs after ``warmup`` unmeasured
    runs — the paper's warm-cache protocol."""
    for _ in range(warmup):
        operation()
    timer = Timer("op")
    for _ in range(trials):
        timer.time(operation)
    return timer.mean


def format_seconds(seconds: float) -> str:
    """Seconds to 2 decimals, like the paper's tables (0.00 means
    'less than a hundredth of a second')."""
    return f"{seconds:.2f}"


def format_table(headers: Sequence[str],
                 rows: Sequence[Sequence[object]],
                 title: str | None = None) -> str:
    """Render an aligned text table."""
    text_rows = [[str(cell) for cell in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in text_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines: list[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(header.ljust(width)
                           for header, width in zip(headers, widths)))
    lines.append("  ".join("-" * width for width in widths))
    for row in text_rows:
        lines.append("  ".join(cell.ljust(width)
                               for cell, width in zip(row, widths)))
    return "\n".join(lines)

"""Dataset fixtures: UniProt-shaped data loaded into both systems.

The experiment drivers need the same synthetic dataset in two places:
the RDF-objects store (application table + central schema + the
section 7.2 function-based indexes + streamlined reifications) and the
Jena2 store (asserted + reified statement tables).  These loaders build
both, deterministically, from :class:`repro.workloads.uniprot.
UniProtGenerator`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.apptable import ApplicationTable
from repro.core.sdo_rdf import SDO_RDF
from repro.core.store import RDFStore
from repro.db.indexes import create_function_based_index
from repro.jena2.model import JenaModel, Statement
from repro.jena2.store import Jena2Store
from repro.workloads.uniprot import UniProtGenerator, paper_reified_count

#: The model/table base name used by all UniProt fixtures.
MODEL_NAME = "uniprot"


@dataclass
class OracleUniProtFixture:
    """The RDF-objects side of a loaded dataset."""

    store: RDFStore
    sdo_rdf: SDO_RDF
    table: ApplicationTable
    triple_count: int
    reified_count: int


@dataclass
class JenaUniProtFixture:
    """The Jena2 side of a loaded dataset."""

    jena: Jena2Store
    model: JenaModel
    triple_count: int
    reified_count: int


def load_oracle_uniprot(triple_count: int,
                        reified_count: int | None = None,
                        with_indexes: bool = True,
                        store: RDFStore | None = None,
                        seed: int = 93259) -> OracleUniProtFixture:
    """Load the synthetic dataset into a fresh (or given) RDF store.

    Mirrors the paper's setup: application table ``uniprot<n>``, model
    ``uniprot``, the three function-based indexes of section 7.2, and
    streamlined reifications at the paper's ratio.
    """
    if store is None:
        store = RDFStore()
    if reified_count is None:
        reified_count = paper_reified_count(triple_count)
    generator = UniProtGenerator(seed=seed)
    table_name = f"uniprot{_size_suffix(triple_count)}"
    sdo_rdf = SDO_RDF(store)
    table = ApplicationTable.create(store, table_name)
    sdo_rdf.create_rdf_model(MODEL_NAME, table_name)
    row_id = 0
    with store.database.transaction():
        for triple in generator.triples(triple_count):
            row_id += 1
            obj = store.insert_triple_obj(MODEL_NAME, triple)
            table.insert_object(row_id, obj)
    if with_indexes:
        prefix = f"up{_size_suffix(triple_count)}"
        create_function_based_index(
            store.database, f"{prefix}_sub_fbidx", table_name,
            "GET_SUBJECT")
        create_function_based_index(
            store.database, f"{prefix}_prop_fbidx", table_name,
            "GET_PROPERTY")
        create_function_based_index(
            store.database, f"{prefix}_obj_fbidx", table_name,
            "GET_OBJECT")
    reified = 0
    with store.database.transaction():
        for statement in generator.reified_statements(
                triple_count, reified_count):
            link = store.find_link(
                MODEL_NAME, str(statement.subject),
                str(statement.predicate), _object_text(statement))
            if link is None:
                continue
            if not store.is_reified_id(MODEL_NAME, link.link_id):
                store.reify_triple(MODEL_NAME, link.link_id)
                reified += 1
    return OracleUniProtFixture(store, sdo_rdf, table, triple_count,
                                reified)


def load_jena_uniprot(triple_count: int,
                      reified_count: int | None = None,
                      jena: Jena2Store | None = None,
                      seed: int = 93259) -> JenaUniProtFixture:
    """Load the same dataset into a Jena2 store."""
    if jena is None:
        jena = Jena2Store()
    if reified_count is None:
        reified_count = paper_reified_count(triple_count)
    generator = UniProtGenerator(seed=seed)
    model = jena.create_model(MODEL_NAME)
    with jena.database.transaction():
        model.add_all(generator.triples(triple_count))
        reified = 0
        for statement in generator.reified_statements(
                triple_count, reified_count):
            model.create_reified_statement(Statement.from_triple(statement))
            reified += 1
    return JenaUniProtFixture(jena, model, triple_count, reified)


def _size_suffix(triple_count: int) -> str:
    """5_000_000 -> '5m', 10_000 -> '10k', 1234 -> '1234'."""
    if triple_count % 1_000_000 == 0:
        return f"{triple_count // 1_000_000}m"
    if triple_count % 1_000 == 0:
        return f"{triple_count // 1_000}k"
    return str(triple_count)


def _object_text(statement) -> str:
    """The constructor-argument spelling of a triple object."""
    from repro.rdf.terms import Literal
    obj = statement.object
    if isinstance(obj, Literal):
        return str(obj)
    return obj.lexical

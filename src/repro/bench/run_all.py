"""Run every paper experiment and print the paper-style tables.

Usage::

    python -m repro.bench.run_all [--sizes 10000,100000] [--trials 10]
                                  [--json-dir DIR | --no-json]

This is the script that regenerates the measured numbers recorded in
EXPERIMENTS.md and ``experiments_output.txt``.  Unless ``--no-json`` is
given it also writes a machine-readable ``BENCH_experiments.json``
snapshot (timings with p50/p95, plus a metrics/span snapshot from an
observed run) so the perf trajectory across PRs is diffable.
"""

from __future__ import annotations

import argparse
import time

from repro.bench.experiments import (
    run_experiment_1,
    run_experiment_2,
    run_experiment_3,
    run_storage_experiment,
)
from repro.bench.harness import write_bench_json
from repro.core.store import RDFStore
from repro.workloads.intel import IntelScenario


def run_figure8_observed(observe: bool = True) -> tuple[str, dict]:
    """The Figure 8 inference output plus the observability snapshot
    of the run (SQL timings, spans, counters) when ``observe``."""
    store = RDFStore(observe=observe)
    intel = IntelScenario.build(store)
    lines = ["Figure 8. Inference over the IC applications",
             f"{'TERROR_WATCH_LIST':<24}LOCATION",
             "-" * 44]
    for name, location in intel.terror_watch_list():
        lines.append(f"{name:<24}{location}")
    snapshot = store.observer.snapshot()
    store.close()
    return "\n".join(lines), snapshot


def run_figure8() -> str:
    """The Figure 8 inference output."""
    text, _snapshot = run_figure8_observed(observe=False)
    return text


def main(argv: list[str] | None = None) -> None:
    parser = argparse.ArgumentParser(
        description="Run all paper experiments")
    parser.add_argument("--sizes", default="10000,100000",
                        help="comma-separated triple counts")
    parser.add_argument("--trials", type=int, default=10,
                        help="timed trials per measurement")
    parser.add_argument("--json-dir", default=".",
                        help="directory for the BENCH_experiments.json "
                        "snapshot")
    parser.add_argument("--no-json", action="store_true",
                        help="skip the machine-readable snapshot")
    args = parser.parse_args(argv)
    sizes = tuple(int(size) for size in args.sizes.split(","))

    start = time.perf_counter()
    experiment_1 = run_experiment_1(sizes[0], trials=args.trials)
    print(experiment_1.table())
    print()
    experiment_2 = run_experiment_2(sizes, trials=args.trials)
    print(experiment_2.table())
    print()
    experiment_3 = run_experiment_3(sizes, trials=args.trials)
    print(experiment_3.table())
    print()
    storage = run_storage_experiment()
    print(storage.table())
    print()
    figure8, observability = run_figure8_observed(
        observe=not args.no_json)
    print(figure8)
    total = time.perf_counter() - start
    print(f"\ntotal: {total:.1f}s")
    if not args.no_json:
        path = write_bench_json("experiments", {
            "sizes": list(sizes),
            "trials": args.trials,
            "total_seconds": total,
            "experiments": [result.to_dict()
                            for result in (experiment_1, experiment_2,
                                           experiment_3, storage)],
            "figure8_observability": observability,
        }, directory=args.json_dir)
        print(f"snapshot: {path}")


if __name__ == "__main__":
    main()

"""Run every paper experiment and print the paper-style tables.

Usage::

    python -m repro.bench.run_all [--sizes 10000,100000] [--trials 10]

This is the script that regenerates the measured numbers recorded in
EXPERIMENTS.md.
"""

from __future__ import annotations

import argparse
import time

from repro.bench.experiments import (
    run_experiment_1,
    run_experiment_2,
    run_experiment_3,
    run_storage_experiment,
)
from repro.core.store import RDFStore
from repro.workloads.intel import IntelScenario


def run_figure8() -> str:
    """The Figure 8 inference output."""
    store = RDFStore()
    intel = IntelScenario.build(store)
    lines = ["Figure 8. Inference over the IC applications",
             f"{'TERROR_WATCH_LIST':<24}LOCATION",
             "-" * 44]
    for name, location in intel.terror_watch_list():
        lines.append(f"{name:<24}{location}")
    store.close()
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> None:
    parser = argparse.ArgumentParser(
        description="Run all paper experiments")
    parser.add_argument("--sizes", default="10000,100000",
                        help="comma-separated triple counts")
    parser.add_argument("--trials", type=int, default=10,
                        help="timed trials per measurement")
    args = parser.parse_args(argv)
    sizes = tuple(int(size) for size in args.sizes.split(","))

    start = time.perf_counter()
    print(run_experiment_1(sizes[0], trials=args.trials).table())
    print()
    print(run_experiment_2(sizes, trials=args.trials).table())
    print()
    print(run_experiment_3(sizes, trials=args.trials).table())
    print()
    print(run_storage_experiment().table())
    print()
    print(run_figure8())
    print(f"\ntotal: {time.perf_counter() - start:.1f}s")


if __name__ == "__main__":
    main()

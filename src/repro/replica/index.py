"""The per-predicate vertical partition: sorted SO and OS pair arrays.

One :class:`PredicateIndex` holds every (subject, object) VALUE_ID
pair of one predicate of one model, twice: once sorted subject-major
(the SO order) and once object-major (the OS order).  Both are flat
``array('q')`` buffers — pair *i* lives at offsets ``2i``/``2i+1`` —
so every lookup is a binary search over machine words instead of a
SQL round-trip.

The builder additionally *pre-decodes* the dictionary: aligned with
each order it stores the resolved :class:`~repro.rdf.terms.RDFTerm`
references (:meth:`attach_terms`), so serving a query is slicing a
list of already-built terms — no per-query ``rdf_value$`` round trip,
no per-row decode.  Value rows are immutable (a VALUE_ID never
changes meaning), so the decoded view can never go stale while the id
arrays are fresh.  Decoding also hashes the group boundaries: the
*subject directory* and *object directory* map each distinct
subject/object VALUE_ID to its pair range, turning the per-lookup
binary search into one dict probe — the difference between
``O(log n)`` interpreted comparisons and a hash hit per star-join
candidate.

A partition of *n* triples therefore costs ``32 n`` id-array bytes,
``24 n`` pointer bytes for the three aligned term lists (the term
objects themselves are shared with the store's value cache), and an
estimated 96 bytes per distinct subject/object for the directories —
``nbytes`` reports the sum, the unit the manager's memory cap
accounts in.

Partitions are immutable after construction: the replica manager
swaps whole partitions on refresh, so a reader that grabbed a
reference keeps a consistent snapshot even while a rebuild runs.
"""

from __future__ import annotations

from array import array
from typing import TYPE_CHECKING, Iterable, Iterator

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.rdf.terms import RDFTerm

#: Sentinel below every real VALUE_ID (rowids are >= 1).
_MIN_ID = -(2 ** 63)

#: The shared empty pair range a directory miss resolves to.
_EMPTY_SLICE = (0, 0)


def _pack_pairs(pairs: list[tuple[int, int]]) -> array:
    """Flatten sorted (a, b) pairs into one ``array('q')`` buffer."""
    flat = array("q", bytes(16 * len(pairs)))
    position = 0
    for a, b in pairs:
        flat[position] = a
        flat[position + 1] = b
        position += 2
    return flat


#: Estimated dict bytes per directory entry (int key, (lo, hi) tuple
#: value, hash-slot overhead) — a sizing constant for the memory cap,
#: not an exact measurement.
_DIRECTORY_ENTRY_BYTES = 96


def _directory(flat: array) -> dict[int, tuple[int, int]]:
    """Map each distinct leading id of a flat pair buffer to its pair
    range ``(lo, hi)``.  Insertion order is ascending key order (the
    buffer is sorted), which :meth:`PredicateIndex.subject_entries`
    relies on."""
    found: dict[int, tuple[int, int]] = {}
    count = len(flat) // 2
    last = _MIN_ID
    start = 0
    for position in range(count):
        key = flat[2 * position]
        if key != last:
            if position > start:
                found[last] = (start, position)
            last = key
            start = position
    if count > start:
        found[last] = (start, count)
    return found


def _bisect_pairs(flat: array, first: int, second: int) -> int:
    """Index of the first pair >= ``(first, second)`` in a flat
    pair-major sorted buffer (standard bisect_left, inlined over the
    virtual pair list)."""
    lo, hi = 0, len(flat) // 2
    while lo < hi:
        mid = (lo + hi) // 2
        offset = 2 * mid
        a = flat[offset]
        if a < first or (a == first and flat[offset + 1] < second):
            lo = mid + 1
        else:
            hi = mid
    return lo


class PredicateIndex:
    """The (SO, OS) pair arrays of one predicate of one model."""

    __slots__ = ("predicate_id", "_so", "_os", "predicate_term",
                 "s_terms", "o_terms", "os_s_terms", "s_dir", "o_dir")

    def __init__(self, predicate_id: int,
                 pairs: Iterable[tuple[int, int]]) -> None:
        self.predicate_id = predicate_id
        ordered = sorted(pairs)
        self._so = _pack_pairs(ordered)
        ordered.sort(key=lambda pair: (pair[1], pair[0]))
        self._os = array(
            "q", (value for s, o in ordered for value in (o, s)))
        #: Filled by :meth:`attach_terms`; ``None`` until then (the
        #: generic id-level lookups work either way).
        self.predicate_term: "RDFTerm | None" = None
        self.s_terms: "list[RDFTerm] | None" = None
        self.o_terms: "list[RDFTerm] | None" = None
        self.os_s_terms: "list[RDFTerm] | None" = None
        self.s_dir: "dict[int, tuple[int, int]] | None" = None
        self.o_dir: "dict[int, tuple[int, int]] | None" = None

    def attach_terms(self, terms: dict, predicate_term) -> None:
        """Pre-decode the dictionary: aligned term lists per order.

        ``terms`` must cover every subject and object VALUE_ID in the
        partition.  ``s_terms``/``o_terms`` align with the SO pair
        order, ``os_s_terms`` with the OS order (the subject terms an
        object-anchored slice projects).  Also builds the subject and
        object directories, so the per-lookup binary searches become
        dict probes."""
        so, os_ = self._so, self._os
        self.predicate_term = predicate_term
        self.s_terms = [terms[so[i]] for i in range(0, len(so), 2)]
        self.o_terms = [terms[so[i]] for i in range(1, len(so), 2)]
        self.os_s_terms = [terms[os_[i]]
                           for i in range(1, len(os_), 2)]
        self.s_dir = _directory(so)
        self.o_dir = _directory(os_)

    # ------------------------------------------------------------------
    # lookups
    # ------------------------------------------------------------------

    def objects_for(self, subject_id: int) -> list[int]:
        """All object VALUE_IDs linked from ``subject_id`` (sorted)."""
        flat = self._so
        lo, hi = self.objects_slice(subject_id)
        return [flat[2 * i + 1] for i in range(lo, hi)]

    def subjects_for(self, object_id: int) -> list[int]:
        """All subject VALUE_IDs linking to ``object_id`` (sorted)."""
        flat = self._os
        lo, hi = self.subjects_slice(object_id)
        return [flat[2 * i + 1] for i in range(lo, hi)]

    def objects_slice(self, subject_id: int) -> tuple[int, int]:
        """Pair-index range ``[lo, hi)`` of ``subject_id`` in the SO
        order — ``o_terms[lo:hi]`` are its objects, pre-decoded."""
        directory = self.s_dir
        if directory is not None:
            return directory.get(subject_id, _EMPTY_SLICE)
        flat = self._so
        lo = _bisect_pairs(flat, subject_id, _MIN_ID)
        hi = _bisect_pairs(flat, subject_id + 1, _MIN_ID)
        return lo, hi

    def subjects_slice(self, object_id: int) -> tuple[int, int]:
        """Pair-index range ``[lo, hi)`` of ``object_id`` in the OS
        order — ``os_s_terms[lo:hi]`` are its subjects, pre-decoded."""
        directory = self.o_dir
        if directory is not None:
            return directory.get(object_id, _EMPTY_SLICE)
        flat = self._os
        lo = _bisect_pairs(flat, object_id, _MIN_ID)
        hi = _bisect_pairs(flat, object_id + 1, _MIN_ID)
        return lo, hi

    def contains(self, subject_id: int, object_id: int) -> bool:
        """Is the (subject, object) pair in this partition?"""
        flat = self._so
        directory = self.s_dir
        if directory is not None:
            span = directory.get(subject_id)
            if span is None:
                return False
            lo, hi = span
            while lo < hi:  # bisect the objects of one subject
                mid = (lo + hi) // 2
                if flat[2 * mid + 1] < object_id:
                    lo = mid + 1
                else:
                    hi = mid
            return lo < span[1] and flat[2 * lo + 1] == object_id
        position = _bisect_pairs(flat, subject_id, object_id)
        offset = 2 * position
        return (offset < len(flat) and flat[offset] == subject_id
                and flat[offset + 1] == object_id)

    def pairs(self) -> Iterator[tuple[int, int]]:
        """Every (subject, object) pair, subject-major order."""
        flat = self._so
        for offset in range(0, len(flat), 2):
            yield flat[offset], flat[offset + 1]

    def subjects(self) -> list[int]:
        """Distinct subject VALUE_IDs (sorted) — star-join seeds."""
        flat = self._so
        found: list[int] = []
        last = _MIN_ID
        for offset in range(0, len(flat), 2):
            subject = flat[offset]
            if subject != last:
                found.append(subject)
                last = subject
        return found

    def subject_entries(self) -> "list[tuple[int, RDFTerm]]":
        """Distinct (subject VALUE_ID, decoded term) pairs, sorted —
        star-join seeds that skip the per-candidate decode.  Needs
        :meth:`attach_terms`."""
        terms = self.s_terms
        return [(subject, terms[span[0]])
                for subject, span in self.s_dir.items()]

    # ------------------------------------------------------------------
    # accounting
    # ------------------------------------------------------------------

    @property
    def triple_count(self) -> int:
        return len(self._so) // 2

    @property
    def nbytes(self) -> int:
        """Payload bytes of both pair arrays plus the aligned
        term-list pointers and directory entries (the memory-cap
        unit).  The term objects themselves are shared with the
        store's value cache and not charged here."""
        id_bytes = (len(self._so) + len(self._os)) * self._so.itemsize
        if self.s_terms is None:
            return id_bytes
        return (id_bytes
                + 8 * (len(self.s_terms) + len(self.o_terms)
                       + len(self.os_s_terms))
                + _DIRECTORY_ENTRY_BYTES * (len(self.s_dir)
                                            + len(self.o_dir)))

    def __len__(self) -> int:
        return self.triple_count

    def __repr__(self) -> str:
        return (f"PredicateIndex(p={self.predicate_id}, "
                f"triples={self.triple_count}, bytes={self.nbytes})")

"""In-memory compressed read replica (see ``docs/replica.md``).

An optional per-model read replica held beside the SQL engine:
dict-encoded (``rdf_value$`` VALUE_IDs) per-predicate sorted SO/OS
pair arrays, version-gated against the store's write stream, serving
the planner's hot query shapes — single-pattern lookups, anchored
scans, and star joins — as binary searches instead of SQL.

The design follows the compressed vertical partitioning of
Álvarez-García et al. (*Compressed Vertical Partitioning for
Full-In-Memory RDF Management*): one partition per predicate, each a
pair of sorted ``array('q')`` columns, one ordered subject-major (SO)
and one object-major (OS).
"""

from repro.replica.index import PredicateIndex
from repro.replica.manager import (
    ModelReplica,
    ReplicaManager,
    parse_replica_setting,
)

__all__ = [
    "ModelReplica",
    "PredicateIndex",
    "ReplicaManager",
    "parse_replica_setting",
]

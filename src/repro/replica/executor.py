"""The ``ReplicaExecutor``: eligible queries as array binary searches.

Shapes (see :func:`repro.inference.plan.classify_replica_shape`):
single triple patterns (any anchoring, including a variable
predicate) and star joins — several patterns sharing one subject,
all predicates constant.  Everything else raises
:class:`~repro.replica.manager.ReplicaMiss` and falls back to SQL.

Semantics are bit-for-bit those of the SQL path it replaces:

* every pattern matches against the same triples the dataset CTE
  would select (all ``rdf_link$`` rows of the model, CONTEXT and
  LINK_TYPE included);
* an unknown constant short-circuits to the empty result, like an
  *impossible* plan;
* an existence-only query (no variables) yields exactly one empty
  row when it matches, mirroring the planner's ``LIMIT 1``;
* the full filter is evaluated by the Python evaluator over the
  bound terms (the SQL path only ever pushes clauses proven
  equivalent to it), then the lexical ``order_by`` sort, then the
  limit slice.

Evaluation is two-tiered.  The common anchorings — every single
pattern with distinct variables, and star joins without repeated
object variables — take *direct* paths that slice the partitions'
pre-decoded term lists (:meth:`PredicateIndex.attach_terms`) straight
into :class:`MatchRow` lists: no per-row binding dicts, no per-query
term resolution.  Exotic shapes (repeated variables such as
``(?x ?x ?o)``, variable predicates colliding with other variables)
drop to a generic depth-first join over VALUE_ID bindings.

Freshness needs no read transaction on the serve path: the lease
compares the replica's tag against the durable per-model version, and
a passing check means the immutable arrays *are* the store's state at
that instant — while term decode was done at build time against the
same snapshot (value rows are immutable, so decoded terms cannot
drift).  Inline rebuilds open their own snapshot transaction inside
the manager.
"""

from __future__ import annotations

from itertools import islice
from typing import TYPE_CHECKING, Iterator, Sequence

from repro.inference.filters import FilterExpression
from repro.inference.match import MatchRow
from repro.inference.patterns import TriplePattern, Variable
from repro.inference.plan import classify_replica_shape
from repro.replica.index import PredicateIndex
from repro.replica.manager import ModelReplica, ReplicaMiss

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.store import RDFStore
    from repro.replica.manager import ReplicaManager

#: A compiled component: (is_variable, name-or-VALUE_ID).
_Component = tuple[bool, "str | int"]
_CompiledPattern = tuple[_Component, _Component, _Component]

#: Memo marker for a query text whose shape the replica cannot serve.
_INELIGIBLE = object()

#: Per-store compiled-query memo entries (bounded FIFO; entries never
#: go stale — see :meth:`ReplicaExecutor.execute`).
_QUERY_CACHE_CAP = 256


class ReplicaExecutor:
    """Evaluates eligible queries against a leased model replica."""

    def __init__(self, manager: "ReplicaManager") -> None:
        self._manager = manager

    def execute(self, store: "RDFStore",
                patterns: Sequence[TriplePattern],
                models: Sequence[str],
                filter_expression: FilterExpression | None = None,
                order_by: str | None = None,
                limit: int | None = None,
                token=None) -> list[MatchRow]:
        """Rows for the query, or raise :class:`ReplicaMiss`.

        ``token`` — a key uniquely identifying the parsed query text —
        memoises the query-shape analysis and constant resolution on
        the store: shape and variable order are pure functions of the
        patterns, and a resolved VALUE_ID can never change meaning
        (value rows are immutable), so hits skip straight to the
        lookup.  A compile that found an *unknown* constant is never
        memoised — a later insert can mint the id.
        """
        if len(models) != 1:
            raise ReplicaMiss("shape", "replica serves a single model")
        cache = cached = None
        if token is not None:
            cache = getattr(store, "_replica_query_cache", None)
            if cache is None:
                cache = store._replica_query_cache = {}
            cached = cache.get(token)
        if cached is None:
            shape = classify_replica_shape(patterns)
            if shape is None:
                if cache is not None:
                    self._remember(cache, token, _INELIGIBLE)
                raise ReplicaMiss(
                    "shape", "query shape not replica-eligible")
            variables: Sequence[str] = []
            for pattern in patterns:
                for component in pattern.components():
                    if isinstance(component, Variable) \
                            and component.name not in variables:
                        variables.append(component.name)
            compiled = self._compile(store, patterns)
            if cache is not None and compiled is not None:
                self._remember(cache, token,
                               (shape, tuple(variables), compiled))
        elif cached is _INELIGIBLE:
            raise ReplicaMiss(
                "shape", "query shape not replica-eligible")
        else:
            shape, variables, compiled = cached

        # Enumeration can stop at the limit only when nothing after it
        # (a filter, a sort) could reorder or drop rows first.
        cap = limit if (filter_expression is None
                        and order_by is None) else None
        if not variables:
            # All solutions project to the same empty row; one decides.
            cap = 1 if cap is None else min(cap, 1)

        if compiled is None:  # unknown constant: nothing can match
            return []
        replica = self._manager.lease(store, models[0])
        if shape == "single":
            rows = self._single_rows(replica, compiled[0], cap)
        else:
            rows = self._star_rows(replica, compiled, cap)
        if rows is None:
            rows = self._generic_rows(store, replica, compiled,
                                      variables, cap)

        if filter_expression is not None:
            rows = [row for row in rows
                    if filter_expression.evaluate(dict(row._terms))]
        if order_by is not None:
            rows.sort(key=lambda row: row[order_by])
        if limit is not None:
            rows = rows[:limit]
        return rows

    @staticmethod
    def _remember(cache: dict, token, entry) -> None:
        if len(cache) >= _QUERY_CACHE_CAP:
            cache.pop(next(iter(cache)))
        cache[token] = entry

    # ------------------------------------------------------------------
    # compilation: constants to VALUE_IDs
    # ------------------------------------------------------------------

    def _compile(self, store: "RDFStore",
                 patterns: Sequence[TriplePattern]
                 ) -> list[_CompiledPattern] | None:
        compiled: list[_CompiledPattern] = []
        for pattern in patterns:
            components: list[_Component] = []
            for component in pattern.components():
                if isinstance(component, Variable):
                    components.append((True, component.name))
                else:
                    value_id = store.values.find_id(component)
                    if value_id is None:
                        return None
                    components.append((False, value_id))
            compiled.append(tuple(components))  # type: ignore[arg-type]
        return compiled

    # ------------------------------------------------------------------
    # direct paths: pre-decoded term slices straight into MatchRows
    # ------------------------------------------------------------------

    def _single_rows(self, replica: ModelReplica,
                     pattern: _CompiledPattern,
                     cap: int | None) -> list[MatchRow] | None:
        """One pattern, common anchorings; None defers to the generic
        join (repeated variables)."""
        (s_is_var, s), (p_is_var, p), (o_is_var, o) = pattern
        if p_is_var:
            if (s_is_var and s == p) or (o_is_var and o == p):
                return None  # (?p ?p ?o) and friends: generic
            rows: list[MatchRow] = []
            for predicate_id in replica.sorted_predicates:
                index = self._manager.partition(replica, predicate_id)
                if index is None:
                    continue
                remaining = None if cap is None else cap - len(rows)
                part_rows = self._partition_rows(
                    index, pattern, remaining, p_name=p)
                if part_rows is None:
                    return None
                rows.extend(part_rows)
                if cap is not None and len(rows) >= cap:
                    break
            return rows
        index = self._manager.partition(replica, p)
        if index is None:
            return []
        return self._partition_rows(index, pattern, cap)

    def _partition_rows(self, index: PredicateIndex,
                        pattern: _CompiledPattern, cap: int | None,
                        p_name: str | None = None
                        ) -> list[MatchRow] | None:
        """One pattern against one partition; ``p_name`` adds the
        partition's predicate term under a variable predicate."""
        (s_is_var, s), _, (o_is_var, o) = pattern
        if index.s_terms is None:  # undecoded partition: generic join
            return None
        extra = ({} if p_name is None
                 else {p_name: index.predicate_term})
        if s_is_var and o_is_var:
            if s == o:  # diagonal (?x p ?x)
                flat, terms = index._so, index.s_terms
                rows = [MatchRow({s: terms[i], **extra})
                        for i in range(len(terms))
                        if flat[2 * i] == flat[2 * i + 1]]
                return rows[:cap] if cap is not None else rows
            s_terms, o_terms = index.s_terms, index.o_terms
            if cap is not None:
                s_terms = s_terms[:cap]
                o_terms = o_terms[:cap]
            if extra:
                return [MatchRow({s: a, o: b, **extra})
                        for a, b in zip(s_terms, o_terms)]
            return [MatchRow({s: a, o: b})
                    for a, b in zip(s_terms, o_terms)]
        if s_is_var:  # object anchored
            lo, hi = index.subjects_slice(o)
            if cap is not None:
                hi = min(hi, lo + cap)
            return [MatchRow({s: term, **extra})
                    for term in index.os_s_terms[lo:hi]]
        if o_is_var:  # subject anchored
            lo, hi = index.objects_slice(s)
            if cap is not None:
                hi = min(hi, lo + cap)
            return [MatchRow({o: term, **extra})
                    for term in index.o_terms[lo:hi]]
        if not index.contains(s, o):  # ground
            return []
        rows = [MatchRow(dict(extra))]
        return rows[:cap] if cap is not None else rows

    def _star_rows(self, replica: ModelReplica,
                   compiled: list[_CompiledPattern],
                   cap: int | None) -> list[MatchRow] | None:
        """A star join (shared subject, constant predicates); None
        defers to the generic join (repeated object variables)."""
        (s_is_var, subject) = compiled[0][0]
        seen = {subject} if s_is_var else set()
        parts: list[PredicateIndex] = []
        objects: list[_Component] = []
        for pattern in compiled:
            (o_is_var, obj) = pattern[2]
            if o_is_var:
                if obj in seen:
                    return None  # repeated variable: generic join
                seen.add(obj)
            index = self._manager.partition(replica, pattern[1][1])
            if index is None:  # predicate absent at the snapshot
                return []
            if index.s_terms is None:  # undecoded: generic join
                return None
            parts.append(index)
            objects.append((o_is_var, obj))

        if not s_is_var:
            candidates = [(subject, None)]
        else:
            # Seed from the most selective pattern: a constant-object
            # slice when one exists, else the fewest-subjects scan.
            best, best_cost = None, None
            for position, (o_is_var, obj) in enumerate(objects):
                cost = (parts[position].triple_count if o_is_var
                        else _slice_len(parts[position], obj))
                if best_cost is None or cost < best_cost:
                    best, best_cost = position, cost
            seed_part = parts[best]
            if objects[best][0]:
                candidates = seed_part.subject_entries()
            else:
                lo, hi = seed_part.subjects_slice(objects[best][1])
                flat = seed_part._os
                candidates = [(flat[2 * i + 1],
                               seed_part.os_s_terms[i])
                              for i in range(lo, hi)]

        rows: list[MatchRow] = []
        for s_id, s_term in candidates:
            partial = [{subject: s_term}] if s_is_var else [{}]
            for position, (o_is_var, obj) in enumerate(objects):
                index = parts[position]
                if not o_is_var:
                    if s_is_var and position == best:
                        continue  # the seed slice already proved it
                    if not index.contains(s_id, obj):
                        partial = []
                        break
                    continue
                lo, hi = index.objects_slice(s_id)
                if lo == hi:
                    partial = []
                    break
                slice_terms = index.o_terms[lo:hi]
                partial = [{**binding, obj: term}
                           for binding in partial
                           for term in slice_terms]
            if partial:
                rows.extend(MatchRow(binding) for binding in partial)
                if cap is not None and len(rows) >= cap:
                    return rows[:cap]
        return rows

    # ------------------------------------------------------------------
    # generic enumeration (repeated-variable shapes)
    # ------------------------------------------------------------------

    def _generic_rows(self, store: "RDFStore", replica: ModelReplica,
                      compiled: list[_CompiledPattern],
                      variables: list[str],
                      cap: int | None) -> list[MatchRow]:
        solutions = self._solutions(replica, compiled)
        if cap is not None:
            solutions = islice(solutions, cap)
        bindings = list(solutions)
        wanted = {binding[name] for binding in bindings
                  for name in variables}
        terms = store.values.get_terms(wanted)
        return [MatchRow({name: terms[binding[name]]
                          for name in variables})
                for binding in bindings]

    def _solutions(self, replica: ModelReplica,
                   compiled: list[_CompiledPattern]
                   ) -> Iterator[dict[str, int]]:
        """Depth-first join over the patterns, lazily.

        Bindings map variable names to VALUE_IDs; every yielded
        binding is total over the query's variables, and distinct —
        a binding fully determines each pattern's matching triple, and
        each pattern's candidates are unique triples, so the join
        cannot duplicate (the same argument that lets the SQL planner
        drop DISTINCT for a single model).
        """

        def extend(position: int,
                   binding: dict[str, int]) -> Iterator[dict[str, int]]:
            if position == len(compiled):
                yield binding
                return
            for extended in self._pattern_matches(
                    replica, compiled[position], binding):
                yield from extend(position + 1, extended)

        yield from extend(0, {})

    def _pattern_matches(self, replica: ModelReplica,
                         pattern: _CompiledPattern,
                         binding: dict[str, int]
                         ) -> Iterator[dict[str, int]]:
        (s_is_var, s), (p_is_var, p), (o_is_var, o) = pattern

        def resolved(is_var: bool, token) -> int | None:
            return binding.get(token) if is_var else token

        predicate = resolved(p_is_var, p)
        if predicate is not None:
            predicate_ids: Sequence[int] = (predicate,)
        else:
            # Variable predicate: walk every partition.  Completeness
            # is enforced by partition() below — touching an evicted
            # one raises ReplicaMiss, so a capped replica can never
            # silently under-report.
            predicate_ids = replica.sorted_predicates
        for predicate_id in predicate_ids:
            index = self._manager.partition(replica, predicate_id)
            if index is None:  # no such predicate at the snapshot
                continue
            subject = resolved(s_is_var, s)
            obj = resolved(o_is_var, o)
            if subject is not None and obj is not None:
                candidates: Iterator[tuple[int, int]] | tuple = (
                    ((subject, obj),)
                    if index.contains(subject, obj) else ())
            elif subject is not None:
                candidates = ((subject, found)
                              for found in index.objects_for(subject))
            elif obj is not None:
                candidates = ((found, obj)
                              for found in index.subjects_for(obj))
            else:
                candidates = index.pairs()
            for found_s, found_o in candidates:
                extended = dict(binding)
                # Bind in s, p, o order so repeated variables within
                # one pattern ((?x ?x ?o), (?s p ?s)) unify correctly.
                consistent = True
                for is_var, token, value in (
                        (s_is_var, s, found_s),
                        (p_is_var, p, predicate_id),
                        (o_is_var, o, found_o)):
                    if not is_var:
                        continue
                    already = extended.get(token)
                    if already is None:
                        extended[token] = value
                    elif already != value:
                        consistent = False
                        break
                if consistent:
                    yield extended


def _slice_len(index: PredicateIndex, object_id: int) -> int:
    lo, hi = index.subjects_slice(object_id)
    return hi - lo
